//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on data types but never
//! serializes through a serde `Serializer` (reports are rendered by hand; the index
//! has its own binary codec). The shim `serde` crate provides blanket trait
//! implementations, so these derives only need to accept the attribute grammar and
//! emit nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
