//! Offline shim for `criterion`.
//!
//! Provides the `Criterion`/`BenchmarkGroup`/`Bencher` surface the workspace's
//! benches use, timing each benchmark with `std::time::Instant` over a bounded
//! number of iterations and printing one line per benchmark:
//!
//! ```text
//! bench <group>/<id>: mean 1.234ms over 10 iters (thrpt 8104.2 elem/s)
//! ```
//!
//! No statistical analysis or plots — this exists so `cargo bench` runs offline
//! and produces comparable wall-clock numbers. When `BENCH_JSON_DIR` is set,
//! each group additionally writes `BENCH_<group>.json` there so successive runs
//! can track a trajectory.

use std::fmt;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to the closure under test; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` for the configured iterations, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Mirror of criterion's `iter_custom`: the routine receives the iteration
    /// count and returns the total elapsed time it measured itself. Benches that
    /// must control measurement structure (e.g. interleaving variants to cancel
    /// machine-load drift) time their own runs and report the result here.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        self.elapsed = routine(self.iters);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    results: Vec<BenchResult>,
}

/// One benchmark's measurement, kept for the JSON trajectory file.
struct BenchResult {
    id: String,
    mean_secs: f64,
    iters: u64,
    throughput_per_sec: Option<f64>,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration count per benchmark (criterion's sample count analogue).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Set measurement time; accepted and ignored by the shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate throughput for the following benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Run a benchmark with an input reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        // `BENCH_ITERS` forces the iteration count, overriding both the
        // group's `sample_size` and the driver cap. Baseline captures for the
        // overhead gates use it: single-shot 10-iter means on millisecond
        // campaigns carry several percent of scheduler noise, more than the
        // 2% budget the gate enforces.
        let iters = match std::env::var("BENCH_ITERS").ok().and_then(|s| s.parse::<u64>().ok()) {
            Some(n) => n.max(1),
            None => self.sample_size.clamp(1, self.criterion.max_iters),
        };
        // `BENCH_BEST_OF=k` repeats the whole sample k times and keeps the
        // fastest mean. Background load only ever slows a run down, so the
        // minimum is the noise-robust estimate of the true cost — the right
        // statistic when capturing baselines for the tight overhead gates.
        let best_of = std::env::var("BENCH_BEST_OF")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(1)
            .max(1);
        let mut mean = f64::INFINITY;
        for _ in 0..best_of {
            let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut bencher);
            mean = mean.min(bencher.elapsed.as_secs_f64() / iters as f64);
        }
        let per_sec = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if mean > 0.0 => {
                Some(n as f64 / mean)
            }
            _ => None,
        };
        let thrpt = match (self.throughput, per_sec) {
            (Some(Throughput::Elements(_)), Some(r)) => format!(" (thrpt {r:.1} elem/s)"),
            (Some(Throughput::Bytes(_)), Some(r)) => {
                format!(" (thrpt {:.1} MiB/s)", r / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("bench {}/{id}: mean {:.6}s over {iters} iters{thrpt}", self.name, mean);
        self.results.push(BenchResult {
            id: id.to_string(),
            mean_secs: mean,
            iters,
            throughput_per_sec: per_sec,
        });
    }

    /// Finish the group. With `BENCH_JSON_DIR` set, write the group's results to
    /// `BENCH_<group>.json` in that directory (best effort; benches never fail
    /// on trajectory I/O).
    ///
    /// With `BENCH_KEEP_MIN=1` the write merges with an existing file instead of
    /// replacing it: each id keeps the faster of the old and new mean. `BENCH_BEST_OF`
    /// already takes a min *within* one process, but its samples are adjacent in
    /// time, so a load transient (or CPU-frequency drift) spanning one group's
    /// measurement window still skews cross-group comparisons. Re-running the
    /// whole binary several times minutes apart and min-merging decorrelates
    /// that — each id's min converges on its true cost independently of when
    /// its group happened to run.
    pub fn finish(mut self) {
        let Ok(dir) = std::env::var("BENCH_JSON_DIR") else { return };
        if dir.is_empty() || self.results.is_empty() {
            return;
        }
        let slug: String = self
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let path = std::path::Path::new(&dir).join(format!("BENCH_{slug}.json"));
        if std::env::var("BENCH_KEEP_MIN").is_ok_and(|v| v == "1") {
            if let Ok(existing) = std::fs::read_to_string(&path) {
                for r in &mut self.results {
                    if let Some(old) = extract_mean_secs(&existing, &r.id) {
                        if old < r.mean_secs {
                            // Throughput is n/mean with n fixed, so it rescales.
                            if let Some(t) = &mut r.throughput_per_sec {
                                *t *= r.mean_secs / old;
                            }
                            r.mean_secs = old;
                        }
                    }
                }
            }
        }
        let mut json = format!("{{\"group\":{:?},\"results\":[", self.name);
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "{{\"id\":{:?},\"mean_secs\":{:.9},\"iters\":{}",
                r.id, r.mean_secs, r.iters
            );
            if let Some(t) = r.throughput_per_sec {
                let _ = write!(json, ",\"throughput_per_sec\":{t:.3}");
            }
            json.push('}');
        }
        json.push_str("]}\n");
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(path, json);
    }
}

/// Pull `"mean_secs":<x>` for `"id":<id>` out of a `BENCH_*.json` file this shim
/// wrote earlier. Fixed-format scan, not a JSON parser: keys appear in the order
/// `finish` emits them, and ids never contain escapes.
fn extract_mean_secs(json: &str, id: &str) -> Option<f64> {
    let needle = format!("{{\"id\":{id:?},\"mean_secs\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

/// The benchmark driver.
pub struct Criterion {
    max_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep offline benches bounded: honoring criterion's default 100 samples
        // on multi-second fixtures would take hours.
        Criterion { max_iters: 10 }
    }
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup {
            sample_size: self.max_iters,
            criterion: self,
            name,
            throughput: None,
            results: Vec::new(),
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, &mut f);
        group.finish();
        self
    }

    /// Mirror of criterion's config hook; accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(calls, 3, "sample_size(3) must run exactly 3 iterations");
    }

    #[test]
    fn mean_extraction_matches_emitted_format() {
        let json = "{\"group\":\"g\",\"results\":[{\"id\":\"a/30\",\"mean_secs\":0.015000000,\"iters\":20,\"throughput_per_sec\":2000.000},{\"id\":\"a/120\",\"mean_secs\":0.061000000,\"iters\":20}]}\n";
        assert_eq!(extract_mean_secs(json, "a/30"), Some(0.015));
        assert_eq!(extract_mean_secs(json, "a/120"), Some(0.061));
        assert_eq!(extract_mean_secs(json, "a/7"), None);
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("a", 5).to_string(), "a/5");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
