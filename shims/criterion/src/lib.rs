//! Offline shim for `criterion`.
//!
//! Provides the `Criterion`/`BenchmarkGroup`/`Bencher` surface the workspace's
//! benches use, timing each benchmark with `std::time::Instant` over a bounded
//! number of iterations and printing one line per benchmark:
//!
//! ```text
//! bench <group>/<id>: mean 1.234ms over 10 iters (thrpt 8104.2 elem/s)
//! ```
//!
//! No statistical analysis or plots — this exists so `cargo bench` runs offline
//! and produces comparable wall-clock numbers. When `BENCH_JSON_DIR` is set,
//! each group additionally writes `BENCH_<group>.json` there so successive runs
//! can track a trajectory.

use std::fmt;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to the closure under test; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` for the configured iterations, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    results: Vec<BenchResult>,
}

/// One benchmark's measurement, kept for the JSON trajectory file.
struct BenchResult {
    id: String,
    mean_secs: f64,
    iters: u64,
    throughput_per_sec: Option<f64>,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration count per benchmark (criterion's sample count analogue).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Set measurement time; accepted and ignored by the shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate throughput for the following benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Run a benchmark with an input reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let iters = self.sample_size.clamp(1, self.criterion.max_iters);
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / iters as f64;
        let per_sec = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if mean > 0.0 => {
                Some(n as f64 / mean)
            }
            _ => None,
        };
        let thrpt = match (self.throughput, per_sec) {
            (Some(Throughput::Elements(_)), Some(r)) => format!(" (thrpt {r:.1} elem/s)"),
            (Some(Throughput::Bytes(_)), Some(r)) => {
                format!(" (thrpt {:.1} MiB/s)", r / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("bench {}/{id}: mean {:.6}s over {iters} iters{thrpt}", self.name, mean);
        self.results.push(BenchResult {
            id: id.to_string(),
            mean_secs: mean,
            iters,
            throughput_per_sec: per_sec,
        });
    }

    /// Finish the group. With `BENCH_JSON_DIR` set, write the group's results to
    /// `BENCH_<group>.json` in that directory (best effort; benches never fail
    /// on trajectory I/O).
    pub fn finish(self) {
        let Ok(dir) = std::env::var("BENCH_JSON_DIR") else { return };
        if dir.is_empty() || self.results.is_empty() {
            return;
        }
        let mut json = format!("{{\"group\":{:?},\"results\":[", self.name);
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "{{\"id\":{:?},\"mean_secs\":{:.9},\"iters\":{}",
                r.id, r.mean_secs, r.iters
            );
            if let Some(t) = r.throughput_per_sec {
                let _ = write!(json, ",\"throughput_per_sec\":{t:.3}");
            }
            json.push('}');
        }
        json.push_str("]}\n");
        let slug: String = self
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let path = std::path::Path::new(&dir).join(format!("BENCH_{slug}.json"));
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(path, json);
    }
}

/// The benchmark driver.
pub struct Criterion {
    max_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep offline benches bounded: honoring criterion's default 100 samples
        // on multi-second fixtures would take hours.
        Criterion { max_iters: 10 }
    }
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup {
            sample_size: self.max_iters,
            criterion: self,
            name,
            throughput: None,
            results: Vec::new(),
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, &mut f);
        group.finish();
        self
    }

    /// Mirror of criterion's config hook; accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(calls, 3, "sample_size(3) must run exactly 3 iterations");
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("a", 5).to_string(), "a/5");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
