//! Offline shim for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable view into an `Arc<Vec<u8>>` (or a static
//! slice); consuming reads through [`Buf`] advance the view's start. [`BytesMut`]
//! is a growable buffer supporting the [`BufMut`] put-methods and `freeze`.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// The backing storage of a [`Bytes`].
#[derive(Clone)]
enum Storage {
    Shared(Arc<Vec<u8>>),
    Static(&'static [u8]),
}

/// A cheaply cloneable, sliceable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    storage: Storage,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_static(b"")
    }

    /// Wrap a static slice without allocating.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { start: 0, end: data.len(), storage: Storage::Static(data) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds: {lo}..{hi} of {len}");
        Bytes { storage: self.storage.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Copy the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.storage {
            Storage::Shared(v) => &v[self.start..self.end],
            Storage::Static(s) => &s[self.start..self.end],
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { start: 0, end: v.len(), storage: Storage::Shared(Arc::new(v)) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

/// Consuming byte reads over a buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The readable contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut w = [0u8; 2];
        self.copy_to_slice(&mut w);
        u16::from_le_bytes(w)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut w = [0u8; 4];
        self.copy_to_slice(&mut w);
        u32::from_le_bytes(w)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut w = [0u8; 8];
        self.copy_to_slice(&mut w);
        u64::from_le_bytes(w)
    }

    /// Fill `dest` from the buffer, advancing past the copied bytes.
    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(self.remaining() >= dest.len(), "buffer underflow");
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end: {cnt} > {}", self.len());
        self.start += cnt;
    }
}

impl Bytes {
    /// Split off the first `len` bytes as an owned [`Bytes`], advancing this view.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let head = self.slice(0..len);
        self.advance(len);
        head
    }
}

/// Byte writes into a growable buffer.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_buf_traits() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR!");
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 4 + 1 + 4 + 8);
        let mut hdr = [0u8; 4];
        b.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert!(b.is_empty());
    }

    #[test]
    fn clones_share_storage_and_slice_views() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.len(), 6, "original unaffected");
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&head[..], &[9, 8]);
        assert_eq!(&b[..], &[7, 6]);
    }

    #[test]
    fn equality_and_static() {
        assert_eq!(Bytes::from_static(b"xy"), Bytes::from(vec![b'x', b'y']));
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }
}
