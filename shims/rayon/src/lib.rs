//! Offline shim for `rayon`.
//!
//! Exposes the parallel-iterator surface this workspace uses (`par_iter`,
//! `par_iter_mut`, `into_par_iter`, `par_sort_unstable_by_key`, `ThreadPool`)
//! executing everything sequentially on the calling thread. Sequential execution is
//! a legal schedule of any data-parallel program, so all results are identical;
//! only wall-clock parallel speedups are lost.

use std::fmt;

/// Consuming conversion into a "parallel" iterator (sequential here).
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Convert into an iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Borrowing conversion: `par_iter`.
pub trait IntoParallelRefIterator<'data> {
    /// Item type.
    type Item: 'data;
    /// Iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Iterate by reference.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Mutably borrowing conversion: `par_iter_mut`.
pub trait IntoParallelRefMutIterator<'data> {
    /// Item type.
    type Item: 'data;
    /// Iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Iterate by mutable reference.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    type Iter = <&'data mut C as IntoIterator>::IntoIter;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Parallel sort methods on mutable slices.
pub trait ParallelSliceMut<T> {
    /// Unstable sort by key (sequential here).
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);

    /// Unstable sort by comparator (sequential here).
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_unstable_by_key(f);
    }

    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F) {
        self.sort_unstable_by(f);
    }
}

pub mod prelude {
    //! The traits, mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelSliceMut,
    };
}

/// Error from [`ThreadPoolBuilder::build`]. Never actually produced by the shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" that runs closures inline on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `op` (inline; a sequential schedule of the parallel program).
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        op()
    }

    /// The configured thread count (advisory only in the shim).
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Request a thread count (recorded, not enforced).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.threads = n;
        self
    }

    /// Build the pool. Infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { threads: if self.threads == 0 { 1 } else { self.threads } })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_iter_mut_and_sort() {
        let mut v = vec![3u32, 1, 2];
        v.par_iter_mut().for_each(|x| *x *= 10);
        v.par_sort_unstable_by_key(|&x| std::cmp::Reverse(x));
        assert_eq!(v, vec![30, 20, 10]);
    }

    #[test]
    fn into_par_iter_over_range() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 7), 7);
    }
}
