//! Offline shim for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses — `RngCore`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` over integer and
//! float ranges, and `rngs::StdRng` — backed by xoshiro256++ seeded through
//! SplitMix64. The streams differ from upstream rand's ChaCha12-based `StdRng`, but
//! every consumer in this workspace treats the RNG as an opaque deterministic
//! source, which this is: the same seed always yields the same stream.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through SplitMix64 (same scheme as
    /// upstream rand).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander and the standard jump-free seeding PRNG.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A distribution sampling values of `T` from raw bits.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over the type's natural domain
/// (`[0, 1)` for floats, full range for integers, fair coin for `bool`).
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type cannot occur here;
                    // for 64-bit it means the whole domain.
                    return rng.next_u64() as $t;
                }
                let v = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        lo + u * (hi - lo)
    }
}

/// High-level sampling methods, available on every `RngCore`.
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        Ra: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0,1]: {p}");
        let u: f64 = Standard.sample(self);
        u < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(w);
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    //! Convenience re-exports.
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn dyn_rng_core_is_object_safe() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&v));
    }
}
