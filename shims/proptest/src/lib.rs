//! Offline shim for `proptest`.
//!
//! Implements the surface this workspace's property tests use: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, `pat in strategy` arguments,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`, [`any`],
//! range strategies, tuple strategies, `prop::collection::vec`, [`prop_oneof!`],
//! and [`Strategy::prop_map`]. Cases are
//! generated from a deterministic per-test seed (FNV of the test name), so runs are
//! reproducible. Shrinking is not implemented: a failure reports the case number
//! and message instead of a minimized input.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// The RNG driving case generation.
pub type TestRng = StdRng;

/// Deterministic per-test RNG, seeded from the test name.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in test_name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it is not counted.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Runner configuration. Only `cases` is honored by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (no shrinking in the shim).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A strategy applying a function to another strategy's output; see
/// [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice among strategies sharing a value type; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> Union<T> {
    /// A union over `(weight, strategy)` arms. Panics when all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("pick bounded by total weight")
    }
}

/// Boxes one `prop_oneof!` arm; a function (not a cast) so the arms' common
/// value type is inferred across the whole arm list.
#[doc(hidden)]
pub fn __oneof_arm<S: Strategy + 'static>(
    weight: u32,
    strat: S,
) -> (u32, Box<dyn Strategy<Value = S::Value>>) {
    (weight, Box::new(strat))
}

/// Choose among strategies, optionally weighted: `prop_oneof![a, b]` or
/// `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::__oneof_arm($weight as u32, $strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full domain of `T` as a strategy.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uniform {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_any_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// A constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Length specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Vec`s of an element strategy's values.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prop {
    //! The `prop::` namespace mirrored from the real crate.
    pub use crate::collection;
}

pub mod test_runner {
    //! Runner types, mirroring the real crate's module layout.
    pub use crate::{ProptestConfig, TestCaseError, TestRng};
}

pub mod prelude {
    //! Everything a property-test module needs.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Any, Just, Map, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Assert a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Reject the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: `proptest! { #[test] fn name(x in strategy) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $( $(#[$attr:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                while __passed < __config.cases {
                    let __outcome = (|__rng: &mut $crate::TestRng|
                        -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })(&mut __rng);
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            __rejected += 1;
                            assert!(
                                __rejected < __config.cases.saturating_mul(32).max(4096),
                                "{}: too many prop_assume! rejections ({} passed)",
                                stringify!($name),
                                __passed
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest {} failed on case {}: {}",
                                stringify!($name),
                                __passed,
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 0usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&c| c < 4));
        }

        #[test]
        fn oneof_and_map_compose(v in prop::collection::vec(
            prop_oneof![3 => (0u8..4).prop_map(|c| c as u32), 1 => Just(99u32)],
            1..40,
        )) {
            prop_assert!(v.iter().all(|&x| x < 4 || x == 99));
        }

        #[test]
        fn tuples_and_assume(pair in (0u32..10, 0u32..10), flip in any::<bool>()) {
            prop_assume!(pair.0 != pair.1);
            let (a, b) = pair;
            prop_assert_ne!(a, b);
            if flip {
                prop_assert_eq!(a + b, b + a);
            }
        }
    }

    #[test]
    fn deterministic_per_test_seed() {
        let mut a = crate::test_rng("some::test");
        let mut b = crate::test_rng("some::test");
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
