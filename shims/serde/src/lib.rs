//! Offline shim for `serde`.
//!
//! This workspace derives the serde traits for API-compatibility with downstream
//! users but never drives an actual serializer, so the traits here are markers with
//! blanket implementations and the derives (see the sibling `serde_derive` shim)
//! expand to nothing. Code that bounds on `T: Serialize` still compiles and runs.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub mod de {
    //! Deserialization-side re-exports.
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    //! Serialization-side re-exports.
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
