#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --release --offline --no-fail-fast
# Telemetry schema is a published contract: pin it against the committed golden
# explicitly so drift fails loudly even when the suite above is filtered.
cargo test -q --release --offline -p telemetry schema_matches_golden
# Same contract for the standard-format exporters: the fixed-seed mini-campaign's
# Perfetto trace and OpenMetrics exposition are byte-pinned in tests/golden/.
cargo test -q --release --offline -p atlas-integration-tests --test telemetry_export \
    perfetto_and_openmetrics_exports_match_goldens
# The trace-query layer's text rendering (group-by tables and the chaos diff
# attribution waterfall over the fixed-seed mini-campaign) is byte-pinned too:
# a drift here means either the query engine or the recorded log moved.
cargo test -q --release --offline -p atlas-integration-tests --test trace_query \
    trace_query_text_matches_golden
# The SLO engine's OpenMetrics exposition (sketch summaries, budget gauges,
# ledger rollups) is pinned the same way, alongside its pure-observer proof.
cargo test -q --release --offline -p atlas-integration-tests --test slo_campaign
# Replay determinism is a merge gate, not just a test: the discrete-event kernel
# must reproduce a campaign byte-for-byte from identical config + workload on
# chaos-seeded and fleet-scale campaigns, even when the suite above is filtered.
cargo test -q --release --offline -p atlas-integration-tests --test devent_diff
cargo clippy --offline -- -D warnings

# Benches must keep compiling (they are not covered by `cargo test`), and the
# bench-regression comparator must accept the committed baseline against itself.
# Full bench runs stay manual (BENCH_JSON_DIR=... cargo bench -p atlas-bench,
# then bench_compare benchmarks/baseline <fresh_dir>): wall-clock means from a
# loaded CI box are not comparable to the pinned baseline.
cargo build --release --offline -p atlas-bench --benches
cargo build --release --offline -p atlas-bench --bin bench_compare
./target/release/bench_compare benchmarks/baseline benchmarks/baseline
# Monitor-overhead gate: the committed campaign baselines come from the
# bench_cloud_campaign binary, which times all three variants in one process,
# interleaved round-robin with a min-of-rounds estimator so machine-load drift
# cancels (see its module doc). Watching the campaign (live alert rules +
# streamed progress + rendered exports) must stay within 2% of running it
# unobserved. Refresh all three files together — run the capture 2-3 times on an
# idle box; BENCH_KEEP_MIN merges passes by keeping each cell's fastest run:
# BENCH_ITERS=10 BENCH_BEST_OF=10 BENCH_KEEP_MIN=1 BENCH_JSON_DIR=benchmarks/baseline \
#     cargo bench -p atlas-bench --bench bench_cloud_campaign
./target/release/bench_compare --overhead benchmarks/baseline \
    BENCH_cloud_campaign.json BENCH_cloud_campaign_monitor.json --tolerance 0.02
# Same bound for the SLO engine: sketches, burn-rate evaluation, budget gauges
# and the settlement-time attribution ledger together must stay within 2% of
# the unobserved campaign.
./target/release/bench_compare --overhead benchmarks/baseline \
    BENCH_cloud_campaign.json BENCH_cloud_campaign_slo.json --tolerance 0.02
# Recovery-overhead gate: arming graceful spot degradation (in-flight job
# tracking, checkpoint-store GC, resume lookups) on a fault-free campaign must
# stay within 2% of the recovery-off path. Captured by bench_spot_recovery with
# the same interleaved protocol as the campaign baselines.
./target/release/bench_compare --overhead benchmarks/baseline \
    BENCH_spot_recovery_off.json BENCH_spot_recovery_on.json --tolerance 0.02
