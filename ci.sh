#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --release --offline --no-fail-fast
# Telemetry schema is a published contract: pin it against the committed golden
# explicitly so drift fails loudly even when the suite above is filtered.
cargo test -q --release --offline -p telemetry schema_matches_golden
# Same contract for the standard-format exporters: the fixed-seed mini-campaign's
# Perfetto trace and OpenMetrics exposition are byte-pinned in tests/golden/.
cargo test -q --release --offline -p atlas-integration-tests --test telemetry_export \
    perfetto_and_openmetrics_exports_match_goldens
# Engine equivalence is a merge gate, not just a test: the discrete-event kernel
# must stay byte-for-byte interchangeable with the legacy tick-loop oracle on
# chaos-seeded and fleet-scale campaigns, even when the suite above is filtered.
cargo test -q --release --offline -p atlas-integration-tests --test devent_diff
cargo clippy --offline -- -D warnings

# Benches must keep compiling (they are not covered by `cargo test`), and the
# bench-regression comparator must accept the committed baseline against itself.
# Full bench runs stay manual (BENCH_JSON_DIR=... cargo bench -p atlas-bench,
# then bench_compare benchmarks/baseline <fresh_dir>): wall-clock means from a
# loaded CI box are not comparable to the pinned baseline.
cargo build --release --offline -p atlas-bench --benches
cargo build --release --offline -p atlas-bench --bin bench_compare
./target/release/bench_compare benchmarks/baseline benchmarks/baseline
# Monitor-overhead gate: the committed campaign baselines were captured in the
# same bench run on the same machine, so watching the campaign (live alert
# rules + streamed progress + rendered exports) must stay within 2% of running
# it unobserved. Refresh both files together (same `cargo bench` invocation).
./target/release/bench_compare --overhead benchmarks/baseline \
    BENCH_cloud_campaign.json BENCH_cloud_campaign_monitor.json --tolerance 0.02
