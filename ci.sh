#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --release --offline --no-fail-fast
# Telemetry schema is a published contract: pin it against the committed golden
# explicitly so drift fails loudly even when the suite above is filtered.
cargo test -q --release --offline -p telemetry schema_matches_golden
cargo clippy --offline -- -D warnings
