#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --release --offline --no-fail-fast
# Telemetry schema is a published contract: pin it against the committed golden
# explicitly so drift fails loudly even when the suite above is filtered.
cargo test -q --release --offline -p telemetry schema_matches_golden
cargo clippy --offline -- -D warnings

# Benches must keep compiling (they are not covered by `cargo test`), and the
# bench-regression comparator must accept the committed baseline against itself.
# Full bench runs stay manual (BENCH_JSON_DIR=... cargo bench -p atlas-bench,
# then bench_compare benchmarks/baseline <fresh_dir>): wall-clock means from a
# loaded CI box are not comparable to the pinned baseline.
cargo build --release --offline -p atlas-bench --benches
cargo build --release --offline -p atlas-bench --bin bench_compare
./target/release/bench_compare benchmarks/baseline benchmarks/baseline
