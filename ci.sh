#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --release --offline --no-fail-fast
cargo clippy --offline -- -D warnings
