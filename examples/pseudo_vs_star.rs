//! The paper's future work, hands-on: run the same accessions through STAR and
//! through a kallisto/Salmon-style pseudoaligner, and show that the early-stopping
//! optimization transfers — but only when the pseudoaligner exposes the running
//! mapping rate ("e.g. Salmon does not").
//!
//! ```text
//! cargo run --release -p atlas-examples --bin pseudo_vs_star
//! ```

use atlas_pipeline::early_stop::EarlyStopPolicy;
use atlas_pipeline::experiments::Substrate;
use genomics::{EnsemblParams, FastqRecord, LibraryType, ReadSimulator, SimulatorParams};
use pseudo_aligner::pseudoalign::PseudoParams;
use pseudo_aligner::{PseudoIndex, PseudoIndexParams, PseudoRunConfig, PseudoRunner};
use star_aligner::runner::{RunConfig, RunMonitor, RunStatus, Runner};
use star_aligner::AlignParams;
use std::time::Instant;

fn reads(sub: &Substrate, library: LibraryType, n: usize, seed: u64) -> Vec<FastqRecord> {
    ReadSimulator::new(&sub.asm_111, &sub.annotation, SimulatorParams::for_library(library), seed)
        .unwrap()
        .simulate(n, "X")
        .into_iter()
        .map(|r| r.fastq)
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let substrate = Substrate::build(EnsemblParams { chromosome_len: 100_000, ..EnsemblParams::default() })?;
    let pseudo_index =
        PseudoIndex::build(&substrate.asm_111, &substrate.annotation, &PseudoIndexParams { k: 21 })?;
    println!(
        "indices: STAR {} bytes (whole genome) vs pseudo {} bytes (transcriptome k-mers)\n",
        substrate.index_111.stats().total_bytes(),
        pseudo_index.byte_size()
    );

    let bulk = reads(&substrate, LibraryType::BulkPolyA, 20_000, 5);
    let sc = reads(&substrate, LibraryType::SingleCell3Prime, 20_000, 6);
    let policy = EarlyStopPolicy::default();

    // STAR side.
    let star_runner = Runner::new(
        &substrate.index_111,
        AlignParams::default(),
        RunConfig { threads: 4, batch_size: 1_000, quant: false, ..RunConfig::default() },
    )?;
    println!("{:<34} {:>9} {:>9} {:>12}", "run", "map%", "secs", "outcome");
    for (label, reads) in [("STAR bulk", &bulk), ("STAR single-cell + policy", &sc)] {
        let t = Instant::now();
        let out = star_runner.run(reads, None, Some(&policy as &dyn RunMonitor), None)?;
        println!(
            "{:<34} {:>8.1}% {:>9.2} {:>12}",
            label,
            out.mapped_fraction() * 100.0,
            t.elapsed().as_secs_f64(),
            match out.status {
                RunStatus::EarlyStopped { .. } => "ABORTED",
                _ => "completed",
            }
        );
    }

    // Pseudoaligner side: with and without the progress stream.
    for (label, report_progress, reads) in [
        ("pseudo bulk (progress on)", true, &bulk),
        ("pseudo single-cell (progress on)", true, &sc),
        ("pseudo single-cell (stock mode)", false, &sc),
    ] {
        let runner = PseudoRunner::new(
            &pseudo_index,
            PseudoParams::default(),
            PseudoRunConfig { threads: 4, batch_size: 1_000, report_progress },
        )?;
        let t = Instant::now();
        let out = runner.run(reads, Some(&policy as &dyn RunMonitor))?;
        println!(
            "{:<34} {:>8.1}% {:>9.2} {:>12}",
            label,
            out.mapped_fraction() * 100.0,
            t.elapsed().as_secs_f64(),
            match out.status {
                RunStatus::EarlyStopped { .. } => "ABORTED",
                _ => "completed",
            }
        );
    }
    println!(
        "\nthe stock-mode run processed every read of a hopeless library — the paper's point:\n\
         \"other (pseudo)aligners should also provide the current mapping rate value\""
    );
    Ok(())
}
