//! Quickstart: build a genome index, align reads, quantify genes.
//!
//! The 60-second tour of the aligner substrate: generate a synthetic Ensembl-style
//! assembly, annotate it, build the STAR-style index, simulate an RNA-seq library,
//! run the multi-threaded aligner with `--quantMode GeneCounts`, and print the
//! `Log.final.out` summary plus the top of ReadsPerGene.out.tab.
//!
//! ```text
//! cargo run --release -p atlas-examples --bin quickstart
//! ```

use genomics::annotation::AnnotationParams;
use genomics::{
    Annotation, EnsemblGenerator, EnsemblParams, LibraryType, ReadSimulator, Release,
    SimulatorParams,
};
use star_aligner::index::{IndexParams, StarIndex};
use star_aligner::runner::{RunConfig, Runner};
use star_aligner::AlignParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A reference genome: the Ensembl release-111 toplevel assembly (synthetic,
    //    deterministic — same seed, same genome).
    let params = EnsemblParams { chromosome_len: 100_000, ..EnsemblParams::default() };
    let generator = EnsemblGenerator::new(params)?;
    let assembly = generator.generate(Release::R111);
    println!(
        "assembly: {} release {} — {} contigs, {} bases",
        assembly.name,
        assembly.release,
        assembly.contigs.len(),
        assembly.total_len()
    );

    // 2. A gene annotation (GTF-lite) for GeneCounts.
    let annotation = Annotation::simulate(&assembly, &generator, &AnnotationParams::default())?;
    println!("annotation: {} genes", annotation.len());

    // 3. Build the index ("STAR --runMode genomeGenerate").
    let index = StarIndex::build(&assembly, &annotation, &IndexParams::default())?;
    let stats = index.stats();
    println!(
        "index: {} bytes total (genome {} + SA {} + SAindex {} + sjdb {})",
        stats.total_bytes(),
        stats.genome_bytes,
        stats.sa_bytes,
        stats.prefix_bytes,
        stats.sjdb_bytes
    );

    // 4. An RNA-seq library: 20k bulk poly-A reads.
    let mut simulator = ReadSimulator::new(
        &assembly,
        &annotation,
        SimulatorParams::for_library(LibraryType::BulkPolyA),
        1234,
    )?;
    let reads: Vec<_> = simulator.simulate(20_000, "SRR0000001").into_iter().map(|r| r.fastq).collect();

    // 5. Align with 4 threads and gene counting ("STAR --runThreadN 4 --quantMode
    //    GeneCounts").
    let run_config = RunConfig { threads: 4, quant: true, ..RunConfig::default() };
    let runner = Runner::new(&index, AlignParams::default(), run_config)?;
    let output = runner.run(&reads, Some(&annotation), None, None)?;

    // 6. Log.final.out.
    println!("\n--- Log.final.out ---\n{}", output.final_log);

    // 7. ReadsPerGene.out.tab (header rows + five most expressed genes).
    let counts = output.gene_counts.expect("quant was enabled");
    let mut expressed: Vec<(&String, u64)> =
        counts.gene_ids.iter().zip(counts.counts.iter().map(|c| c[0])).collect();
    expressed.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\n--- ReadsPerGene.out.tab (top 5 genes) ---");
    print!(
        "{}",
        counts
            .to_tsv()
            .lines()
            .take(4)
            .map(|l| format!("{l}\n"))
            .collect::<String>()
    );
    for (gene, n) in expressed.iter().take(5) {
        println!("{gene}\t{n}");
    }
    Ok(())
}
