//! The paper's §III-A optimization, hands-on: align the same FASTQ against indices
//! built from Ensembl releases 108 and 111 and watch the execution-time gap with
//! near-identical mapping rates.
//!
//! ```text
//! cargo run --release -p atlas-examples --bin genome_releases
//! ```

use atlas_pipeline::experiments::{paper_scale_sizer, Substrate};
use genomics::{EnsemblParams, LibraryType, ReadSimulator, Release, SimulatorParams};
use star_aligner::runner::{RunConfig, Runner};
use star_aligner::AlignParams;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building release-108 and release-111 assemblies + indices…");
    let substrate = Substrate::build(EnsemblParams { chromosome_len: 200_000, ..EnsemblParams::default() })?;

    for (release, assembly, index) in [
        (Release::R108, &substrate.asm_108, &substrate.index_108),
        (Release::R111, &substrate.asm_111, &substrate.index_111),
    ] {
        let stats = index.stats();
        let sizer = paper_scale_sizer(&stats, substrate.human_scale());
        println!(
            "release {}: {} contigs, {} bases, index {} bytes (human-scale ≈ {:.1} GiB → {})",
            release.number(),
            assembly.contigs.len(),
            assembly.total_len(),
            stats.total_bytes(),
            sizer.index_gib,
            sizer.choose().map(|t| t.name).unwrap_or("n/a"),
        );
    }

    // One bulk RNA-seq FASTQ, aligned against both indices.
    let mut simulator = ReadSimulator::new(
        &substrate.asm_111,
        &substrate.annotation,
        SimulatorParams::for_library(LibraryType::BulkPolyA),
        77,
    )?;
    let reads: Vec<_> = simulator.simulate(40_000, "SRR0000042").into_iter().map(|r| r.fastq).collect();
    println!("\naligning {} reads against both indices…", reads.len());

    // Toplevel assemblies multimap more: use the Atlas's ENCODE-style cap.
    let align_params =
        AlignParams { out_filter_multimap_nmax: 20, ..AlignParams::default() };
    let run_config = RunConfig { threads: 4, quant: false, ..RunConfig::default() };

    let mut times = Vec::new();
    for (release, index) in [(108u32, &substrate.index_108), (111, &substrate.index_111)] {
        let runner = Runner::new(index, align_params.clone(), run_config.clone())?;
        let started = Instant::now();
        let output = runner.run(&reads, None, None, None)?;
        let secs = started.elapsed().as_secs_f64();
        times.push(secs);
        println!(
            "release {release}: {:>6.2}s  ({:>8.0} reads/s, mapped {:.2}%)",
            secs,
            reads.len() as f64 / secs,
            output.mapped_fraction() * 100.0
        );
    }
    println!(
        "\nrelease-111 speedup: {:.1}x  (paper measured >12x at full human scale;\n\
         the shape — newer release wins on every file at equal mapping rate — holds)",
        times[0] / times[1]
    );
    Ok(())
}
