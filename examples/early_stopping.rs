//! The paper's §III-B optimization, hands-on: run the four-stage pipeline over a
//! small accession catalog with early stopping and print the per-accession outcomes
//! — single-cell libraries are aborted at the 10 %-of-reads checkpoint when their
//! mapping rate sits below 30 %, bulk libraries run to completion.
//!
//! ```text
//! cargo run --release -p atlas-examples --bin early_stopping
//! ```

use atlas_pipeline::early_stop::EarlyStopPolicy;
use atlas_pipeline::experiments::Substrate;
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use genomics::EnsemblParams;
use sra_sim::accession::{CatalogParams, LibraryStrategy};
use sra_sim::SraRepository;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let substrate = Substrate::build(EnsemblParams { chromosome_len: 100_000, ..EnsemblParams::default() })?;

    // A 20-accession catalog with a heavy single-cell mix so the demo shows both
    // outcomes (the paper's real-world rate is 3.8 %).
    let catalog = CatalogParams {
        n_accessions: 20,
        single_cell_fraction: 0.25,
        bulk_spots_median: 3_000,
        ..CatalogParams::default()
    }
    .generate()?;
    let repo = Arc::new(SraRepository::new(
        Arc::clone(&substrate.asm_111),
        Arc::clone(&substrate.annotation),
        catalog,
    ));

    let policy = EarlyStopPolicy::default();
    println!(
        "early-stopping policy: decide after {:.0}% of reads, abort below {:.0}% mapped\n",
        policy.check_fraction * 100.0,
        policy.min_mapping_rate * 100.0
    );

    let config = PipelineConfig { early_stop: Some(policy), ..PipelineConfig::default() };
    let pipeline = AtlasPipeline::new(
        repo,
        Arc::clone(&substrate.index_111),
        Arc::clone(&substrate.annotation),
        config,
    )?;

    println!(
        "{:<12} {:<12} {:>7} {:>9} {:>11} {:>10}",
        "accession", "library", "map%", "aligned", "saved[s]", "outcome"
    );
    let mut total_actual = 0.0;
    let mut total_projected = 0.0;
    let mut stopped = 0;
    for id in pipeline.repository().ids() {
        let result = pipeline.run_accession(&id)?;
        total_actual += result.early_stop.actual_secs;
        total_projected += result.early_stop.projected_full_secs;
        if result.early_stopped() {
            stopped += 1;
        }
        let library = match result.strategy {
            LibraryStrategy::RnaSeqBulk => "bulk",
            LibraryStrategy::SingleCell => "single-cell",
        };
        println!(
            "{:<12} {:<12} {:>6.1}% {:>9} {:>11.2} {:>10}",
            result.accession,
            library,
            result.mapping_rate * 100.0,
            result.early_stop.processed_reads,
            result.early_stop.saved_secs(),
            if result.early_stopped() { "ABORTED" } else { "completed" },
        );
    }
    println!(
        "\n{stopped} of 20 alignments stopped early; STAR time {total_actual:.1}s of a projected \
         {total_projected:.1}s — saved {:.1}%\n(paper: 38 of 1000 stopped, 30.4h of 155.8h = 19.5% saved)",
        (total_projected - total_actual) / total_projected * 100.0
    );
    Ok(())
}
