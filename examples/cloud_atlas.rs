//! The full architecture of Fig. 2, end to end: an SQS-fed, autoscaled, spot-priced
//! EC2 fleet processes an accession catalog through the four-stage pipeline on the
//! discrete-event cloud simulator, with early stopping on and spot interruptions
//! striking mid-campaign. Pipelines really align reads; only time and money are
//! simulated.
//!
//! ```text
//! cargo run --release -p atlas-examples --bin cloud_atlas
//! cargo run --release -p atlas-examples --bin cloud_atlas -- --trace-out trace.json
//! cargo run --release -p atlas-examples --bin cloud_atlas -- --metrics-out metrics.prom
//! ```
//!
//! `--trace-out <path>` writes the campaign's span tree as Chrome/Perfetto
//! trace-event JSON — open it at <https://ui.perfetto.dev>.
//!
//! `--metrics-out <path>` writes the campaign's final metrics snapshot
//! (counters, gauges, histograms, SLO quantile-sketch summaries) as an
//! OpenMetrics text exposition — point `promtool` or any Prometheus scraper
//! tooling at it.
//!
//! `--log-out <path>` writes the raw NDJSON event log — feed it to the
//! `trace_query` bin to ask questions about the run, or save logs from two
//! seeds (`--seed <n>` perturbs the spot market) and `trace_query diff` them
//! to see where the seconds moved.

use atlas_pipeline::experiments::{paper_scale_sizer, Substrate};
use atlas_pipeline::orchestrator::{CampaignConfig, Orchestrator};
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use atlas_pipeline::report::render_campaign;
use cloudsim::{ScalingPolicy, SpotMarket};
use genomics::EnsemblParams;
use sra_sim::accession::CatalogParams;
use sra_sim::SraRepository;
use std::sync::Arc;
use telemetry::{MonitorConfig, SloConfig, SloRegistry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut log_out: Option<String> = None;
    let mut spot_seed: u64 = 11;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => {
                trace_out =
                    Some(args.next().ok_or("--trace-out needs a file path argument")?);
            }
            "--metrics-out" => {
                metrics_out =
                    Some(args.next().ok_or("--metrics-out needs a file path argument")?);
            }
            "--log-out" => {
                log_out = Some(args.next().ok_or("--log-out needs a file path argument")?);
            }
            "--seed" => {
                spot_seed = args
                    .next()
                    .ok_or("--seed needs an integer argument")?
                    .parse()
                    .map_err(|_| "--seed needs an integer argument")?;
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }

    let substrate = Substrate::build(EnsemblParams { chromosome_len: 100_000, ..EnsemblParams::default() })?;

    // 40 accessions with the paper's library mix shape.
    let catalog = CatalogParams {
        n_accessions: 40,
        single_cell_fraction: 0.1,
        bulk_spots_median: 2_000,
        ..CatalogParams::default()
    }
    .generate()?;
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&substrate.asm_111), Arc::clone(&substrate.annotation), catalog)
            .with_spot_cap(2_000),
    );
    let pipeline = Arc::new(AtlasPipeline::new(
        repo,
        Arc::clone(&substrate.index_111),
        Arc::clone(&substrate.annotation),
        PipelineConfig::default(),
    )?);

    // Right-size the fleet from the index footprint, paper-scale.
    let sizer = paper_scale_sizer(&substrate.index_111.stats(), substrate.human_scale());
    let instance = sizer.choose().expect("an instance type fits the release-111 index");
    println!(
        "right-sizing: release-111 index ≈ {:.1} GiB (human scale) → {} ({} vCPU / {} GiB, ${:.4}/h)\n",
        sizer.index_gib, instance.name, instance.vcpus, instance.memory_gib, instance.on_demand_hourly_usd
    );

    // Paper-scale index bytes drive instance-init time (download + shm load).
    let index_bytes = (sizer.index_gib * (1u64 << 30) as f64) as u64;
    let mut config = CampaignConfig::new(instance, index_bytes);
    config.spot = true;
    config.spot_market =
        SpotMarket { price_factor: 0.35, interruptions_per_hour: 0.5, seed: spot_seed };
    config.scaling = ScalingPolicy { min_size: 0, max_size: 6, target_backlog_per_instance: 4 };
    // Watch the campaign live: stragglers, backlog growth, fault bursts, and
    // early-stop-eligible accessions fire alerts into the report.
    config.monitor = Some(MonitorConfig::standard());
    // Evaluate SLOs over the same stream (turnaround p95, queue-wait p99,
    // cost-per-accession cap) and build the per-accession attribution ledger.
    config.slo = Some(SloConfig {
        registry: SloRegistry::standard(4.0 * 3600.0, 3600.0, 0.25),
        ..SloConfig::default()
    });

    let orchestrator = Orchestrator::new(pipeline, config)?;
    let ids: Vec<String> = {
        let mut v: Vec<String> = (0..40).map(|i| format!("SRR{:07}", 1_000_000 + i)).collect();
        v.sort();
        v
    };
    println!("launching campaign over {} accessions…\n", ids.len());
    let report = orchestrator.run(&ids)?;
    print!("{}", render_campaign(&report, instance.name));

    if let Some(path) = trace_out {
        let t = report.telemetry.as_ref().ok_or("--trace-out requires telemetry enabled")?;
        std::fs::write(&path, &t.perfetto_json)?;
        println!("\nwrote Perfetto trace to {path} — open it at https://ui.perfetto.dev");
    }

    if let Some(path) = metrics_out {
        let t = report.telemetry.as_ref().ok_or("--metrics-out requires telemetry enabled")?;
        std::fs::write(&path, &t.openmetrics_text)?;
        println!("\nwrote OpenMetrics exposition to {path}");
    }

    if let Some(path) = log_out {
        let t = report.telemetry.as_ref().ok_or("--log-out requires telemetry enabled")?;
        std::fs::write(&path, &t.event_log)?;
        println!("\nwrote NDJSON event log to {path} — query it with the trace_query bin");
    }

    println!("\nfleet over time (active instances | pending messages):");
    for sample in report.fleet_timeline.iter().take(20) {
        println!(
            "  t={:>7.0}s  {:>2} instances  {:>3} pending  {}",
            sample.at_secs,
            sample.active_instances,
            sample.pending_messages,
            "█".repeat(sample.active_instances)
        );
    }
    Ok(())
}
