//! End-to-end integration: genome generation → annotation → index → SRA repository →
//! prefetch → fasterq-dump → STAR alignment → GeneCounts → DESeq2 normalization.
//! Exercises every crate boundary the paper's pipeline crosses.

use genomics::annotation::AnnotationParams;
use genomics::{Annotation, EnsemblGenerator, EnsemblParams, Release};
use sra_sim::accession::{CatalogParams, LibraryStrategy};
use sra_sim::{FasterqDump, Prefetch, SraRepository};
use star_aligner::index::{IndexParams, StarIndex};
use star_aligner::quant::Strandedness;
use star_aligner::runner::{RunConfig, Runner};
use star_aligner::AlignParams;
use std::sync::Arc;

fn substrate() -> (Arc<genomics::Assembly>, Arc<Annotation>, StarIndex) {
    let generator = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
    let assembly = Arc::new(generator.generate(Release::R111));
    let annotation =
        Arc::new(Annotation::simulate(&assembly, &generator, &AnnotationParams::default()).unwrap());
    let index = StarIndex::build(&assembly, &annotation, &IndexParams::default()).unwrap();
    (assembly, annotation, index)
}

#[test]
fn full_pipeline_produces_normalizable_counts() {
    let (assembly, annotation, index) = substrate();
    let catalog = CatalogParams {
        n_accessions: 6,
        single_cell_fraction: 0.0,
        bulk_spots_median: 900,
        ..CatalogParams::default()
    }
    .generate()
    .unwrap();
    let repo = SraRepository::new(Arc::clone(&assembly), Arc::clone(&annotation), catalog);

    let prefetch = Prefetch::default();
    let dumper = FasterqDump::default();
    let run_config = RunConfig { threads: 2, quant: true, ..RunConfig::default() };
    let runner = Runner::new(&index, AlignParams::default(), run_config).unwrap();

    let mut per_sample_counts = Vec::new();
    let mut sample_ids = Vec::new();
    let mut gene_ids: Option<Vec<String>> = None;
    for id in repo.ids() {
        // Stage 1: prefetch.
        let fetched = prefetch.run(&repo, &id).unwrap();
        assert!(fetched.modeled_secs > 0.0);
        // Stage 2: fasterq-dump.
        let dumped = dumper.run(&fetched.archive).unwrap();
        assert_eq!(dumped.reads.len() as u64, fetched.archive.spots());
        // Stage 3: STAR + GeneCounts.
        let output = runner.run(&dumped.reads, Some(&annotation), None, None).unwrap();
        assert!(output.mapped_fraction() > 0.7, "bulk accession must map well: {id}");
        let counts = output.gene_counts.unwrap();
        let ids_now: Vec<String> = counts.gene_ids.clone();
        if let Some(prev) = &gene_ids {
            assert_eq!(prev, &ids_now, "gene universe must be stable across samples");
        } else {
            gene_ids = Some(ids_now);
        }
        per_sample_counts.push(counts);
        sample_ids.push(id);
    }

    // Stage 4: DESeq2 normalization across the cohort.
    let gene_ids = gene_ids.unwrap();
    let mut matrix = deseq_norm::CountsMatrix::zeros(gene_ids.clone(), sample_ids);
    for (j, counts) in per_sample_counts.iter().enumerate() {
        for (g, gene) in gene_ids.iter().enumerate() {
            matrix.set(g, j, counts.count(gene, Strandedness::Unstranded).unwrap());
        }
    }
    let normalized = deseq_norm::normalize(&matrix).unwrap();
    assert_eq!(normalized.size_factors.len(), 6);
    for &f in &normalized.size_factors {
        assert!(f > 0.05 && f < 20.0, "size factor {f} out of plausible range");
    }
    // Deeper samples get larger factors: correlation between library size and factor
    // should be positive.
    let libs = matrix.library_sizes();
    let mean_lib = libs.iter().sum::<u64>() as f64 / libs.len() as f64;
    let mean_f = normalized.size_factors.iter().sum::<f64>() / 6.0;
    let cov: f64 = libs
        .iter()
        .zip(&normalized.size_factors)
        .map(|(&l, &f)| (l as f64 - mean_lib) * (f - mean_f))
        .sum();
    assert!(cov > 0.0, "size factors must track sequencing depth");
}

#[test]
fn index_round_trips_through_object_store() {
    let (_, annotation, index) = substrate();
    // Upload the serialized index to "S3", download it on a "worker", and verify the
    // worker aligns identically — the instance-initialization path of Fig. 2.
    let mut store = cloudsim::ObjectStore::new();
    let blob = index.serialize();
    let up = store.put("indices/r111.star", bytes::Bytes::from(blob));
    assert!(up.as_secs() > 0.0);
    let (downloaded, down) = store.get("indices/r111.star").unwrap();
    assert!(down.as_secs() > 0.0);
    let worker_index = StarIndex::deserialize(&downloaded).unwrap();

    let generator = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
    let assembly = generator.generate(Release::R111);
    let chrom = assembly.contig("1").unwrap();
    let local = star_aligner::align::Aligner::new(&index, AlignParams::default());
    let remote = star_aligner::align::Aligner::new(&worker_index, AlignParams::default());
    for start in (0..2_000).step_by(173) {
        let read = chrom.seq.subseq(start, start + 100);
        let a = local.align_seq(&read);
        let b = remote.align_seq(&read);
        assert_eq!(a.class, b.class);
        assert_eq!(a.primary.map(|r| (r.contig, r.pos)), b.primary.map(|r| (r.contig, r.pos)));
    }
    let _ = annotation;
}

#[test]
fn single_cell_accessions_map_below_threshold_bulk_above() {
    let (assembly, annotation, index) = substrate();
    let catalog = CatalogParams {
        n_accessions: 10,
        single_cell_fraction: 0.3,
        bulk_spots_median: 700,
        ..CatalogParams::default()
    }
    .generate()
    .unwrap();
    let repo = SraRepository::new(Arc::clone(&assembly), Arc::clone(&annotation), catalog);
    let runner = Runner::new(
        &index,
        AlignParams::default(),
        RunConfig { threads: 2, quant: false, ..RunConfig::default() },
    )
    .unwrap();
    for id in repo.ids() {
        let meta = repo.meta(&id).unwrap().clone();
        let reads = FasterqDump::default().run(&repo.fetch(&id).unwrap()).unwrap().reads;
        let output = runner.run(&reads, None, None, None).unwrap();
        match meta.strategy {
            LibraryStrategy::RnaSeqBulk => assert!(
                output.mapped_fraction() > 0.30,
                "bulk {id} rate {}",
                output.mapped_fraction()
            ),
            LibraryStrategy::SingleCell => assert!(
                output.mapped_fraction() < 0.30,
                "single-cell {id} rate {} must sit below the early-stop threshold",
                output.mapped_fraction()
            ),
        }
    }
}

#[test]
fn fasta_export_reimport_builds_equivalent_index() {
    // The repository ships assemblies as FASTA (like the Ensembl FTP); an index built
    // from re-parsed FASTA must behave identically.
    let generator = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
    let assembly = generator.generate(Release::R111);
    let annotation =
        Annotation::simulate(&assembly, &generator, &AnnotationParams::default()).unwrap();

    let mut fasta_bytes = Vec::new();
    genomics::fasta::write_fasta(&mut fasta_bytes, &assembly.to_fasta(), 70).unwrap();
    let (records, stats) = genomics::fasta::read_fasta(std::io::Cursor::new(&fasta_bytes)).unwrap();
    assert_eq!(stats.substituted_ambiguous, 0);
    assert_eq!(records.len(), assembly.contigs.len());
    let rebuilt = genomics::Assembly {
        name: assembly.name.clone(),
        release: assembly.release,
        kind: assembly.kind,
        contigs: records
            .iter()
            .zip(&assembly.contigs)
            .map(|(r, orig)| genomics::Contig {
                name: r.id().to_string(),
                kind: orig.kind,
                seq: r.seq.clone(),
            })
            .collect(),
    };
    let idx_a = StarIndex::build(&assembly, &annotation, &IndexParams::default()).unwrap();
    let idx_b = StarIndex::build(&rebuilt, &annotation, &IndexParams::default()).unwrap();
    assert_eq!(idx_a.genome().seq(), idx_b.genome().seq());
    assert_eq!(idx_a.sa().positions(), idx_b.sa().positions());
}
