//! Graceful spot degradation end-to-end: interruption notices, worker drain,
//! checkpoint/resume, and the waste accounting they change.
//!
//! The contracts beyond the unit suites:
//!
//! * **off-path purity** — with `recovery: None` the engine emits none of the
//!   recovery event kinds and replays bit-for-bit against itself (the committed
//!   Perfetto/OpenMetrics goldens in `telemetry_export.rs` pin the off path
//!   against pre-recovery builds byte for byte);
//! * **notice precedes reclaim** — every `spot_notice` lands before its
//!   instance's `spot_interruption`, never more than the plan's notice lead
//!   ahead of it;
//! * **waste reduction** — under the same seeded spot burst, checkpointing cuts
//!   the ledger's `retry_waste + idle_gap` total (the Fig. 4-style claim in
//!   EXPERIMENTS.md);
//! * **replay** — recovery campaigns reproduce digests and event logs byte for
//!   byte for the same `(workload, plan)` pair;
//! * **conservation** — drain + hand-back + resume never loses an accession,
//!   across randomized chaos schedules.

use atlas_pipeline::orchestrator::{CampaignConfig, CampaignReport, Orchestrator};
use atlas_pipeline::{ModeledWorkload, RecoveryConfig};
use cloudsim::faults::{FaultPlan, SpotBurst};
use cloudsim::instance::InstanceType;
use cloudsim::{ScalingPolicy, SpotMarket};
use proptest::prelude::*;
use telemetry::{MonitorConfig, SloConfig};

/// Align-dominated modeled campaign: ~600 s jobs on an autoscaled spot fleet.
/// Recovery tests need jobs long enough that a two-minute notice window
/// regularly lands mid-align; the tiny real-pipeline fixtures finish aligning
/// in milliseconds and would never exercise the checkpoint path.
fn modeled_config(recovery: bool) -> CampaignConfig {
    let t = InstanceType::by_name("r6a.xlarge").unwrap();
    let mut cfg = CampaignConfig::new(t, 30_000_000_000);
    cfg.scaling = ScalingPolicy { min_size: 0, max_size: 6, target_backlog_per_instance: 4 };
    cfg.spot_market = SpotMarket { price_factor: 0.35, interruptions_per_hour: 0.0, seed: 11 };
    cfg.slo = Some(SloConfig::default());
    if recovery {
        cfg.recovery = Some(RecoveryConfig::default());
    }
    cfg
}

/// A violent seeded reclaim storm mid-campaign, no transient faults.
fn burst_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        spot_bursts: vec![SpotBurst {
            start_secs: 300.0,
            duration_secs: 2400.0,
            rate_per_hour: 18.0,
        }],
        ..FaultPlan::default()
    }
}

fn run_modeled(cfg: CampaignConfig, n: usize) -> CampaignReport {
    let ids = ModeledWorkload::accessions(n);
    Orchestrator::with_workload(ModeledWorkload::default().into_workload(), cfg)
        .unwrap()
        .run(&ids)
        .unwrap()
}

/// Pull `(t, field:value...)` NDJSON lines of one kind out of the event log.
fn events_of<'a>(log: &'a str, kind: &str) -> Vec<&'a str> {
    let tag = format!("\"kind\":\"{kind}\"");
    log.lines().filter(|l| l.contains(&tag)).collect()
}

fn json_f64(line: &str, field: &str) -> f64 {
    let tag = format!("\"{field}\":");
    let rest = &line[line.find(&tag).unwrap_or_else(|| panic!("{field} in {line}")) + tag.len()..];
    let end = rest.find([',', '}']).unwrap();
    rest[..end].parse().unwrap_or_else(|e| panic!("parse {field} from {line}: {e}"))
}

#[test]
fn recovery_off_campaigns_never_speak_the_recovery_vocabulary() {
    let mut cfg = modeled_config(false);
    cfg.faults = Some(burst_plan(42));
    cfg.max_receive_count = Some(8);
    let report = run_modeled(cfg, 20);
    assert!(report.interruptions > 0, "premise: the burst must strike");

    let log = &report.telemetry.as_ref().unwrap().event_log;
    for kind in ["spot_notice", "drain", "checkpoint", "checkpoint_failed", "resume"] {
        assert!(
            events_of(log, kind).is_empty(),
            "recovery-off campaigns must not emit {kind} events"
        );
    }
    assert_eq!(report.salvaged_compute_secs, 0.0);
    for m in ["spot_notices", "drains", "checkpoints_written", "checkpoint_resumes"] {
        assert!(
            !report.telemetry.as_ref().unwrap().metrics_json.contains(m),
            "recovery-off metrics must not carry {m}"
        );
    }
}

#[test]
fn every_notice_precedes_its_reclaim_by_at_most_the_lead() {
    let mut cfg = modeled_config(true);
    let plan = burst_plan(42);
    let lead = plan.spot_notice_secs;
    cfg.faults = Some(plan);
    cfg.max_receive_count = Some(8);
    let report = run_modeled(cfg, 20);
    assert!(report.interruptions > 0, "premise: the burst must strike");

    let log = &report.telemetry.as_ref().unwrap().event_log;
    let notices = events_of(log, "spot_notice");
    assert!(!notices.is_empty(), "a reclaim storm must produce notices");
    let reclaims = events_of(log, "spot_interruption");
    for n in &notices {
        let t = json_f64(n, "t");
        let inst = json_f64(n, "instance");
        let l = json_f64(n, "lead_secs");
        assert!(l >= 0.0 && l <= lead + 1e-9, "notice lead {l} outside [0, {lead}]: {n}");
        // If the instance's reclaim landed (it can be pre-empted by a
        // scale-down or the campaign ending first), it fires exactly
        // lead_secs after the notice — never before it.
        for r in reclaims.iter().filter(|r| json_f64(r, "instance") == inst) {
            let rt = json_f64(r, "t");
            assert!(rt >= t - 1e-9, "reclaim at {rt} precedes its notice at {t}: {r}");
            assert!((rt - (t + l)).abs() < 1e-6, "reclaim not at notice + lead: {n} vs {r}");
        }
    }
    // Drains carry the story forward: every busy drain checkpoints or at least
    // hands its message back.
    let drains = events_of(log, "drain");
    assert!(!drains.is_empty());
    for d in drains.iter().filter(|d| d.contains("\"handed_back\":true")) {
        assert!(d.contains("\"accession\":"), "busy drains name their in-flight accession: {d}");
    }
}

#[test]
fn checkpointing_cuts_ledger_waste_under_the_same_seeded_burst() {
    let mut on_cfg = modeled_config(true);
    on_cfg.faults = Some(burst_plan(42));
    on_cfg.max_receive_count = Some(8);
    let mut off_cfg = modeled_config(false);
    off_cfg.faults = Some(burst_plan(42));
    off_cfg.max_receive_count = Some(8);

    let on = run_modeled(on_cfg, 20);
    let off = run_modeled(off_cfg, 20);
    assert!(on.interruptions > 0 && off.interruptions > 0, "premise: reclaims struck");
    assert!(on.salvaged_compute_secs > 0.0, "the storm must salvage something");

    let burned = |r: &CampaignReport| {
        let t = &r.slo.as_ref().unwrap().totals;
        t.retry_waste_secs + t.idle_gap_secs
    };
    assert!(
        burned(&on) < burned(&off),
        "checkpoint/resume must cut retry_waste + idle_gap: on {} vs off {}",
        burned(&on),
        burned(&off)
    );
    // The ledger splits the former retry-waste bucket: salvaged seconds are
    // exactly the report's salvage total, lost stays the retry_waste alias.
    let on_totals = &on.slo.as_ref().unwrap().totals;
    assert!((on_totals.salvaged_secs - on.salvaged_compute_secs).abs() < 1e-6);
    assert_eq!(
        on_totals.lost_secs.to_bits(),
        on_totals.retry_waste_secs.to_bits(),
        "lost is the recovery-aware name for retry waste"
    );
    let off_totals = &off.slo.as_ref().unwrap().totals;
    assert_eq!(off_totals.salvaged_secs, 0.0);
}

#[test]
fn recovery_campaigns_replay_bit_for_bit_and_diverge_across_seeds() {
    let run = |seed: u64| {
        let mut cfg = modeled_config(true);
        cfg.faults = Some(burst_plan(seed));
        cfg.max_receive_count = Some(8);
        run_modeled(cfg, 16)
    };
    let a1 = run(7);
    let a2 = run(7);
    assert_eq!(a1.summary_digest(), a2.summary_digest(), "same seed must replay identically");
    assert_eq!(
        a1.telemetry.as_ref().unwrap().event_log,
        a2.telemetry.as_ref().unwrap().event_log,
        "recovery event logs must replay byte for byte"
    );
    assert_eq!(a1.salvaged_compute_secs.to_bits(), a2.salvaged_compute_secs.to_bits());

    let b = run(8);
    assert_ne!(a1.summary_digest(), b.summary_digest(), "a different seed must diverge");
}

/// The recovery vocabulary is pinned at the export layer too: a fixed-seed
/// recovery campaign's Perfetto trace and OpenMetrics exposition are
/// byte-pinned like the base-campaign goldens (which this PR leaves untouched —
/// the off path is byte-identical to pre-recovery builds).
#[test]
fn recovery_campaign_exports_match_goldens() {
    let run = || {
        let mut cfg = modeled_config(true);
        cfg.faults = Some(burst_plan(42));
        cfg.max_receive_count = Some(8);
        run_modeled(cfg, 12)
    };
    let r1 = run();
    let r2 = run();
    let t1 = r1.telemetry.as_ref().unwrap();
    let t2 = r2.telemetry.as_ref().unwrap();
    assert_eq!(t1.perfetto_json, t2.perfetto_json, "Perfetto export must replay byte-identically");
    assert_eq!(t1.openmetrics_text, t2.openmetrics_text, "OpenMetrics must replay byte-identically");
    for m in ["spot_notices_total", "drains_total", "checkpoints_written_total"] {
        assert!(t1.openmetrics_text.contains(m), "recovery counter {m} missing from OpenMetrics");
    }
    assert!(t1.openmetrics_text.contains("slo_ledger_salvaged_secs"));

    let golden = |name: &str, actual: &str| {
        let path = format!("{}/golden/{name}", env!("CARGO_MANIFEST_DIR"));
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&path, actual).expect("rewrite golden");
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read golden {path}: {e} (rerun with UPDATE_GOLDEN=1)"));
        assert_eq!(actual, want, "{name} drifted; rerun with UPDATE_GOLDEN=1 if intended");
    };
    golden("recovery_perfetto.json", &t1.perfetto_json);
    golden("recovery_openmetrics.txt", &t1.openmetrics_text);
}

#[test]
fn interruption_storm_alert_fires_during_the_burst() {
    let mut cfg = modeled_config(true);
    cfg.faults = Some(burst_plan(42));
    cfg.max_receive_count = Some(8);
    cfg.monitor = Some(MonitorConfig {
        rules: vec![telemetry::AlertRule::interruption_storm(900.0, 3)],
        ..MonitorConfig::default()
    });
    let report = run_modeled(cfg, 20);
    assert!(report.interruptions >= 3, "premise: the storm must strike hard enough");
    let storms: Vec<_> =
        report.alerts.iter().filter(|a| a.rule == "interruption_storm").collect();
    assert!(!storms.is_empty(), "an interruption storm must trip the rule");
    for a in &storms {
        assert!(a.at_secs <= report.makespan.as_secs());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation under drain + checkpoint + resume: across randomized chaos
    /// schedules (burst shape, fault seed, notice lead, checkpoint-write
    /// failures) every accession completes or dead-letters — hand-back can
    /// reorder and duplicate work, never lose it — and drained compute is
    /// accounted exactly once (salvage never exceeds what interruptions could
    /// have stranded).
    #[test]
    fn drain_checkpoint_resume_conserves_accessions(
        seed in 0u64..1000,
        burst_start in 0.0f64..1200.0,
        burst_rate in 6.0f64..30.0,
        notice_lead in 30.0f64..300.0,
        ckpt_fail in 0.0f64..0.3,
    ) {
        let plan = FaultPlan {
            seed,
            spot_notice_secs: notice_lead,
            checkpoint_write_fail: ckpt_fail,
            spot_bursts: vec![SpotBurst {
                start_secs: burst_start,
                duration_secs: 1800.0,
                rate_per_hour: burst_rate,
            }],
            ..FaultPlan::default()
        };
        plan.validate().unwrap();
        let mut cfg = modeled_config(true);
        cfg.faults = Some(plan);
        cfg.max_receive_count = Some(10);
        let ids = ModeledWorkload::accessions(12);
        let report = Orchestrator::with_workload(
            ModeledWorkload::default().into_workload(), cfg,
        ).unwrap().run(&ids).unwrap();

        prop_assert_eq!(
            report.completed.len() + report.dead_lettered.len(),
            ids.len(),
            "every accession must resolve"
        );
        let mut resolved: Vec<&str> = report
            .completed
            .iter()
            .map(|r| r.accession.as_str())
            .chain(report.dead_lettered.iter().map(|s| s.as_str()))
            .collect();
        resolved.sort_unstable();
        let mut expect: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
        expect.sort_unstable();
        prop_assert_eq!(resolved, expect);
        prop_assert!(report.salvaged_compute_secs >= 0.0);
        let totals = &report.slo.as_ref().unwrap().totals;
        prop_assert!(totals.salvaged_secs >= 0.0 && totals.lost_secs >= 0.0);
        prop_assert!((totals.salvaged_secs - report.salvaged_compute_secs).abs() < 1e-6);
    }

    /// The new fault-plan knobs validate exactly like the old ones: any lead
    /// and probability in range pass, anything outside is rejected.
    #[test]
    fn fault_plan_recovery_knobs_validate(
        lead in -100.0f64..1000.0,
        ckpt_fail in -0.5f64..1.5,
    ) {
        let plan = FaultPlan {
            spot_notice_secs: lead,
            checkpoint_write_fail: ckpt_fail,
            ..FaultPlan::default()
        };
        let ok = lead >= 0.0 && lead.is_finite() && (0.0..=1.0).contains(&ckpt_fail);
        prop_assert_eq!(plan.validate().is_ok(), ok);
        let nan = FaultPlan { spot_notice_secs: f64::NAN, ..FaultPlan::default() };
        prop_assert!(nan.validate().is_err());
        let inf = FaultPlan { spot_notice_secs: f64::INFINITY, ..FaultPlan::default() };
        prop_assert!(inf.validate().is_err());
    }
}
