//! Campaign-level integration: the discrete-event orchestrator must agree with a
//! plain sequential execution of the same pipeline, survive hostile spot markets,
//! and price the release-111 configuration below the release-108 one.

use atlas_pipeline::experiments::Substrate;
use atlas_pipeline::orchestrator::{CampaignConfig, Orchestrator};
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use cloudsim::instance::InstanceType;
use cloudsim::{ScalingPolicy, SpotMarket};
use genomics::EnsemblParams;
use sra_sim::accession::CatalogParams;
use sra_sim::SraRepository;
use std::sync::Arc;

fn pipeline_fixture(n: usize, sc_fraction: f64) -> (Arc<AtlasPipeline>, Vec<String>) {
    let sub = Substrate::build(EnsemblParams::tiny()).unwrap();
    let catalog = CatalogParams {
        n_accessions: n,
        single_cell_fraction: sc_fraction,
        bulk_spots_median: 400,
        ..CatalogParams::default()
    }
    .generate()
    .unwrap();
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(600),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    let pipeline = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc).unwrap(),
    );
    let ids = pipeline.repository().ids();
    (pipeline, ids)
}

fn campaign_config() -> CampaignConfig {
    let t = InstanceType::by_name("r6a.xlarge").unwrap();
    let mut cfg = CampaignConfig::new(t, 1 << 20);
    cfg.scaling = ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
    cfg
}

#[test]
fn orchestrated_results_match_sequential_execution() {
    let (pipeline, ids) = pipeline_fixture(10, 0.2);
    // Sequential ground truth.
    let mut sequential: std::collections::BTreeMap<String, (bool, f64)> = Default::default();
    for id in &ids {
        let r = pipeline.run_accession(id).unwrap();
        sequential.insert(id.clone(), (r.early_stopped(), r.mapping_rate));
    }
    // Orchestrated.
    let orch = Orchestrator::new(Arc::clone(&pipeline), campaign_config()).unwrap();
    let report = orch.run(&ids).unwrap();
    assert_eq!(report.completed.len(), ids.len());
    for r in &report.completed {
        let (stopped, rate) = sequential[&r.accession];
        assert_eq!(r.early_stopped(), stopped, "{}", r.accession);
        assert!((r.mapping_rate - rate).abs() < 1e-9, "{}", r.accession);
    }
}

#[test]
fn hostile_spot_market_still_completes_everything() {
    let (pipeline, ids) = pipeline_fixture(12, 0.0);
    let mut cfg = campaign_config();
    cfg.spot_market = SpotMarket { price_factor: 0.3, interruptions_per_hour: 600.0, seed: 5 };
    cfg.scale_tick = cloudsim::SimDuration::from_secs(10.0);
    cfg.poll_interval = cloudsim::SimDuration::from_secs(5.0);
    let orch = Orchestrator::new(pipeline, cfg).unwrap();
    let report = orch.run(&ids).unwrap();
    assert_eq!(report.completed.len(), 12);
    assert!(report.interruptions > 0, "market must actually interrupt");
    // Interruption recovery costs re-delivered work.
    assert!(report.redeliveries > 0, "lost jobs must be re-delivered");
}

#[test]
fn early_stopping_reduces_campaign_alignment_time() {
    let (with_policy, ids) = pipeline_fixture(12, 0.25);
    // A second pipeline identical but without the policy.
    let sub = Substrate::build(EnsemblParams::tiny()).unwrap();
    let catalog = CatalogParams {
        n_accessions: 12,
        single_cell_fraction: 0.25,
        bulk_spots_median: 400,
        ..CatalogParams::default()
    }
    .generate()
    .unwrap();
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(600),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    pc.early_stop = None;
    let without_policy = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc).unwrap(),
    );

    let report_on =
        Orchestrator::new(with_policy, campaign_config()).unwrap().run(&ids).unwrap();
    let report_off =
        Orchestrator::new(without_policy, campaign_config()).unwrap().run(&ids).unwrap();
    assert_eq!(report_on.savings.stopped, 3, "25% of 12");
    assert_eq!(report_off.savings.stopped, 0);
    let align_on = report_on.savings.actual_secs;
    let align_off = report_off.savings.actual_secs;
    assert!(
        align_on < align_off,
        "early stopping must reduce total alignment seconds: {align_on} vs {align_off}"
    );
}

#[test]
fn makespan_shrinks_with_a_larger_fleet() {
    let (pipeline, ids) = pipeline_fixture(12, 0.0);
    let mut small = campaign_config();
    small.scaling = ScalingPolicy { min_size: 1, max_size: 1, target_backlog_per_instance: 1 };
    let mut large = campaign_config();
    large.scaling = ScalingPolicy { min_size: 4, max_size: 4, target_backlog_per_instance: 1 };
    let r_small = Orchestrator::new(Arc::clone(&pipeline), small).unwrap().run(&ids).unwrap();
    let r_large = Orchestrator::new(pipeline, large).unwrap().run(&ids).unwrap();
    assert!(
        r_large.makespan < r_small.makespan,
        "scaling out must shorten the campaign: {} vs {}",
        r_large.makespan,
        r_small.makespan
    );
}

#[test]
fn paired_catalog_campaign_completes_with_counts() {
    // A fully paired-end catalog through the whole simulated architecture.
    let sub = Substrate::build(EnsemblParams::tiny()).unwrap();
    let catalog = CatalogParams {
        n_accessions: 6,
        single_cell_fraction: 0.0,
        bulk_spots_median: 300,
        paired_fraction: 1.0,
        ..CatalogParams::default()
    }
    .generate()
    .unwrap();
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(400),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    let pipeline = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc).unwrap(),
    );
    let ids = pipeline.repository().ids();
    let report = Orchestrator::new(pipeline, campaign_config()).unwrap().run(&ids).unwrap();
    assert_eq!(report.completed.len(), 6);
    for r in &report.completed {
        assert!(r.mapping_rate > 0.6, "{}: paired rate {}", r.accession, r.mapping_rate);
    }
    let norm = report.normalized.expect("paired fragments produce counts");
    assert_eq!(norm.sample_ids.len(), 6);
}

#[test]
fn bigger_index_costs_more_init_time() {
    // §III-A: "reduces the initial overhead associated with downloading and loading
    // index to shared memory".
    let t = InstanceType::by_name("r6a.4xlarge").unwrap();
    let gib = (1u64 << 30) as f64;
    let cfg_108 = CampaignConfig::new(t, (85.0 * gib) as u64);
    let cfg_111 = CampaignConfig::new(t, (29.5 * gib) as u64);
    let ratio = cfg_108.init_secs() / cfg_111.init_secs();
    assert!((ratio - 85.0 / 29.5).abs() < 0.01, "init time ratio {ratio}");
    assert!(cfg_108.init_secs() > 200.0, "85 GiB at 400 MB/s is minutes, not seconds");
}
