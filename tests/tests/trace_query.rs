//! Trace query engine + differential run attribution, end to end.
//!
//! Three layers of guarantees:
//!
//! * **Golden pin (CI gate).** The `trace_query`-style text output over the
//!   fixed-seed mini-campaign's event log — a group-by-kind census, a
//!   per-instance queue-wait table, and the chaos-vs-clean diff waterfall —
//!   is byte-pinned in `tests/golden/trace_query.txt`, next to the
//!   Perfetto/OpenMetrics pins. The test drives `Query::parse_args`, the same
//!   code path as the binary's CLI.
//! * **Exactness.** `diff(A, A)` is exactly empty; `diff(A, B)` deltas are
//!   bit-exact negations of `diff(B, A)`; each diff section's `total_delta`
//!   re-folds from its listed entries with `==`; and the category deltas of a
//!   chaos-vs-clean campaign diff equal the deltas of the two attribution
//!   ledgers' totals bit for bit.
//! * **Order-invariance (proptests).** Grouped aggregation renders
//!   byte-identically under arbitrary permutations of the log lines, and
//!   merging the per-group quantile sketches reproduces the whole-log sketch
//!   exactly (and the true quantile within the sketch's relative-error bound).

use atlas_pipeline::differential::run_differential;
use atlas_pipeline::experiments::Substrate;
use atlas_pipeline::orchestrator::{CampaignConfig, CampaignReport, Orchestrator};
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use atlas_pipeline::workload::ModeledWorkload;
use cloudsim::faults::FaultPlan;
use cloudsim::instance::InstanceType;
use cloudsim::ScalingPolicy;
use genomics::EnsemblParams;
use proptest::prelude::*;
use sra_sim::accession::CatalogParams;
use sra_sim::SraRepository;
use std::sync::Arc;
use telemetry::{diff, BurnRateRule, Query, RunProfile, Slo, SloConfig, SloRegistry, SloSignal};

/// The same deterministic mini-campaign as the export goldens: modeled
/// per-read align cost, fixed catalog seed, everything bit-reproducible.
fn fixture(n: usize) -> (Arc<AtlasPipeline>, Vec<String>) {
    let sub = Substrate::build(EnsemblParams::tiny()).unwrap();
    let catalog = CatalogParams {
        seed: 2024,
        n_accessions: n,
        single_cell_fraction: 0.0,
        bulk_spots_median: 400,
        bulk_spots_sigma: 0.0,
        ..CatalogParams::default()
    }
    .generate()
    .unwrap();
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(6_000),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    pc.align_secs_per_read = Some(2.0e-2);
    let pipeline = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc)
            .unwrap(),
    );
    let ids = pipeline.repository().ids();
    (pipeline, ids)
}

fn base_config() -> CampaignConfig {
    let t = InstanceType::by_name("r6a.xlarge").unwrap();
    let mut cfg = CampaignConfig::new(t, 1 << 20);
    cfg.scaling = ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
    cfg.scale_tick = cloudsim::SimDuration::from_secs(10.0);
    cfg.poll_interval = cloudsim::SimDuration::from_secs(5.0);
    cfg
}

/// Generous SLO thresholds: nothing burns, but the attribution ledger is built.
fn ledger_slo() -> SloConfig {
    SloConfig {
        registry: SloRegistry {
            slos: vec![Slo {
                id: "accession_turnaround_p95".into(),
                signal: SloSignal::AccessionTurnaround,
                threshold: 1e6,
                target: 0.95,
                windows: vec![BurnRateRule {
                    long_secs: 200.0,
                    short_secs: 20.0,
                    factor: 2.0,
                    min_count: 3,
                }],
            }],
            cost_usd_per_hour: 0.0,
        },
        ..SloConfig::default()
    }
}

fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 7,
        s3_get_fail: 0.2,
        s3_put_fail: 0.1,
        sqs_receive_fail: 0.1,
        sqs_delete_fail: 0.1,
        sqs_extend_fail: 0.1,
        duplicate_delivery: 0.05,
        worker_crash_per_job: 0.1,
        spot_bursts: Vec::new(),
        ..FaultPlan::default()
    }
}

fn run(pipeline: &Arc<AtlasPipeline>, ids: &[String], cfg: CampaignConfig) -> CampaignReport {
    Orchestrator::new(Arc::clone(pipeline), cfg).unwrap().run(ids).unwrap()
}

fn event_log(report: &CampaignReport) -> &str {
    &report.telemetry.as_ref().expect("telemetry on by default").event_log
}

fn query(log: &str, args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    Query::parse_args(&args).unwrap().run(log).unwrap().render_text()
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = format!("{}/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("rewrite golden");
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read golden {path}: {e} (rerun with UPDATE_GOLDEN=1)"));
    assert_eq!(actual, golden, "{name} drifted; rerun with UPDATE_GOLDEN=1 if intended");
}

/// CI gate: representative trace_query outputs over the fixed-seed
/// mini-campaign — kind census, per-instance queue waits, and the
/// chaos-vs-clean diff — all byte-pinned in one golden.
#[test]
fn trace_query_text_matches_golden() {
    let (pipeline, ids) = fixture(6);
    let clean = run(&pipeline, &ids, base_config());
    let mut chaos_cfg = base_config();
    chaos_cfg.faults = Some(chaos_plan());
    chaos_cfg.max_receive_count = Some(6);
    let chaos = run(&pipeline, &ids, chaos_cfg);

    let mut out = String::new();
    out.push_str("$ trace_query query clean.ndjson --group-by kind\n");
    out.push_str(&query(event_log(&clean), &["--group-by", "kind"]));
    out.push_str(
        "\n$ trace_query query clean.ndjson --kind queue_wait --group-by instance \
         --agg count --agg sum:wait_secs --agg quantiles:wait_secs\n",
    );
    out.push_str(&query(
        event_log(&clean),
        &[
            "--kind",
            "queue_wait",
            "--group-by",
            "instance",
            "--agg",
            "count",
            "--agg",
            "sum:wait_secs",
            "--agg",
            "quantiles:wait_secs",
        ],
    ));
    out.push_str("\n$ trace_query diff clean.ndjson chaos.ndjson\n");
    let a = RunProfile::from_event_log("clean.ndjson", event_log(&clean)).unwrap();
    let b = RunProfile::from_event_log("chaos.ndjson", event_log(&chaos)).unwrap();
    out.push_str(&diff(&a, &b).render_text());

    // Same inputs, second pass: the whole surface must be deterministic before
    // it is worth pinning.
    let out2 = {
        let a2 = RunProfile::from_event_log("clean.ndjson", event_log(&clean)).unwrap();
        assert_eq!(a, a2, "profile extraction must be deterministic");
        query(event_log(&clean), &["--group-by", "kind"])
    };
    assert!(out.contains(&out2), "query rendering must be deterministic");

    assert_matches_golden("trace_query.txt", &out);
}

/// The acceptance-criteria exactness bundle, on real campaign reports:
/// chaos-vs-clean category deltas equal the ledger-total deltas bit for bit,
/// section totals re-fold exactly, self-diff is empty, and the reported cost
/// delta is exactly the difference of the two cost models' totals.
#[test]
fn chaos_attribution_matches_ledger_totals_bit_exactly() {
    let (pipeline, ids) = fixture(8);
    let mut clean_cfg = base_config();
    clean_cfg.slo = Some(ledger_slo());
    let clean = run(&pipeline, &ids, clean_cfg);
    let mut chaos_cfg = base_config();
    chaos_cfg.slo = Some(ledger_slo());
    chaos_cfg.faults = Some(chaos_plan());
    chaos_cfg.max_receive_count = Some(6);
    let chaos = run(&pipeline, &ids, chaos_cfg);
    assert!(chaos.fault_counters.total_faults() > 0, "premise: chaos struck");

    let a = clean.run_profile("clean");
    let b = chaos.run_profile("chaos");
    let d = diff(&a, &b);

    // Self-diff of a full report profile is exactly empty.
    assert!(diff(&a, &clean.run_profile("clean")).is_empty());

    // Reported scalar deltas are the bit-exact differences of the reports.
    assert_eq!(
        d.makespan_delta_secs.to_bits(),
        (chaos.makespan.as_secs() - clean.makespan.as_secs()).to_bits()
    );
    assert_eq!(
        d.cost_delta_usd.to_bits(),
        (chaos.cost.total_usd - clean.cost.total_usd).to_bits()
    );

    // Category deltas come straight from the two attribution ledgers.
    let (lt_a, lt_b) = (
        &clean.slo.as_ref().unwrap().totals,
        &chaos.slo.as_ref().unwrap().totals,
    );
    let latency = d
        .sections
        .iter()
        .find(|s| s.title.starts_with("latency"))
        .expect("chaos run must move latency categories");
    for e in &latency.entries {
        let (la, lb) = match e.name.as_str() {
            "queue_wait" => (lt_a.queue_wait_secs, lt_b.queue_wait_secs),
            "download" => (lt_a.download_secs, lt_b.download_secs),
            "align" => (lt_a.align_secs, lt_b.align_secs),
            "collect" => (lt_a.collect_secs, lt_b.collect_secs),
            "retry_waste" => (lt_a.retry_waste_secs, lt_b.retry_waste_secs),
            "idle_gap" => (lt_a.idle_gap_secs, lt_b.idle_gap_secs),
            other => panic!("unexpected latency category {other}"),
        };
        assert_eq!(e.a.to_bits(), la.to_bits(), "{}: A side must be the ledger total", e.name);
        assert_eq!(e.b.to_bits(), lb.to_bits(), "{}: B side must be the ledger total", e.name);
        assert_eq!(e.delta.to_bits(), (lb - la).to_bits(), "{}: delta bit-exact", e.name);
    }

    // Every section's reported total re-folds from its listed entries with ==.
    for s in &d.sections {
        let refold = s.entries.iter().fold(0.0, |acc, e| acc + e.delta);
        assert_eq!(refold.to_bits(), s.total_delta.to_bits(), "section {}", s.title);
    }

    // Antisymmetry on the real reports, not just synthetic profiles.
    let r = diff(&b, &a);
    assert_eq!(d.makespan_delta_secs.to_bits(), (-r.makespan_delta_secs).to_bits());
    for (s, rs) in d.sections.iter().zip(&r.sections) {
        assert_eq!(s.total_delta.to_bits(), (-rs.total_delta).to_bits(), "{}", s.title);
    }

    // The waterfall is not vacuous: chaos must show up as retry waste.
    assert!(
        latency.entries.iter().any(|e| e.name == "retry_waste" && e.delta > 0.0),
        "chaos campaign must attribute added retry waste: {}",
        d.render_text()
    );
}

/// A replayed campaign's attribution is empty — `run_differential` comparisons
/// now print *where* runs drift, and for a true replay there is nothing to
/// print. Also proves the query layer is a pure observer: it reads the saved
/// log, so digest and stripped log equality is untouched by construction.
#[test]
fn replay_attribution_is_empty() {
    let workload = ModeledWorkload { seed: 99, ..ModeledWorkload::default() }.into_workload();
    let cfg = base_config();
    let ids = ModeledWorkload::accessions(8);
    let cmp = run_differential(workload, &cfg, &ids).unwrap();
    cmp.assert_equivalent().expect("replay must be byte-equivalent");
    let attribution = cmp.attribution();
    assert!(attribution.is_empty(), "replay attribution:\n{}", attribution.render_text());
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

/// One synthetic event: (t, kind index, instance, value).
type Ev = (u32, u8, u8, f64);

fn render_log(events: &[Ev]) -> String {
    events
        .iter()
        .map(|(t, kind, inst, v)| {
            format!(
                "{{\"t\":{t},\"kind\":\"k{}\",\"instance\":{inst},\"v\":{}}}\n",
                kind % 3,
                telemetry::json::fmt_f64(*v)
            )
        })
        .collect()
}

fn arb_events() -> impl Strategy<Value = Vec<Ev>> {
    prop::collection::vec(
        (0u32..1000, any::<u8>(), 0u8..6, 0.0f64..1e6),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grouped aggregation is a pure function of the event *multiset*: any
    /// permutation of the log lines renders byte-identically.
    #[test]
    fn grouped_aggregation_is_order_invariant(
        events in arb_events(),
        seed in any::<u64>(),
    ) {
        let args: Vec<String> = [
            "--group-by", "kind,instance",
            "--agg", "count",
            "--agg", "sum:v",
            "--agg", "min:v",
            "--agg", "max:v",
            "--agg", "quantiles:v",
        ].iter().map(|s| s.to_string()).collect();
        let q = Query::parse_args(&args).unwrap();
        let base = q.run(&render_log(&events)).unwrap().render_text();

        // Deterministic Fisher–Yates driven by a splitmix-style walk.
        let mut shuffled = events.clone();
        let mut s = seed | 1;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(0x9E3779B97F4A7C15);
            shuffled.swap(i, (s >> 33) as usize % (i + 1));
        }
        let permuted = q.run(&render_log(&shuffled)).unwrap().render_text();
        prop_assert_eq!(base, permuted);
    }

    /// Merging the per-group sketches reconstructs the whole-log sketch
    /// exactly, and its quantiles sit within the sketch's relative-error
    /// bound of the true empirical quantile.
    #[test]
    fn group_sketch_merge_matches_whole_log(events in arb_events()) {
        let grouped = Query::parse_args(
            &["--group-by", "instance", "--agg", "quantiles:v"].map(String::from),
        ).unwrap().run(&render_log(&events)).unwrap();
        let whole = Query::parse_args(
            &["--agg", "quantiles:v"].map(String::from),
        ).unwrap().run(&render_log(&events)).unwrap();

        let merged = grouped.merged_sketch(0).expect("at least one group");
        let direct = whole.merged_sketch(0).expect("one global group");
        prop_assert_eq!(merged.count(), direct.count());

        let mut values: Vec<f64> = events.iter().map(|e| e.3).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.95, 0.99] {
            let m = merged.quantile(q);
            let d = direct.quantile(q);
            prop_assert_eq!(m.to_bits(), d.to_bits(), "merge must be exact at q={}", q);
            // DDSketch bound: relative error <= alpha against the true value,
            // at the sketch's own order statistic (0-based floor(q*(n-1))).
            let rank = (q * (values.len() - 1) as f64).floor() as usize;
            let exact = values[rank];
            let bound = telemetry::query::QUERY_SKETCH_ALPHA * exact.abs() + 1e-9;
            prop_assert!(
                (m - exact).abs() <= bound * 1.0001 + f64::EPSILON * exact.abs(),
                "q={} est={} exact={}", q, m, exact
            );
        }
    }

    /// diff(A, A) is exactly empty for arbitrary profiles.
    #[test]
    fn self_diff_is_empty(
        makespan in 0.0f64..1e7,
        cost in 0.0f64..1e4,
        cats in prop::collection::vec((0u8..8, 0.0f64..1e5), 0..8),
    ) {
        let profile = RunProfile {
            label: "a".into(),
            makespan_secs: makespan,
            cost_usd: cost,
            latency_categories: cats.iter()
                .map(|(k, v)| (format!("c{k}"), *v)).collect(),
            ..RunProfile::default()
        };
        prop_assert!(diff(&profile, &profile).is_empty());
    }

    /// diff(A, B) deltas are bit-exact negations of diff(B, A), including the
    /// section total folds.
    #[test]
    fn swapped_diff_negates(
        a_vals in prop::collection::vec(0.0f64..1e5, 4),
        b_vals in prop::collection::vec(0.0f64..1e5, 4),
        a_scalar in 0.0f64..1e6,
        b_scalar in 0.0f64..1e6,
    ) {
        let mk = |label: &str, scalar: f64, vals: &[f64]| RunProfile {
            label: label.into(),
            makespan_secs: scalar,
            cost_usd: scalar / 100.0,
            latency_categories: vals.iter().enumerate()
                .map(|(i, v)| (format!("c{i}"), *v)).collect(),
            per_accession_secs: vals.iter().enumerate()
                .map(|(i, v)| (format!("SRR{i}"), v * 2.0)).collect(),
            ..RunProfile::default()
        };
        let (a, b) = (mk("a", a_scalar, &a_vals), mk("b", b_scalar, &b_vals));
        let (ab, ba) = (diff(&a, &b), diff(&b, &a));
        prop_assert_eq!(ab.makespan_delta_secs.to_bits(), (-ba.makespan_delta_secs).to_bits());
        prop_assert_eq!(ab.cost_delta_usd.to_bits(), (-ba.cost_delta_usd).to_bits());
        prop_assert_eq!(ab.sections.len(), ba.sections.len());
        for (sa, sb) in ab.sections.iter().zip(&ba.sections) {
            prop_assert_eq!(sa.total_delta.to_bits(), (-sb.total_delta).to_bits());
            prop_assert_eq!(sa.entries.len(), sb.entries.len());
            for (ea, eb) in sa.entries.iter().zip(&sb.entries) {
                prop_assert_eq!(&ea.name, &eb.name);
                prop_assert_eq!(ea.delta.to_bits(), (-eb.delta).to_bits());
            }
        }
    }
}
