//! Replay verification of the discrete-event kernel engine.
//!
//! The legacy per-tick scan loop the kernel soaked against has been deleted;
//! what remains load-bearing is that the kernel is a pure function of config +
//! workload. These tests prove a replay is *byte-for-byte* identical —
//! identical summary digests, completion orders, dead letters, fault tallies,
//! makespans, costs, dispatched event counts and stripped telemetry logs —
//! across:
//!
//! * a fault-free real-pipeline campaign;
//! * chaos-seeded real-pipeline campaigns (transient faults + spot bursts);
//! * a fleet-scale modeled campaign far beyond what the old tick loop's test
//!   budget allowed.
//!
//! They also pin the chaos-suite guarantees (conservation, bit-exact replay)
//! and the monitor pure-observer proof to the kernel path explicitly.

use atlas_pipeline::experiments::Substrate;
use atlas_pipeline::orchestrator::{CampaignConfig, CampaignEngine, Orchestrator};
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use atlas_pipeline::{differential, run_differential, ModeledWorkload};
use cloudsim::faults::{FaultPlan, SpotBurst};
use cloudsim::instance::InstanceType;
use cloudsim::ScalingPolicy;
use genomics::EnsemblParams;
use sra_sim::accession::CatalogParams;
use sra_sim::SraRepository;
use std::sync::Arc;
use telemetry::MonitorConfig;

fn pipeline_fixture(n: usize) -> (Arc<AtlasPipeline>, Vec<String>) {
    let sub = Substrate::build(EnsemblParams::tiny()).unwrap();
    let catalog = CatalogParams {
        n_accessions: n,
        single_cell_fraction: 0.2,
        bulk_spots_median: 400,
        ..CatalogParams::default()
    }
    .generate()
    .unwrap();
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(600),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    // Modeled per-read align cost keeps campaign clocks bit-reproducible.
    pc.align_secs_per_read = Some(2.0e-4);
    let pipeline = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc).unwrap(),
    );
    let ids = pipeline.repository().ids();
    (pipeline, ids)
}

fn small_fleet_config() -> CampaignConfig {
    let t = InstanceType::by_name("r6a.xlarge").unwrap();
    let mut cfg = CampaignConfig::new(t, 1 << 20);
    cfg.scaling = ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
    cfg.scale_tick = cloudsim::SimDuration::from_secs(10.0);
    cfg.poll_interval = cloudsim::SimDuration::from_secs(5.0);
    cfg
}

fn chaos_config(plan: FaultPlan) -> CampaignConfig {
    let mut cfg = small_fleet_config();
    cfg.spot_market =
        cloudsim::SpotMarket { price_factor: 0.35, interruptions_per_hour: 40.0, seed: 5 };
    cfg.faults = Some(plan);
    cfg.max_receive_count = Some(6);
    cfg
}

#[test]
fn fault_free_campaign_replays_byte_for_byte() {
    let (pipeline, ids) = pipeline_fixture(8);
    let cmp = run_differential(pipeline, &small_fleet_config(), &ids).unwrap();
    cmp.assert_equivalent().unwrap_or_else(|d| panic!("replay diverged: {d}"));
    assert_eq!(cmp.first.completed.len(), ids.len());
    assert!(cmp.first.sim_events > 0, "the kernel must actually dispatch events");
}

#[test]
fn chaos_campaign_replays_byte_for_byte() {
    let (pipeline, ids) = pipeline_fixture(10);
    // The hostile end of the fault spectrum: transient faults on every service
    // plus a violent spot burst — the regime where scheduling-order bugs show.
    let mut plan = FaultPlan::chaos(42);
    plan.spot_bursts =
        vec![SpotBurst { start_secs: 200.0, duration_secs: 600.0, rate_per_hour: 30.0 }];
    let cmp = run_differential(pipeline, &chaos_config(plan), &ids).unwrap();
    cmp.assert_equivalent().unwrap_or_else(|d| panic!("replay diverged under chaos: {d}"));
    assert!(cmp.first.fault_counters.total_faults() > 0, "premise: chaos actually struck");

    // The determinism must hold per seed, not on average: a second seed takes
    // a different trajectory and its replay must follow it in lockstep.
    let (pipeline, ids) = pipeline_fixture(10);
    let cmp2 = run_differential(pipeline, &chaos_config(FaultPlan::chaos(7)), &ids).unwrap();
    cmp2.assert_equivalent().unwrap_or_else(|d| panic!("replay diverged on seed 7: {d}"));
    assert_ne!(
        cmp.first.summary_digest(),
        cmp2.first.summary_digest(),
        "different fault seeds must steer the campaign differently"
    );
}

#[test]
fn fleet_scale_modeled_campaign_replays_byte_for_byte() {
    // 400 accessions over a 32-instance ceiling — an order of magnitude past the
    // real-pipeline fixtures, cheap because the workload is modeled (the bench
    // covers 10k+).
    let n = 400;
    let ids = ModeledWorkload::accessions(n);
    let t = InstanceType::by_name("r6a.xlarge").unwrap();
    let mut cfg = CampaignConfig::new(t, 1 << 20);
    cfg.scaling = ScalingPolicy { min_size: 0, max_size: 32, target_backlog_per_instance: 8 };
    cfg.spot_market =
        cloudsim::SpotMarket { price_factor: 0.35, interruptions_per_hour: 8.0, seed: 11 };
    cfg.faults = Some(FaultPlan::chaos(21));
    cfg.max_receive_count = Some(6);

    let cmp = run_differential(ModeledWorkload::default().into_workload(), &cfg, &ids).unwrap();
    cmp.assert_equivalent().unwrap_or_else(|d| panic!("replay diverged at fleet scale: {d}"));

    // Conservation at scale, on the kernel report.
    assert_eq!(
        cmp.first.completed.len() + cmp.first.dead_lettered.len(),
        n,
        "every accession resolves exactly once"
    );
    assert!(cmp.first.instances_launched >= 32, "the fleet must actually scale out");
}

#[test]
fn kernel_engine_replays_bit_for_bit_and_conserves_under_chaos() {
    // The chaos-suite guarantees, pinned to the kernel path explicitly.
    let n = 120;
    let ids = ModeledWorkload::accessions(n);
    let t = InstanceType::by_name("r6a.xlarge").unwrap();
    let mut cfg = CampaignConfig::new(t, 1 << 20);
    cfg.engine = CampaignEngine::EventKernel;
    cfg.scaling = ScalingPolicy { min_size: 0, max_size: 12, target_backlog_per_instance: 6 };
    cfg.spot_market =
        cloudsim::SpotMarket { price_factor: 0.35, interruptions_per_hour: 30.0, seed: 5 };
    cfg.faults = Some(FaultPlan::chaos(9));
    cfg.max_receive_count = Some(5);

    let run = |cfg: &CampaignConfig| {
        Orchestrator::with_workload(ModeledWorkload::default().into_workload(), cfg.clone())
            .unwrap()
            .run(&ids)
            .unwrap()
    };
    let a1 = run(&cfg);
    let a2 = run(&cfg);
    assert_eq!(a1.summary_digest(), a2.summary_digest(), "same seed must replay identically");
    assert_eq!(a1.sim_events, a2.sim_events);
    assert_eq!(
        differential::stripped_event_log(&a1),
        differential::stripped_event_log(&a2),
        "replayed event logs must match byte for byte"
    );

    // Conservation: every accession resolved exactly once, no inventions.
    let mut resolved: Vec<&str> = a1
        .completed
        .iter()
        .map(|r| r.accession.as_str())
        .chain(a1.dead_lettered.iter().map(|s| s.as_str()))
        .collect();
    resolved.sort_unstable();
    let mut expect: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
    expect.sort_unstable();
    assert_eq!(resolved, expect);
    assert!(a1.fault_counters.total_faults() > 0, "premise: chaos actually struck");
}

#[test]
fn monitor_is_a_pure_observer_on_the_kernel_engine() {
    // Port of the telemetry_export proof to the kernel path: attaching the live
    // monitor must not perturb the simulation, only add monitor-gated records.
    let (pipeline, ids) = pipeline_fixture(8);
    let mut cfg = small_fleet_config();
    cfg.engine = CampaignEngine::EventKernel;
    let off = Orchestrator::new(Arc::clone(&pipeline), cfg.clone()).unwrap().run(&ids).unwrap();
    cfg.monitor = Some(MonitorConfig::standard());
    let on = Orchestrator::new(pipeline, cfg).unwrap().run(&ids).unwrap();

    assert_eq!(on.summary_digest(), off.summary_digest(), "watching must not change the campaign");
    assert_eq!(on.sim_events, off.sim_events, "the monitor must not schedule events");
    let off_log = &off.telemetry.as_ref().unwrap().event_log;
    assert!(!off_log.contains("\"kind\":\"progress\""), "progress events are monitor-gated");
    let on_log = &on.telemetry.as_ref().unwrap().event_log;
    assert!(on_log.contains("\"kind\":\"progress\""), "monitor-on campaigns stream progress");
    assert_eq!(
        differential::stripped_event_log(&on).unwrap(),
        off_log.lines().collect::<Vec<_>>().join("\n"),
        "monitor-on log is the off log plus monitor records"
    );
}
