//! Telemetry consumption layer end-to-end: golden-pinned Perfetto and
//! OpenMetrics exports of a fixed-seed mini-campaign, and the live monitor —
//! fault bursts, a planted straggler instance, and early-stop-eligible
//! accessions must fire their alerts *during* the campaign (online), while a
//! monitor-free run stays byte-identical.

use atlas_pipeline::orchestrator::{CampaignConfig, CampaignReport, Orchestrator};
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use atlas_pipeline::experiments::Substrate;
use cloudsim::faults::FaultPlan;
use cloudsim::instance::InstanceType;
use cloudsim::ScalingPolicy;
use genomics::EnsemblParams;
use sra_sim::accession::{AccessionMeta, CatalogParams};
use sra_sim::SraRepository;
use std::sync::Arc;
use telemetry::MonitorConfig;

/// Deterministic mini-campaign substrate: modeled per-read align cost so every
/// clock is bit-reproducible, small catalog so the whole thing runs in
/// milliseconds.
fn fixture_with(
    n: usize,
    sc_fraction: f64,
    edit: impl FnOnce(&mut Vec<AccessionMeta>),
) -> (Arc<AtlasPipeline>, Vec<String>) {
    let sub = Substrate::build(EnsemblParams::tiny()).unwrap();
    let mut catalog = CatalogParams {
        seed: 2024,
        n_accessions: n,
        single_cell_fraction: sc_fraction,
        bulk_spots_median: 400,
        bulk_spots_sigma: 0.0,
        ..CatalogParams::default()
    }
    .generate()
    .unwrap();
    edit(&mut catalog);
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(6_000),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    pc.align_secs_per_read = Some(2.0e-2);
    let pipeline = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc)
            .unwrap(),
    );
    let ids = pipeline.repository().ids();
    (pipeline, ids)
}

fn fixture(n: usize, sc_fraction: f64) -> (Arc<AtlasPipeline>, Vec<String>) {
    fixture_with(n, sc_fraction, |_| {})
}

fn base_config() -> CampaignConfig {
    let t = InstanceType::by_name("r6a.xlarge").unwrap();
    let mut cfg = CampaignConfig::new(t, 1 << 20);
    cfg.scaling = ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
    cfg.scale_tick = cloudsim::SimDuration::from_secs(10.0);
    cfg.poll_interval = cloudsim::SimDuration::from_secs(5.0);
    cfg
}

fn run(pipeline: &Arc<AtlasPipeline>, ids: &[String], cfg: CampaignConfig) -> CampaignReport {
    Orchestrator::new(Arc::clone(pipeline), cfg).unwrap().run(ids).unwrap()
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = format!("{}/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("rewrite golden");
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read golden {path}: {e} (rerun with UPDATE_GOLDEN=1)"));
    assert_eq!(actual, golden, "{name} drifted; rerun with UPDATE_GOLDEN=1 if intended");
}

/// CI gate: the fixed-seed mini-campaign's Perfetto trace and OpenMetrics
/// exposition are byte-pinned, like the telemetry schema golden.
#[test]
fn perfetto_and_openmetrics_exports_match_goldens() {
    let (pipeline, ids) = fixture(6, 0.0);
    let r1 = run(&pipeline, &ids, base_config());
    let r2 = run(&pipeline, &ids, base_config());
    let t1 = r1.telemetry.as_ref().expect("telemetry on by default");
    let t2 = r2.telemetry.as_ref().expect("telemetry on by default");
    assert_eq!(t1.perfetto_json, t2.perfetto_json, "Perfetto export must replay byte-identically");
    assert_eq!(t1.openmetrics_text, t2.openmetrics_text, "OpenMetrics must replay byte-identically");
    assert!(t1.perfetto_json.contains("\"traceEvents\""));
    assert!(t1.openmetrics_text.ends_with("# EOF\n"));
    assert_matches_golden("campaign_perfetto.json", &t1.perfetto_json);
    assert_matches_golden("campaign_openmetrics.txt", &t1.openmetrics_text);
}

/// A seeded fault storm must trip the fault-burst rule while the campaign is
/// still running — the alert is streamed into the same event log, not derived
/// after the fact.
#[test]
fn fault_burst_alerts_fire_online() {
    let (pipeline, ids) = fixture(10, 0.0);
    let mut cfg = base_config();
    // A proper storm: every S3/SQS call fails ~30% of the time, so the burst
    // window fills well past the rule's minimum count.
    cfg.faults = Some(FaultPlan {
        seed: 7,
        s3_get_fail: 0.3,
        s3_put_fail: 0.3,
        sqs_receive_fail: 0.3,
        sqs_delete_fail: 0.3,
        sqs_extend_fail: 0.3,
        duplicate_delivery: 0.1,
        worker_crash_per_job: 0.1,
        spot_bursts: Vec::new(),
        ..FaultPlan::default()
    });
    cfg.max_receive_count = Some(6);
    cfg.monitor = Some(MonitorConfig {
        rules: vec![telemetry::AlertRule::fault_burst(300.0, 5)],
        ..MonitorConfig::default()
    });
    let report = run(&pipeline, &ids, cfg);
    assert!(report.fault_counters.total_faults() >= 5, "premise: chaos struck hard enough");

    let bursts: Vec<_> =
        report.alerts.iter().filter(|a| a.rule == "fault_burst").collect();
    assert!(!bursts.is_empty(), "a seeded fault storm must trip the burst rule");
    for a in &report.alerts {
        assert!(
            a.at_secs <= report.makespan.as_secs(),
            "alert at {} fired after campaign end {}",
            a.at_secs,
            report.makespan.as_secs()
        );
        assert!(a.latency_secs >= 0.0);
    }

    // Online, not post-hoc: alert lines are interleaved into the stream, with
    // campaign events still arriving after the first alert.
    let t = report.telemetry.as_ref().unwrap();
    let lines: Vec<&str> = t.event_log.lines().collect();
    let first_alert = lines
        .iter()
        .position(|l| l.contains("\"kind\":\"alert\""))
        .expect("alerts appear in the event log");
    assert!(
        lines[first_alert + 1..].iter().any(|l| !l.contains("\"kind\":\"alert\"")),
        "campaign events must keep flowing after the first alert"
    );
    assert!(lines[first_alert].contains("\"rule\":\"fault_burst\""), "{}", lines[first_alert]);
}

/// Plant one accession ~12× the (otherwise uniform) fleet workload: the
/// instance that draws it becomes a straggler — its job p99 exceeds 3× the
/// fleet median — and must be flagged exactly once.
#[test]
fn planted_straggler_instance_fires_exactly_one_alert() {
    let (pipeline, ids) = fixture_with(12, 0.0, |catalog| {
        catalog[0].spots *= 12;
    });
    let mut cfg = base_config();
    cfg.monitor = Some(MonitorConfig {
        rules: vec![telemetry::AlertRule::straggler_instances(3.0, 8)],
        ..MonitorConfig::default()
    });
    let report = run(&pipeline, &ids, cfg);
    assert_eq!(report.completed.len(), 12);

    let stragglers: Vec<_> =
        report.alerts.iter().filter(|a| a.rule == "straggler_instance").collect();
    assert_eq!(
        stragglers.len(),
        1,
        "exactly the one planted straggler fires (got {:?})",
        report.alerts
    );
    let a = stragglers[0];
    assert!(a.value > a.threshold, "p99 {} must exceed 3× fleet median {}", a.value, a.threshold);
    assert!(a.at_secs <= report.makespan.as_secs(), "flagged before the campaign ended");
    assert!(
        !a.subject.is_empty() && a.subject.chars().all(|c| c.is_ascii_digit()),
        "subject is an instance id: {:?}",
        a.subject
    );
}

/// The monitor spots early-stop-eligible accessions from the live
/// mapping-rate series before the early-stop policy's own decision event
/// lands in the log.
#[test]
fn early_stop_eligible_alerts_precede_the_decision() {
    let (pipeline, ids) = fixture(8, 0.25);
    let mut cfg = base_config();
    cfg.monitor = Some(MonitorConfig {
        rules: vec![telemetry::AlertRule::early_stop_eligible(0.30, 0.10)],
        ..MonitorConfig::default()
    });
    let report = run(&pipeline, &ids, cfg);
    let stopped: Vec<&str> = report
        .completed
        .iter()
        .filter(|r| r.early_stopped())
        .map(|r| r.accession.as_str())
        .collect();
    assert!(!stopped.is_empty(), "premise: single-cell accessions early-stop");

    for acc in &stopped {
        let alert = report
            .alerts
            .iter()
            .find(|a| a.rule == "early_stop_eligible" && a.subject == *acc)
            .unwrap_or_else(|| panic!("no alert for early-stopped {acc}: {:?}", report.alerts));
        // The policy's decision event is backdated to the moment the align
        // stage was cut; the streaming alert must not be later.
        let t = report.telemetry.as_ref().unwrap();
        let decided = t
            .event_log
            .lines()
            .find(|l| l.contains("\"kind\":\"early_stop\"") && l.contains(acc))
            .and_then(|l| l.strip_prefix("{\"t\":"))
            .and_then(|l| l.split(',').next())
            .and_then(|v| v.parse::<f64>().ok())
            .expect("early_stop event with a timestamp");
        assert!(
            alert.at_secs <= decided + 1e-9,
            "alert for {acc} at {} must precede the decision at {decided}",
            alert.at_secs
        );
    }
    // Alerts fire only for accessions that are actually eligible.
    for a in report.alerts.iter().filter(|a| a.rule == "early_stop_eligible") {
        assert!(stopped.contains(&a.subject.as_str()), "false positive on {}", a.subject);
    }
}

/// The monitor is a pure observer: enabling it adds `progress` and `alert`
/// records to the log but never perturbs the campaign, and with it off the
/// log carries no trace of it.
#[test]
fn monitor_is_a_pure_observer() {
    let (pipeline, ids) = fixture(8, 0.25);
    let off = run(&pipeline, &ids, base_config());
    let mut cfg = base_config();
    cfg.monitor = Some(MonitorConfig::standard());
    let on = run(&pipeline, &ids, cfg);

    assert_eq!(
        on.summary_digest(),
        off.summary_digest(),
        "watching the campaign must not change it"
    );
    assert!(off.alerts.is_empty(), "no monitor, no alerts");
    let off_log = &off.telemetry.as_ref().unwrap().event_log;
    assert!(!off_log.contains("\"kind\":\"progress\""), "progress events are monitor-gated");
    assert!(!off_log.contains("\"kind\":\"alert\""));
    let on_log = &on.telemetry.as_ref().unwrap().event_log;
    assert!(on_log.contains("\"kind\":\"progress\""), "monitor-on campaigns stream progress");

    // Stripping the monitor-only records recovers the monitor-off log exactly.
    let stripped: String = on_log
        .lines()
        .filter(|l| !l.contains("\"kind\":\"progress\"") && !l.contains("\"kind\":\"alert\""))
        .flat_map(|l| [l, "\n"])
        .collect();
    assert_eq!(&stripped, off_log, "monitor-on log is the off log plus monitor records");
}
