//! Chaos campaigns: deterministic fault injection against the full orchestrator.
//!
//! Two end-to-end guarantees beyond what the unit suites check:
//!
//! * **conservation + correctness** — under a hostile fault plan every accession
//!   either completes or dead-letters, and the results of commonly-completed
//!   accessions are bit-identical to a fault-free run (faults perturb *when* and
//!   *how often* work happens, never *what* it computes);
//! * **replay** — the same `(workload, FaultPlan)` pair reproduces the campaign
//!   byte for byte, and a different fault seed produces a different trajectory.

use atlas_pipeline::experiments::Substrate;
use atlas_pipeline::orchestrator::{CampaignConfig, CampaignReport, Orchestrator};
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use cloudsim::faults::{FaultPlan, SpotBurst};
use cloudsim::instance::InstanceType;
use cloudsim::ScalingPolicy;
use genomics::EnsemblParams;
use sra_sim::accession::CatalogParams;
use sra_sim::SraRepository;
use std::sync::Arc;

fn pipeline_fixture(n: usize) -> (Arc<AtlasPipeline>, Vec<String>) {
    let sub = Substrate::build(EnsemblParams::tiny()).unwrap();
    let catalog = CatalogParams {
        n_accessions: n,
        single_cell_fraction: 0.2,
        bulk_spots_median: 400,
        ..CatalogParams::default()
    }
    .generate()
    .unwrap();
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(600),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    // Replace measured wall time with a modeled per-read cost so campaign clocks
    // (and hence digests) are bit-reproducible across runs.
    pc.align_secs_per_read = Some(2.0e-4);
    let pipeline = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc).unwrap(),
    );
    let ids = pipeline.repository().ids();
    (pipeline, ids)
}

fn chaos_config(plan: FaultPlan) -> CampaignConfig {
    let t = InstanceType::by_name("r6a.xlarge").unwrap();
    let mut cfg = CampaignConfig::new(t, 1 << 20);
    cfg.scaling = ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
    // A live baseline interruption rate on top of whatever the plan bursts.
    cfg.spot_market =
        cloudsim::SpotMarket { price_factor: 0.35, interruptions_per_hour: 40.0, seed: 5 };
    cfg.scale_tick = cloudsim::SimDuration::from_secs(10.0);
    cfg.poll_interval = cloudsim::SimDuration::from_secs(5.0);
    cfg.faults = Some(plan);
    cfg.max_receive_count = Some(6);
    cfg
}

fn run_chaos(pipeline: &Arc<AtlasPipeline>, ids: &[String], plan: FaultPlan) -> CampaignReport {
    let orch = Orchestrator::new(Arc::clone(pipeline), chaos_config(plan)).unwrap();
    orch.run(ids).unwrap()
}

#[test]
fn chaos_campaign_conserves_accessions_and_matches_fault_free_results() {
    let (pipeline, ids) = pipeline_fixture(12);

    // Fault-free baseline.
    let t = InstanceType::by_name("r6a.xlarge").unwrap();
    let mut base_cfg = CampaignConfig::new(t, 1 << 20);
    base_cfg.scaling = ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
    let baseline =
        Orchestrator::new(Arc::clone(&pipeline), base_cfg).unwrap().run(&ids).unwrap();
    assert_eq!(baseline.completed.len(), ids.len());

    // Chaos: transient faults on every service plus a spot burst mid-campaign.
    let mut plan = FaultPlan::chaos(42);
    plan.spot_bursts = vec![SpotBurst { start_secs: 200.0, duration_secs: 600.0, rate_per_hour: 30.0 }];
    let chaos = run_chaos(&pipeline, &ids, plan);

    // Conservation: every accession resolved, exactly once, with no inventions.
    assert_eq!(
        chaos.completed.len() + chaos.dead_lettered.len(),
        ids.len(),
        "completed {} + dead-lettered {:?} must cover the workload",
        chaos.completed.len(),
        chaos.dead_lettered
    );
    let mut resolved: Vec<&str> = chaos
        .completed
        .iter()
        .map(|r| r.accession.as_str())
        .chain(chaos.dead_lettered.iter().map(|s| s.as_str()))
        .collect();
    resolved.sort_unstable();
    let mut expect: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
    expect.sort_unstable();
    assert_eq!(resolved, expect);
    assert!(chaos.fault_counters.total_faults() > 0, "premise: chaos actually struck");

    // Correctness under duplication: accessions completed in both runs carry
    // identical pipeline results — faults never change what gets computed.
    let by_accession: std::collections::BTreeMap<&str, _> = baseline
        .completed
        .iter()
        .map(|r| (r.accession.as_str(), (r.mapping_rate, r.stage_secs.total(), r.early_stopped())))
        .collect();
    let mut compared = 0usize;
    for r in &chaos.completed {
        let (rate, secs, stopped) = by_accession[r.accession.as_str()];
        assert_eq!(r.mapping_rate.to_bits(), rate.to_bits(), "{}", r.accession);
        assert_eq!(r.stage_secs.total().to_bits(), secs.to_bits(), "{}", r.accession);
        assert_eq!(r.early_stopped(), stopped, "{}", r.accession);
        compared += 1;
    }
    assert!(compared > 0, "some accession must complete under chaos");
}

#[test]
fn chaos_campaigns_replay_bit_for_bit_and_diverge_across_seeds() {
    let (pipeline, ids) = pipeline_fixture(10);

    let a1 = run_chaos(&pipeline, &ids, FaultPlan::chaos(7));
    let a2 = run_chaos(&pipeline, &ids, FaultPlan::chaos(7));
    assert_eq!(a1.summary_digest(), a2.summary_digest(), "same seed must replay identically");
    assert_eq!(a1.fault_counters, a2.fault_counters);
    assert_eq!(a1.dead_lettered, a2.dead_lettered);
    assert_eq!(a1.makespan.as_secs().to_bits(), a2.makespan.as_secs().to_bits());
    assert_eq!(a1.cost.total_usd.to_bits(), a2.cost.total_usd.to_bits());

    let b = run_chaos(&pipeline, &ids, FaultPlan::chaos(8));
    assert_ne!(
        a1.summary_digest(),
        b.summary_digest(),
        "a different fault seed must steer the campaign differently"
    );
}

#[test]
fn chaos_replay_agrees_on_every_observable() {
    // The digest-level replay test above is necessary but coarse; the replay
    // harness in atlas_pipeline::differential compares the full observable
    // surface — completion order, dead letters, fleet timelines, makespan and
    // cost bit patterns, stripped telemetry logs. Drive it from this suite's
    // hostile chaos config so the whole surface is pinned under faults, not
    // just on the tame devent_diff fixtures.
    let (pipeline, ids) = pipeline_fixture(10);
    let cmp =
        atlas_pipeline::run_differential(pipeline, &chaos_config(FaultPlan::chaos(7)), &ids)
            .unwrap();
    cmp.assert_equivalent().unwrap_or_else(|d| panic!("chaos replay diverged: {d}"));
    assert!(cmp.first.fault_counters.total_faults() > 0, "premise: chaos actually struck");
}

#[test]
fn spot_burst_alone_interrupts_but_loses_nothing() {
    let (pipeline, ids) = pipeline_fixture(10);
    // No transient faults at all — only a violent interruption burst early on.
    let plan = FaultPlan {
        seed: 3,
        spot_bursts: vec![SpotBurst { start_secs: 0.0, duration_secs: 400.0, rate_per_hour: 400.0 }],
        ..FaultPlan::default()
    };
    let report = run_chaos(&pipeline, &ids, plan);
    assert!(report.interruptions > 0, "premise: the burst must strike");
    assert_eq!(report.completed.len(), ids.len(), "interruptions redeliver, never lose work");
    assert!(report.dead_lettered.is_empty());
}
