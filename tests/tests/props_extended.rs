//! Property-based tests for the later-added modules: paired-end alignment, SAM
//! rendering, GTF round-tripping, paired archives, and pseudoalignment.

use genomics::annotation::AnnotationParams;
use genomics::{Annotation, DnaSeq, EnsemblGenerator, EnsemblParams, FastqRecord, Release};
use proptest::prelude::*;
use star_aligner::align::Aligner;
use star_aligner::index::{IndexParams, StarIndex};
use star_aligner::sam::{sam_pair_records, sam_record};
use star_aligner::AlignParams;
use std::sync::OnceLock;

struct Fixture {
    assembly: genomics::Assembly,
    annotation: Annotation,
    index: StarIndex,
    pseudo: pseudo_aligner::PseudoIndex,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let generator = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let assembly = generator.generate(Release::R111);
        let annotation =
            Annotation::simulate(&assembly, &generator, &AnnotationParams::default()).unwrap();
        let index = StarIndex::build(&assembly, &annotation, &IndexParams::default()).unwrap();
        let pseudo = pseudo_aligner::PseudoIndex::build(
            &assembly,
            &annotation,
            &pseudo_aligner::PseudoIndexParams { k: 21 },
        )
        .unwrap();
        Fixture { assembly, annotation, index, pseudo }
    })
}

/// Validate the fixed columns of a SAM record line.
fn check_sam_line(line: &str, read_len: usize) {
    let cols: Vec<&str> = line.split('\t').collect();
    assert!(cols.len() >= 11, "SAM needs 11 mandatory columns: {line}");
    let flag: u16 = cols[1].parse().expect("numeric flag");
    let pos: u64 = cols[3].parse().expect("numeric pos");
    if flag & 0x4 != 0 {
        assert_eq!(cols[2], "*");
        assert_eq!(pos, 0);
        assert_eq!(cols[5], "*");
    } else {
        assert_ne!(cols[2], "*");
        assert!(pos >= 1, "mapped records are 1-based");
        assert_ne!(cols[5], "*");
    }
    assert_eq!(cols[9].len(), read_len, "SEQ column covers the read");
    assert_eq!(cols[10].len(), read_len, "QUAL column covers the read");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn sam_records_are_structurally_valid_for_any_window(start in 0usize..19_000, junk in any::<bool>()) {
        let f = fixture();
        let chrom = f.assembly.contig("1").unwrap();
        prop_assume!(start + 100 <= chrom.len());
        let seq = if junk {
            DnaSeq::from_codes(vec![(start % 4) as u8; 100])
        } else {
            chrom.seq.subseq(start, start + 100)
        };
        let read = FastqRecord::with_uniform_quality(format!("r{start}"), seq, 35);
        let aligner = Aligner::new(&f.index, AlignParams::default());
        let out = aligner.align_read(&read);
        check_sam_line(&sam_record(&read, &out), 100);
    }

    #[test]
    fn paired_sam_lines_are_consistent(start in 0usize..18_000, insert in 210usize..800) {
        let f = fixture();
        let chrom = f.assembly.contig("1").unwrap();
        prop_assume!(start + insert <= chrom.len());
        prop_assume!(insert >= 200);
        let r1 = FastqRecord::with_uniform_quality(
            "p/1".into(),
            chrom.seq.subseq(start, start + 100),
            35,
        );
        let r2 = FastqRecord::with_uniform_quality(
            "p/2".into(),
            chrom.seq.subseq(start + insert - 100, start + insert).reverse_complement(),
            35,
        );
        let aligner = Aligner::new(&f.index, AlignParams::default());
        let out = aligner.align_pair(&r1, &r2);
        let (l1, l2) = sam_pair_records(&r1, &r2, &out);
        check_sam_line(&l1, 100);
        check_sam_line(&l2, 100);
        if out.is_mapped() {
            let f1: u16 = l1.split('\t').nth(1).unwrap().parse().unwrap();
            let f2: u16 = l2.split('\t').nth(1).unwrap().parse().unwrap();
            // Exactly one mate on each strand; first/last bits set correctly.
            prop_assert_eq!((f1 & 0x10 != 0), (f2 & 0x10 == 0));
            prop_assert!(f1 & 0x40 != 0 && f2 & 0x80 != 0);
            // TLEN symmetry.
            let t1: i64 = l1.split('\t').nth(8).unwrap().parse().unwrap();
            let t2: i64 = l2.split('\t').nth(8).unwrap().parse().unwrap();
            prop_assert_eq!(t1, -t2);
            prop_assert_eq!(t1.unsigned_abs(), insert as u64);
        }
    }

    #[test]
    fn paired_alignment_recovers_fragment_position(start in 0usize..18_000, insert in 210usize..900) {
        let f = fixture();
        let chrom = f.assembly.contig("1").unwrap();
        prop_assume!(start + insert <= chrom.len());
        let r1 = FastqRecord::with_uniform_quality(
            "q/1".into(),
            chrom.seq.subseq(start, start + 100),
            35,
        );
        let r2 = FastqRecord::with_uniform_quality(
            "q/2".into(),
            chrom.seq.subseq(start + insert - 100, start + insert).reverse_complement(),
            35,
        );
        let aligner = Aligner::new(&f.index, AlignParams::default());
        let out = aligner.align_pair(&r1, &r2);
        if out.is_mapped() {
            let rec1 = out.rec1.as_ref().unwrap();
            prop_assert!((rec1.pos as i64 - start as i64).unsigned_abs() <= 5);
            prop_assert_eq!(out.insert_size.unwrap(), insert as u64);
        }
    }

    #[test]
    fn gtf_round_trips_arbitrary_gene_structures(
        genes in prop::collection::vec(
            (0usize..3, prop::collection::vec((0usize..500, 1usize..120), 1..5), any::<bool>()),
            1..8,
        )
    ) {
        // Build syntactically valid genes: sort and de-overlap exons by offsetting.
        let mut ann = Annotation::default();
        for (i, (contig, raw_exons, reverse)) in genes.into_iter().enumerate() {
            let mut pos = 0usize;
            let mut exons = Vec::new();
            for (gap, len) in raw_exons {
                let start = pos + gap;
                exons.push(genomics::Exon { start, end: start + len });
                pos = start + len + 1;
            }
            ann.genes.push(genomics::Gene {
                id: format!("G{i}"),
                contig: format!("{}", contig + 1),
                strand: if reverse { genomics::Strand::Reverse } else { genomics::Strand::Forward },
                exons,
            });
        }
        let text = ann.to_gtf();
        let back = genomics::gtf::read_gtf(std::io::Cursor::new(text.as_bytes())).unwrap();
        prop_assert_eq!(back.genes, ann.genes);
    }

    #[test]
    fn paired_archives_round_trip(n_pairs in 0usize..25, seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(FastqRecord, FastqRecord)> = (0..n_pairs)
            .map(|i| {
                (
                    FastqRecord::with_uniform_quality(format!("P.{i}/1"), DnaSeq::random(&mut rng, 80), 30),
                    FastqRecord::with_uniform_quality(format!("P.{i}/2"), DnaSeq::random(&mut rng, 80), 30),
                )
            })
            .collect();
        let arc = sra_sim::SraArchive::encode_paired(
            "P",
            sra_sim::accession::LibraryStrategy::RnaSeqBulk,
            &pairs,
        )
        .unwrap();
        prop_assert_eq!(arc.spots(), n_pairs as u64);
        let round = sra_sim::SraArchive::from_bytes(arc.bytes()).unwrap();
        let back = round.decode_all_pairs().unwrap();
        for ((o1, o2), (d1, d2)) in pairs.iter().zip(&back) {
            prop_assert_eq!(&o1.seq, &d1.seq);
            prop_assert_eq!(&o2.seq, &d2.seq);
        }
    }

    #[test]
    fn pseudoalignment_is_strand_symmetric(start in 0usize..15_000) {
        let f = fixture();
        // Any transcript window: fwd and rc reads must agree on mapping status.
        let gene = f.annotation.genes.iter().find(|g| g.transcript_len() >= 150).unwrap();
        let t = gene.transcript(&f.assembly).unwrap();
        let s = start % (t.len() - 100);
        let read = t.subseq(s, s + 100);
        let aligner = pseudo_aligner::PseudoAligner::new(
            &f.pseudo,
            pseudo_aligner::pseudoalign::PseudoParams::default(),
        );
        let fwd = aligner.pseudoalign(&read);
        let rev = aligner.pseudoalign(&read.reverse_complement());
        prop_assert_eq!(fwd.is_mapped(), rev.is_mapped());
        prop_assert_eq!(fwd.compatible, rev.compatible);
    }
}
