//! Property-based tests for the telemetry crate: span-tree invariants under
//! arbitrary open/close interleavings, critical-path summary invariants over
//! random campaigns, histogram quantile laws, and `TimeSeries` extrema versus a
//! naive fold (including the all-negative regression).

use proptest::prelude::*;
use telemetry::{summarize, Histogram, Recorder, SpanId, TimeSeries, SECS_BUCKETS};

const STAGES: [&str; 4] = ["prefetch", "fasterq-dump", "align", "collect"];

/// Strategy: a random campaign of jobs — `(completed ok, four stage durations)`.
fn jobs() -> impl Strategy<Value = Vec<(bool, [f64; 4])>> {
    let durs = (0.001f64..50.0, 0.001f64..50.0, 0.001f64..50.0, 0.001f64..50.0)
        .prop_map(|(a, b, c, d)| [a, b, c, d]);
    prop::collection::vec((any::<bool>(), durs), 1..20)
}

/// Drive a `Recorder` the way the orchestrator does: one instance span holding
/// sequential jobs, each ok job carrying the four pipeline-stage child spans.
fn record_campaign(jobs: &[(bool, [f64; 4])]) -> Recorder {
    let rec = Recorder::new();
    let root = rec.span_start("campaign", SpanId::NONE, 0.0);
    let inst = rec.span_start("instance", root, 0.0);
    let mut now = 0.0;
    for (i, (ok, durs)) in jobs.iter().enumerate() {
        let start = now;
        let total: f64 = durs.iter().sum();
        now += total;
        let outcome = if *ok { "ok" } else { "crashed" };
        let job = rec.span_closed(
            "job",
            inst,
            start,
            now,
            &[("accession", format!("SRR{i:04}")), ("outcome", outcome.to_string())],
        );
        if *ok {
            let mut t = start;
            for (name, d) in STAGES.iter().zip(durs) {
                rec.span_closed(name, job, t, t + d, &[]);
                t += d;
            }
        }
    }
    rec.span_end(inst, now);
    rec.span_end(root, now);
    rec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn span_tree_is_well_formed_under_any_interleaving(
        ops in prop::collection::vec((any::<bool>(), 0usize..8, 0.0f64..5.0), 1..60)
    ) {
        let rec = Recorder::new();
        let mut now = 0.0;
        let mut open: Vec<SpanId> = vec![rec.span_start("campaign", SpanId::NONE, now)];
        for (close, sel, dt) in ops {
            now += dt;
            if close && open.len() > 1 {
                // Close a random non-root span (the tree allows out-of-order ends).
                let id = open.remove(1 + sel % (open.len() - 1));
                rec.span_end(id, now);
            } else {
                let parent = open[sel % open.len()];
                open.push(rec.span_start("work", parent, now));
            }
        }
        for id in open.into_iter().rev() {
            rec.span_end(id, now);
        }

        let spans = rec.spans();
        let mut start_of = std::collections::BTreeMap::new();
        for (i, s) in spans.iter().enumerate() {
            // Ids are 1-based, dense, in emission order.
            prop_assert_eq!(s.id, i as u64 + 1);
            // Parents precede children (or are the root sentinel 0).
            prop_assert!(s.parent < s.id, "span {} parented to {}", s.id, s.parent);
            let end = s.end_secs.expect("all spans closed");
            prop_assert!(end >= s.start_secs);
            prop_assert!(s.duration_secs() >= 0.0);
            if s.parent != 0 {
                // A child starts no earlier than its (then-open) parent.
                let parent_start: f64 = start_of[&s.parent];
                prop_assert!(s.start_secs >= parent_start);
            }
            start_of.insert(s.id, s.start_secs);
        }
    }

    #[test]
    fn campaign_summary_invariants_hold_for_random_job_mixes(jobs in jobs()) {
        let t = summarize(&record_campaign(&jobs));
        let n_ok = jobs.iter().filter(|(ok, _)| *ok).count();

        // Exactly the ok jobs make it onto the critical path.
        prop_assert_eq!(t.critical_path.per_accession.len(), n_ok);
        for s in &t.stage_stats {
            prop_assert_eq!(s.count as usize, n_ok, "stage {}", s.stage);
            prop_assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "{} quantiles out of order", s.stage);
            prop_assert!(s.total_secs >= 0.0);
        }
        if n_ok > 0 {
            prop_assert_eq!(t.stage_stats.len(), STAGES.len());
            // Stage shares partition pipeline time.
            let sum: f64 = t.critical_path.stage_share.iter().map(|(_, v)| v).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
            // The dominant stage carries the largest total and dominates exactly
            // the accessions whose own dominant stage it is.
            let max_total =
                t.stage_stats.iter().map(|s| s.total_secs).fold(f64::NEG_INFINITY, f64::max);
            let dom =
                t.stage_stats.iter().find(|s| s.stage == t.critical_path.dominant_stage).unwrap();
            prop_assert!(dom.total_secs >= max_total - 1e-12);
            let dominated = t
                .critical_path
                .per_accession
                .iter()
                .filter(|a| a.dominant_stage == t.critical_path.dominant_stage)
                .count();
            prop_assert_eq!(t.critical_path.dominant_accessions, dominated);
            for a in &t.critical_path.per_accession {
                prop_assert!(a.dominant_secs <= a.total_secs + 1e-12);
            }
        }

        // Busy time counts every job (any outcome); jobs run inside the instance
        // span, so the fleet can never be busier than it is up.
        let busy: f64 = jobs.iter().map(|(_, d)| d.iter().sum::<f64>()).sum();
        prop_assert!((t.critical_path.fleet_busy_secs - busy).abs() < 1e-6);
        prop_assert!(
            t.critical_path.fleet_busy_secs <= t.critical_path.fleet_uptime_secs + 1e-9
        );
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        obs in prop::collection::vec(0.0f64..5000.0, 1..200)
    ) {
        let mut h = Histogram::new(SECS_BUCKETS);
        for &v in &obs {
            h.observe(v);
        }
        let lo = obs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = obs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.count(), obs.len() as u64);
        prop_assert!((h.sum() - obs.iter().sum::<f64>()).abs() < 1e-6);
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            prop_assert!(q >= prev - 1e-12, "quantile not monotone at {i}");
            prop_assert!(q >= lo - 1e-12 && q <= hi + 1e-12, "quantile {q} outside [{lo}, {hi}]");
            prev = q;
        }
    }

    #[test]
    fn time_series_extrema_match_a_naive_fold(
        values in prop::collection::vec(-100.0f64..100.0, 1..50),
        offset in -200.0f64..0.0,
    ) {
        // `offset` can push the whole series negative — the `peak()` regression case.
        let mut s = TimeSeries::new();
        for (i, v) in values.iter().enumerate() {
            s.record(i as f64, v + offset);
        }
        let naive_max =
            values.iter().map(|v| v + offset).fold(f64::NEG_INFINITY, f64::max);
        let naive_min = values.iter().map(|v| v + offset).fold(f64::INFINITY, f64::min);
        prop_assert_eq!(s.peak(), naive_max);
        prop_assert_eq!(s.min(), naive_min);
        prop_assert_eq!(s.len(), values.len());
    }
}
