//! Property tests for the SLO engine's two primitives:
//!
//! * the streaming quantile sketch — DDSketch-style relative-error guarantee
//!   against the exact sample quantile, and a merge that is *byte*-associative
//!   and order-independent (serialized state identical, not approximately
//!   equal), which is what makes per-shard sketches safely combinable;
//! * the multi-window burn-rate evaluator — one alert per burn episode on
//!   saturated error traffic, exactly one clear on recovery, and silence on
//!   healthy streams.

use proptest::prelude::*;
use telemetry::slo::SloState;
use telemetry::{BurnRateRule, QuantileSketch, Slo, SloSignal};

/// The exact sample quantile at the same rank convention the sketch uses
/// (`floor(q · (n − 1))` into the sorted multiset).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn sketch_of(alpha: f64, vals: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new(alpha);
    for &v in vals {
        s.observe(v);
    }
    s
}

fn turnaround_slo(windows: Vec<BurnRateRule>) -> Slo {
    Slo {
        id: "turnaround_p95".into(),
        signal: SloSignal::AccessionTurnaround,
        threshold: 100.0,
        target: 0.95,
        windows,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every estimated quantile is within relative error `alpha` of the exact
    /// sample quantile (the DDSketch guarantee the engine's percentiles rest on).
    #[test]
    fn sketch_quantiles_stay_within_relative_error(
        values in prop::collection::vec(0.0f64..1e6, 1..400),
        alpha_pct in 1u32..10,
    ) {
        let alpha = alpha_pct as f64 / 100.0;
        let sk = sketch_of(alpha, &values);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = sk.quantile(q);
            prop_assert!(
                (est - exact).abs() <= alpha * exact + 1e-9,
                "q{}: est {} vs exact {} (alpha {})", q, est, exact, alpha
            );
        }
    }

    /// Merging is bucket-count addition, so any grouping of sub-streams yields
    /// a serialized state byte-identical to the single-stream sketch —
    /// associativity and order-independence hold exactly, not approximately.
    #[test]
    fn sketch_merge_is_byte_associative_and_order_independent(
        a in prop::collection::vec(0.0f64..1e6, 0..120),
        b in prop::collection::vec(0.0f64..1e6, 0..120),
        c in prop::collection::vec(0.0f64..1e6, 0..120),
    ) {
        const ALPHA: f64 = 0.02;
        // ((a ∪ b) ∪ c)
        let mut left = sketch_of(ALPHA, &a);
        left.merge(&sketch_of(ALPHA, &b));
        left.merge(&sketch_of(ALPHA, &c));
        // (a ∪ (b ∪ c))
        let mut tail = sketch_of(ALPHA, &b);
        tail.merge(&sketch_of(ALPHA, &c));
        let mut right = sketch_of(ALPHA, &a);
        right.merge(&tail);
        // the single stream, and the single stream reversed
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let single = sketch_of(ALPHA, &all);
        all.reverse();
        let reversed = sketch_of(ALPHA, &all);

        let want = single.to_json().render();
        prop_assert_eq!(left.to_json().render(), want.clone());
        prop_assert_eq!(right.to_json().render(), want.clone());
        prop_assert_eq!(reversed.to_json().render(), want);
    }

    /// Healthy traffic (every sample under threshold) never fires a burn alert,
    /// never emits a clear, and leaves the full error budget.
    #[test]
    fn healthy_streams_never_burn(
        n in 1usize..200,
        step in 1.0f64..120.0,
    ) {
        let slo = turnaround_slo(vec![BurnRateRule::fast(), BurnRateRule::slow()]);
        let mut st = SloState::new(&slo);
        let mut t = 0.0;
        for _ in 0..n {
            t += step;
            let (alerts, extra) = st.sample(&slo, t, 1.0);
            prop_assert!(alerts.is_empty(), "healthy sample fired {:?}", alerts);
            prop_assert!(
                !extra.iter().any(|e| e.kind == "slo_clear"),
                "nothing to clear on a healthy stream"
            );
        }
        prop_assert!((st.budget_remaining(&slo) - 1.0).abs() < 1e-12);
    }

    /// Saturated error traffic fires exactly one alert per window (hysteresis:
    /// one per burn episode), and recovery emits exactly one matching clear.
    #[test]
    fn burn_fires_once_per_episode_and_clears_on_recovery(
        n_bad in 20usize..120,
        step in 1.0f64..30.0,
    ) {
        let slo = turnaround_slo(vec![BurnRateRule::fast()]);
        let mut st = SloState::new(&slo);
        let mut t = 0.0;
        let mut fired = 0usize;
        let mut cleared = 0usize;
        for _ in 0..n_bad {
            t += step;
            let (alerts, extra) = st.sample(&slo, t, 200.0);
            fired += alerts.len();
            cleared += extra.iter().filter(|e| e.kind == "slo_clear").count();
        }
        prop_assert_eq!(fired, 1, "one alert per burn episode (hysteresis)");
        prop_assert_eq!(cleared, 0, "no clear while still burning");
        // Recovery: good samples long enough to drain the short window.
        for _ in 0..400 {
            t += step;
            let (alerts, extra) = st.sample(&slo, t, 1.0);
            fired += alerts.len();
            cleared += extra.iter().filter(|e| e.kind == "slo_clear").count();
        }
        prop_assert_eq!(fired, 1, "no re-fire during recovery");
        prop_assert_eq!(cleared, 1, "exactly one clear ends the episode");
        prop_assert!(st.budget_remaining(&slo) < 1.0, "bad samples spent budget");
    }
}
