//! The SLO engine end-to-end: pure-observer proof, burn-rate alerts firing
//! mid-campaign, the bit-exact attribution-ledger invariant, sketch
//! determinism, and the golden-pinned OpenMetrics exposition with summaries.

use atlas_pipeline::ledger::AccessionLedgerEntry;
use atlas_pipeline::orchestrator::{CampaignConfig, CampaignReport, Orchestrator};
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use atlas_pipeline::experiments::Substrate;
use cloudsim::faults::FaultPlan;
use cloudsim::instance::InstanceType;
use cloudsim::ScalingPolicy;
use genomics::EnsemblParams;
use sra_sim::accession::CatalogParams;
use sra_sim::SraRepository;
use std::sync::Arc;
use telemetry::{BurnRateRule, Slo, SloConfig, SloRegistry, SloSignal};

/// Same deterministic mini-campaign substrate as telemetry_export.rs: modeled
/// per-read align cost, fixed-seed catalog.
fn fixture(n: usize, sc_fraction: f64) -> (Arc<AtlasPipeline>, Vec<String>) {
    let sub = Substrate::build(EnsemblParams::tiny()).unwrap();
    let catalog = CatalogParams {
        seed: 2024,
        n_accessions: n,
        single_cell_fraction: sc_fraction,
        bulk_spots_median: 400,
        bulk_spots_sigma: 0.0,
        ..CatalogParams::default()
    }
    .generate()
    .unwrap();
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(6_000),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    pc.align_secs_per_read = Some(2.0e-2);
    let pipeline = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc)
            .unwrap(),
    );
    let ids = pipeline.repository().ids();
    (pipeline, ids)
}

fn base_config() -> CampaignConfig {
    let t = InstanceType::by_name("r6a.xlarge").unwrap();
    let mut cfg = CampaignConfig::new(t, 1 << 20);
    cfg.scaling = ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
    cfg.scale_tick = cloudsim::SimDuration::from_secs(10.0);
    cfg.poll_interval = cloudsim::SimDuration::from_secs(5.0);
    cfg
}

/// Campaign-scale SLOs: windows sized in sim-seconds so burn rules can resolve
/// inside a mini-campaign, thresholds set per test.
fn slo_config(turnaround_secs: f64, queue_wait_secs: f64, cost_usd: f64) -> SloConfig {
    let windows = || vec![BurnRateRule { long_secs: 200.0, short_secs: 20.0, factor: 2.0, min_count: 3 }];
    SloConfig {
        registry: SloRegistry {
            slos: vec![
                Slo {
                    id: "accession_turnaround_p95".into(),
                    signal: SloSignal::AccessionTurnaround,
                    threshold: turnaround_secs,
                    target: 0.95,
                    windows: windows(),
                },
                Slo {
                    id: "queue_wait_p99".into(),
                    signal: SloSignal::QueueWait,
                    threshold: queue_wait_secs,
                    target: 0.99,
                    windows: windows(),
                },
                Slo {
                    id: "cost_per_accession".into(),
                    signal: SloSignal::AccessionCost,
                    threshold: cost_usd,
                    target: 0.99,
                    windows: windows(),
                },
            ],
            cost_usd_per_hour: 0.0, // the engine injects the billed rate
        },
        ..SloConfig::default()
    }
}

/// Generous thresholds: nothing burns, budgets stay full.
fn healthy_slo() -> SloConfig {
    slo_config(1e6, 1e6, 1e6)
}

fn run(pipeline: &Arc<AtlasPipeline>, ids: &[String], cfg: CampaignConfig) -> CampaignReport {
    Orchestrator::new(Arc::clone(pipeline), cfg).unwrap().run(ids).unwrap()
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = format!("{}/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("rewrite golden");
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read golden {path}: {e} (rerun with UPDATE_GOLDEN=1)"));
    assert_eq!(actual, golden, "{name} drifted; rerun with UPDATE_GOLDEN=1 if intended");
}

/// The SLO engine is a pure observer: the campaign digest is unchanged, and
/// stripping the SLO/monitor-gated record kinds (`progress`, `alert`,
/// `slo_budget`, `slo_clear`) recovers the SLO-off event log byte for byte.
#[test]
fn slo_engine_is_a_pure_observer() {
    let (pipeline, ids) = fixture(8, 0.25);
    let off = run(&pipeline, &ids, base_config());
    let mut cfg = base_config();
    // Tight thresholds so the engine actually fires burn alerts and budget
    // updates — the proof must hold with the engine *active*, not idle.
    cfg.slo = Some(slo_config(1.0, 1e6, 1e6));
    let on = run(&pipeline, &ids, cfg);

    assert_eq!(on.summary_digest(), off.summary_digest(), "observing must not perturb");
    assert!(
        on.alerts.iter().any(|a| a.rule == telemetry::slo::BURN_ALERT_RULE),
        "premise: the engine was firing, not idle ({:?})",
        on.alerts
    );
    let on_log = &on.telemetry.as_ref().unwrap().event_log;
    assert!(on_log.contains("\"kind\":\"slo_budget\""), "budget updates stream into the log");
    let off_log = &off.telemetry.as_ref().unwrap().event_log;
    for kind in ["progress", "alert", "slo_budget", "slo_clear"] {
        assert!(!off_log.contains(&format!("\"kind\":\"{kind}\"")), "{kind} is SLO/monitor-gated");
    }
    let stripped: String = on_log
        .lines()
        .filter(|l| {
            !["progress", "alert", "slo_budget", "slo_clear"]
                .iter()
                .any(|k| l.contains(&format!("\"kind\":\"{k}\"")))
        })
        .flat_map(|l| [l, "\n"])
        .collect();
    assert_eq!(&stripped, off_log, "SLO-on log is the off log plus observer records");
}

/// Saturated bad traffic (turnaround threshold below every completion time)
/// trips the multi-window burn-rate rule *during* the campaign, with a
/// detection latency, and lands in both `report.alerts` and the objectives.
#[test]
fn burn_alerts_fire_during_the_campaign() {
    let (pipeline, ids) = fixture(10, 0.0);
    let mut cfg = base_config();
    cfg.slo = Some(slo_config(1.0, 1e6, 1e6));
    let report = run(&pipeline, &ids, cfg);

    let burns: Vec<_> = report
        .alerts
        .iter()
        .filter(|a| a.rule == telemetry::slo::BURN_ALERT_RULE)
        .collect();
    assert!(!burns.is_empty(), "every completion violates a 1s turnaround SLO");
    for a in &burns {
        assert!(a.at_secs <= report.makespan.as_secs(), "fired online, not post-hoc");
        assert!(a.latency_secs >= 0.0, "detection latency attached");
        assert!(a.subject.starts_with("accession_turnaround_p95:"), "{}", a.subject);
        assert!(a.value >= a.threshold, "burn {} at least the factor {}", a.value, a.threshold);
    }

    let slo = report.slo.as_ref().expect("slo configured");
    let turnaround =
        slo.objectives.iter().find(|o| o.id == "accession_turnaround_p95").unwrap();
    assert_eq!(turnaround.total, 10, "one sample per completed accession");
    assert_eq!(turnaround.bad, 10, "every completion was over threshold");
    assert!(turnaround.burn_alerts >= 1);
    assert!(turnaround.budget_remaining < 0.0, "budget overspent");
    assert_eq!(turnaround.attained, 0.0);
    let healthy = slo.objectives.iter().find(|o| o.id == "queue_wait_p99").unwrap();
    assert_eq!(healthy.bad, 0);
    assert!((healthy.budget_remaining - 1.0).abs() < 1e-12, "untouched budget");
}

/// The bit-exact ledger invariant, on a chaos campaign so retry waste is
/// non-zero: every entry's parts re-fold to its turnaround and cost with `==`,
/// turnaround agrees with the measured completion, and the attributed dollars
/// account for the whole bill.
#[test]
fn ledger_parts_refold_bit_exactly() {
    let (pipeline, ids) = fixture(10, 0.0);
    let mut cfg = base_config();
    cfg.faults = Some(FaultPlan {
        seed: 5,
        worker_crash_per_job: 0.4,
        duplicate_delivery: 0.2,
        ..FaultPlan::default()
    });
    cfg.max_receive_count = Some(20);
    cfg.slo = Some(healthy_slo());
    let report = run(&pipeline, &ids, cfg);
    assert!(report.fault_counters.worker_crashes > 0, "premise: retries actually happened");

    let slo = report.slo.as_ref().expect("slo configured");
    assert_eq!(slo.ledger.len(), report.completed.len(), "one entry per completed accession");
    assert!(slo.ledger.iter().any(|e| e.retry_waste_secs > 0.0), "waste attributed somewhere");
    for e in &slo.ledger {
        assert_eq!(
            AccessionLedgerEntry::fold(&e.latency_parts()),
            e.turnaround_secs,
            "latency parts must re-fold bit-exactly for {}",
            e.accession
        );
        assert_eq!(
            AccessionLedgerEntry::fold(&e.cost_parts()),
            e.cost_usd,
            "cost parts must re-fold bit-exactly for {}",
            e.accession
        );
        assert!(e.turnaround_secs > 0.0 && e.turnaround_secs <= report.makespan.as_secs() + 1e-9);
        for part in e.latency_parts() {
            assert!(part >= 0.0, "{}: negative part {:?}", e.accession, e);
        }
    }
    let totals = &slo.totals;
    assert_eq!(totals.accessions, report.completed.len());
    assert!(
        (totals.cost_usd - report.cost.total_usd).abs() <= 1e-9 * report.cost.total_usd,
        "attributed {} vs billed {}",
        totals.cost_usd,
        report.cost.total_usd
    );
    assert!(totals.retry_waste_secs > 0.0);
    assert!(totals.idle_amortized_usd > 0.0, "init/idle time exists in every campaign");
}

/// The sketches (and everything downstream of them) are deterministic: two runs
/// of the same seeded campaign export byte-identical OpenMetrics text,
/// including the summary quantiles — the mergeable-sketch state is a pure
/// function of the observation multiset.
#[test]
fn slo_openmetrics_is_deterministic_and_matches_golden() {
    let (pipeline, ids) = fixture(6, 0.0);
    let mk = || {
        let mut cfg = base_config();
        cfg.slo = Some(slo_config(1_000.0, 500.0, 0.05));
        cfg
    };
    let r1 = run(&pipeline, &ids, mk());
    let r2 = run(&pipeline, &ids, mk());
    let t1 = r1.telemetry.as_ref().unwrap();
    let t2 = r2.telemetry.as_ref().unwrap();
    assert_eq!(
        t1.openmetrics_text, t2.openmetrics_text,
        "sketches and budgets must replay byte-identically"
    );
    for name in
        ["slo_turnaround_secs", "slo_queue_wait_secs", "slo_cost_per_accession_usd"]
    {
        assert!(
            t1.openmetrics_text.contains(&format!("# TYPE {name} summary")),
            "sketch {name} exported as an OpenMetrics summary"
        );
    }
    assert!(t1.openmetrics_text.contains("slo_budget_remaining:accession_turnaround_p95"));
    assert!(t1.openmetrics_text.contains("slo_ledger_compute_usd"));
    assert_matches_golden("campaign_slo_openmetrics.txt", &t1.openmetrics_text);
}
