//! Telemetry subsystem end-to-end: replay determinism of the event log and
//! stage quantiles, the critical-path report, queue-wait metrics, and the
//! observer guarantee (disabling telemetry changes nothing else).

use atlas_pipeline::experiments::Substrate;
use atlas_pipeline::orchestrator::{CampaignConfig, CampaignReport, Orchestrator};
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use atlas_pipeline::report::render_campaign;
use cloudsim::faults::FaultPlan;
use cloudsim::instance::InstanceType;
use cloudsim::ScalingPolicy;
use genomics::EnsemblParams;
use sra_sim::accession::CatalogParams;
use sra_sim::SraRepository;
use std::sync::Arc;

/// Same shape as the chaos fixture, with a configurable modeled per-read cost:
/// the replay tests keep the cheap 2e-4 s/read; the critical-path test raises
/// it so the align stage dominates the pipeline the way the paper's Fig. 1
/// timeline does at full scale.
fn pipeline_fixture(n: usize, align_secs_per_read: f64) -> (Arc<AtlasPipeline>, Vec<String>) {
    let sub = Substrate::build(EnsemblParams::tiny()).unwrap();
    let catalog = CatalogParams {
        n_accessions: n,
        single_cell_fraction: 0.2,
        bulk_spots_median: 400,
        ..CatalogParams::default()
    }
    .generate()
    .unwrap();
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(600),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    pc.align_secs_per_read = Some(align_secs_per_read);
    let pipeline = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc).unwrap(),
    );
    let ids = pipeline.repository().ids();
    (pipeline, ids)
}

fn base_config() -> CampaignConfig {
    let t = InstanceType::by_name("r6a.xlarge").unwrap();
    let mut cfg = CampaignConfig::new(t, 1 << 20);
    cfg.scaling = ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
    cfg.scale_tick = cloudsim::SimDuration::from_secs(10.0);
    cfg.poll_interval = cloudsim::SimDuration::from_secs(5.0);
    cfg
}

fn chaos_config(plan: FaultPlan) -> CampaignConfig {
    let mut cfg = base_config();
    cfg.spot_market =
        cloudsim::SpotMarket { price_factor: 0.35, interruptions_per_hour: 40.0, seed: 5 };
    cfg.faults = Some(plan);
    cfg.max_receive_count = Some(6);
    cfg
}

fn run(pipeline: &Arc<AtlasPipeline>, ids: &[String], cfg: CampaignConfig) -> CampaignReport {
    Orchestrator::new(Arc::clone(pipeline), cfg).unwrap().run(ids).unwrap()
}

#[test]
fn fixed_seed_chaos_replays_event_log_and_stage_quantiles_identically() {
    let (pipeline, ids) = pipeline_fixture(10, 2.0e-4);
    let r1 = run(&pipeline, &ids, chaos_config(FaultPlan::chaos(7)));
    let r2 = run(&pipeline, &ids, chaos_config(FaultPlan::chaos(7)));
    assert_eq!(r1.summary_digest(), r2.summary_digest(), "campaign itself must replay");

    let t1 = r1.telemetry.as_ref().expect("telemetry on by default");
    let t2 = r2.telemetry.as_ref().expect("telemetry on by default");
    assert!(!t1.event_log.is_empty(), "chaos must produce events");
    assert_eq!(t1.event_log, t2.event_log, "NDJSON event log must be byte-identical");
    assert_eq!(t1.metrics_json, t2.metrics_json, "metrics JSON must be byte-identical");
    assert_eq!(t1.n_spans, t2.n_spans);
    assert_eq!(t1.n_events, t2.n_events);
    assert_eq!(t1.stage_stats.len(), t2.stage_stats.len());
    for (a, b) in t1.stage_stats.iter().zip(&t2.stage_stats) {
        assert_eq!(a.stage, b.stage);
        assert_eq!(a.count, b.count);
        assert_eq!(a.p50.to_bits(), b.p50.to_bits(), "{} p50", a.stage);
        assert_eq!(a.p95.to_bits(), b.p95.to_bits(), "{} p95", a.stage);
    }

    // A different seed must steer the event stream differently.
    let r3 = run(&pipeline, &ids, chaos_config(FaultPlan::chaos(8)));
    assert_ne!(t1.event_log, r3.telemetry.as_ref().unwrap().event_log);
}

#[test]
fn critical_path_report_shows_align_dominating() {
    // ~0.02 s/read puts the align stage at seconds per accession while the
    // transfer stages stay sub-second — align must dominate the critical path,
    // consistent with the paper's Fig. 4 premise that STAR is the cost center.
    let (pipeline, ids) = pipeline_fixture(8, 2.0e-2);
    let report = run(&pipeline, &ids, base_config());
    assert_eq!(report.completed.len(), ids.len());
    let t = report.telemetry.as_ref().expect("telemetry on by default");

    assert_eq!(t.critical_path.dominant_stage, "align");
    assert_eq!(t.critical_path.per_accession.len(), report.completed.len());
    assert!(
        t.critical_path.dominant_accessions * 2 > report.completed.len(),
        "align dominates the majority: {}/{}",
        t.critical_path.dominant_accessions,
        report.completed.len()
    );
    let align_share = t
        .critical_path
        .stage_share
        .iter()
        .find(|(s, _)| s == "align")
        .map(|(_, f)| *f)
        .unwrap();
    assert!(align_share > 0.5, "align share {align_share}");
    let share_sum: f64 = t.critical_path.stage_share.iter().map(|(_, f)| f).sum();
    assert!((share_sum - 1.0).abs() < 1e-9, "shares partition pipeline time: {share_sum}");
    assert!(
        t.critical_path.fleet_busy_secs <= t.critical_path.fleet_uptime_secs,
        "busy {} cannot exceed uptime {}",
        t.critical_path.fleet_busy_secs,
        t.critical_path.fleet_uptime_secs
    );

    // Per-stage quantiles are ordered and the align stage is the largest.
    let align = t.stage_stats.iter().find(|s| s.stage == "align").unwrap();
    assert_eq!(align.count as usize, report.completed.len());
    assert!(align.p50 <= align.p95 && align.p95 <= align.p99);
    for s in &t.stage_stats {
        if s.stage != "align" {
            assert!(s.total_secs < align.total_secs, "{} vs align", s.stage);
        }
    }

    // The human-readable campaign report quotes the breakdown.
    let text = render_campaign(&report, "r6a.xlarge");
    assert!(text.contains("telemetry:"), "{text}");
    assert!(text.contains("critical path: 'align' dominates"), "{text}");
    assert!(text.contains("stage share of pipeline time"), "{text}");
    assert!(text.contains("fleet: busy"), "{text}");
}

#[test]
fn queue_wait_is_recorded_per_accession() {
    let (pipeline, ids) = pipeline_fixture(8, 2.0e-4);
    let report = run(&pipeline, &ids, base_config());
    let t = report.telemetry.as_ref().unwrap();

    // One first-delivery per message, each waiting at least the instance init
    // time (the fleet starts empty).
    let (_, count, p50, _, _) = t
        .histogram_summaries
        .iter()
        .find(|(name, ..)| name == "queue_wait_secs")
        .cloned()
        .expect("queue-wait histogram present");
    assert_eq!(count as usize, ids.len(), "every accession is first-received exactly once");
    assert!(p50 > 0.0, "waits include instance init: {p50}");
    assert!(
        t.event_log.lines().filter(|l| l.contains("\"kind\":\"queue_wait\"")).count() == ids.len(),
        "one queue_wait event per accession"
    );
}

#[test]
fn disabling_telemetry_is_a_pure_observer_change() {
    let (pipeline, ids) = pipeline_fixture(8, 2.0e-4);
    let on = run(&pipeline, &ids, chaos_config(FaultPlan::chaos(11)));
    let mut cfg = chaos_config(FaultPlan::chaos(11));
    cfg.telemetry = false;
    let off = run(&pipeline, &ids, cfg);

    assert!(on.telemetry.is_some());
    assert!(off.telemetry.is_none());
    assert_eq!(
        on.summary_digest(),
        off.summary_digest(),
        "recording telemetry must not perturb the campaign"
    );
}

#[test]
fn event_log_records_the_failure_narrative() {
    let (pipeline, ids) = pipeline_fixture(10, 2.0e-4);
    let mut plan = FaultPlan::chaos(42);
    plan.spot_bursts = vec![cloudsim::faults::SpotBurst {
        start_secs: 200.0,
        duration_secs: 600.0,
        rate_per_hour: 30.0,
    }];
    let report = run(&pipeline, &ids, chaos_config(plan));
    let t = report.telemetry.as_ref().unwrap();

    for line in t.event_log.lines() {
        assert!(line.starts_with("{\"t\":"), "NDJSON lines lead with sim time: {line}");
    }
    assert!(t.event_log.contains("\"kind\":\"fault_injected\""), "chaos faults logged");
    assert!(t.event_log.contains("\"kind\":\"retry\""), "retry backoffs logged");
    assert!(t.event_log.contains("\"kind\":\"instance_ready\""));
    if report.interruptions > 0 {
        assert!(t.event_log.contains("\"kind\":\"spot_interruption\""));
    }
    for a in &report.dead_lettered {
        assert!(
            t.event_log.contains(&format!("\"kind\":\"dead_letter\",\"accession\":\"{a}\"")),
            "dead-letter of {a} logged"
        );
    }
    // Early stops (20% of the catalog is single-cell) surface as decisions.
    if report.savings.stopped > 0 {
        assert!(t.event_log.contains("\"kind\":\"early_stop\""));
        assert!(t.metrics_json.contains("mapping_rate_at_stop"));
    }
}
