//! Property tests of the discrete-event kernel's ordering contract.
//!
//! The kernel's promises (crates/cloudsim/src/devent.rs):
//!
//! 1. pops come out in `(time, sequence)` order — earliest first, equal
//!    timestamps strictly FIFO in scheduling order;
//! 2. the order is stable under arbitrary interleavings of schedule/pop/cancel
//!    (a heap rebalance can never reorder equal keys);
//! 3. the clock is monotone: dispatch timestamps never decrease;
//! 4. cancelled timers never fire, exactly-once accounting holds
//!    (`scheduled == dispatched + cancelled + pending` at all times);
//! 5. a recorded operation trace replayed into a fresh kernel reproduces the
//!    trace byte for byte (the foundation of campaign replayability).

use cloudsim::devent::TraceOp;
use cloudsim::{Kernel, SimTime, TimerId};
use proptest::prelude::*;
use std::collections::HashMap;

/// Scripted kernel operation. Times are offsets added to `now` so schedules are
/// always legal; indices are reduced modulo the live handle list.
#[derive(Clone, Debug)]
enum Op {
    Schedule(f64),
    Pop,
    Cancel(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0.0f64..100.0).prop_map(Op::Schedule),
        3 => Just(Op::Pop),
        1 => (0usize..16).prop_map(Op::Cancel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Invariant 1: a batch of events sharing timestamps pops sorted by time,
    /// FIFO within a timestamp — exactly a stable sort by time of the
    /// scheduling order.
    #[test]
    fn same_timestamp_events_pop_in_insertion_order(
        times in prop::collection::vec(0u8..6, 1..60),
    ) {
        let mut k: Kernel<usize> = Kernel::new();
        let mut expected: Vec<(u8, usize)> = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            k.schedule(SimTime::from_secs(t as f64), i);
            expected.push((t, i));
        }
        // Stable sort by time preserves insertion order within a timestamp.
        expected.sort_by_key(|&(t, _)| t);
        let popped: Vec<(u8, usize)> = std::iter::from_fn(|| k.pop())
            .map(|(at, i)| (at.as_secs() as u8, i))
            .collect();
        prop_assert_eq!(popped, expected);
    }

    /// Invariants 1-4 under interleaved schedule/pop/cancel: the kernel agrees
    /// with a brute-force model (a vector stably sorted per pop), never fires a
    /// cancelled timer, keeps the clock monotone, and balances its books.
    #[test]
    fn interleaved_ops_match_the_stable_model(
        ops in prop::collection::vec(op_strategy(), 0..200),
    ) {
        let mut k: Kernel<u64> = Kernel::new();
        // Model: payload -> (time_bits, seq) for every live (unpopped,
        // uncancelled) event, mirrored by hand.
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut handles: Vec<(TimerId, u64)> = Vec::new();
        let mut next_payload = 0u64;
        let mut last_at = f64::NEG_INFINITY;
        let mut cancelled: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                Op::Schedule(dt) => {
                    let at = k.now() + cloudsim::SimDuration::from_secs(dt);
                    let id = k.schedule(at, next_payload);
                    model.push((at.as_secs().to_bits(), next_payload));
                    handles.push((id, next_payload));
                    next_payload += 1;
                }
                Op::Cancel(i) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let (id, payload) = handles.remove(i % handles.len());
                    prop_assert!(k.cancel(id), "live handle must cancel");
                    prop_assert!(!k.cancel(id), "second cancel must be stale");
                    let pos = model.iter().position(|&(_, p)| p == payload).unwrap();
                    model.remove(pos);
                    cancelled.push(payload);
                }
                Op::Pop => {
                    // The model's next event: smallest time, earliest scheduled.
                    // Model insertion order == scheduling order, and min_by
                    // keeps the first of equal keys — the FIFO winner.
                    let want = model
                        .iter()
                        .enumerate()
                        .min_by(|a, b| f64::from_bits(a.1 .0).total_cmp(&f64::from_bits(b.1 .0)))
                        .map(|(i, _)| i);
                    match (k.pop(), want) {
                        (None, None) => {}
                        (Some((at, payload)), Some(idx)) => {
                            let (bits, expect_payload) = model.remove(idx);
                            prop_assert_eq!(payload, expect_payload, "pop order diverged from model");
                            prop_assert_eq!(at.as_secs().to_bits(), bits);
                            // Invariant 3: monotone clock.
                            prop_assert!(at.as_secs() >= last_at, "clock went backwards");
                            last_at = at.as_secs();
                            // Invariant 4: cancelled timers never fire.
                            prop_assert!(!cancelled.contains(&payload), "cancelled timer fired");
                            handles.retain(|&(_, p)| p != payload);
                        }
                        (got, want) => {
                            prop_assert!(false, "kernel {:?} vs model {:?}", got.map(|g| g.1), want);
                        }
                    }
                }
            }
            // Invariant 4: books balance after every operation.
            let s = k.stats();
            prop_assert_eq!(s.scheduled, s.dispatched + s.cancelled + k.len() as u64);
            prop_assert_eq!(k.len(), model.len());
        }
    }

    /// Invariant 5: replaying a recorded trace's schedule/cancel/pop operations
    /// into a fresh kernel reproduces the trace byte for byte.
    #[test]
    fn recorded_trace_replays_byte_identically(
        ops in prop::collection::vec(op_strategy(), 0..150),
    ) {
        // First run: record.
        let mut k: Kernel<u64> = Kernel::new();
        k.enable_trace();
        let mut handles: Vec<TimerId> = Vec::new();
        let mut payload = 0u64;
        for op in &ops {
            match op {
                Op::Schedule(dt) => {
                    let id = k.schedule(k.now() + cloudsim::SimDuration::from_secs(*dt), payload);
                    payload += 1;
                    handles.push(id);
                }
                Op::Cancel(i) => {
                    if handles.is_empty() { continue; }
                    let id = handles.remove(i % handles.len());
                    k.cancel(id);
                }
                Op::Pop => {
                    // Fired handles stay in the pool; cancelling one later is a
                    // stale no-op that records nothing, which is fine — the
                    // replay follows only the recorded (successful) operations.
                    let _ = k.pop();
                }
            }
        }
        let recorded = k.trace_bytes();

        // Replay: drive a fresh kernel with the *trace itself* (schedules at the
        // recorded times, cancels by recorded seq, pops where recorded).
        let mut r: Kernel<u64> = Kernel::new();
        r.enable_trace();
        let mut seq_map: HashMap<u64, TimerId> = HashMap::new();
        for op in k.trace() {
            match *op {
                TraceOp::Schedule { at_bits, seq } => {
                    let id = r.schedule(SimTime::from_secs(f64::from_bits(at_bits)), seq);
                    prop_assert_eq!(id.seq(), seq, "sequence numbering must be deterministic");
                    seq_map.insert(seq, id);
                }
                TraceOp::Cancel { seq } => {
                    prop_assert!(r.cancel(seq_map[&seq]), "replayed cancel must hit a live timer");
                }
                TraceOp::Pop { at_bits, seq } => {
                    let (at, p) = r.pop().expect("replayed pop must yield an event");
                    prop_assert_eq!(at.as_secs().to_bits(), at_bits);
                    prop_assert_eq!(p, seq, "replay popped a different event");
                }
            }
        }
        prop_assert_eq!(r.trace_bytes(), recorded, "replay must be byte-identical");
    }
}
