//! Property-based tests over the core data structures and invariants.

use genomics::{DnaSeq, FastqRecord, PackedDna};
use proptest::prelude::*;
use star_aligner::sa::SuffixArray;

/// Strategy: a DNA sequence of length in `range` as raw 2-bit codes.
fn dna(range: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..4, range)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packed_dna_round_trips(codes in dna(0..600)) {
        let seq = DnaSeq::from_codes(codes);
        let packed = PackedDna::pack(&seq);
        prop_assert_eq!(packed.unpack(), seq);
    }

    #[test]
    fn reverse_complement_involution(codes in dna(0..300)) {
        let seq = DnaSeq::from_codes(codes);
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn suffix_array_is_sorted_permutation(codes in dna(1..400)) {
        let sa = SuffixArray::build(&codes);
        // Permutation.
        let mut sorted: Vec<u32> = sa.positions().to_vec();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..codes.len() as u32).collect::<Vec<_>>());
        // Lexicographic order.
        for w in sa.positions().windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            prop_assert!(codes[a..] < codes[b..], "suffixes {a} and {b} out of order");
        }
    }

    #[test]
    fn sa_find_locates_every_occurrence(codes in dna(20..300), start in 0usize..250, len in 1usize..20) {
        prop_assume!(start + len <= codes.len());
        let pattern = codes[start..start + len].to_vec();
        let sa = SuffixArray::build(&codes);
        let iv = sa.find(&star_aligner::Packed2::from_codes(&codes), &pattern);
        let hits: std::collections::HashSet<u32> =
            (iv.lo..iv.hi).map(|slot| sa.suffix(slot)).collect();
        // Compare against naive scan.
        let naive: std::collections::HashSet<u32> = (0..=codes.len() - len)
            .filter(|&i| codes[i..i + len] == pattern[..])
            .map(|i| i as u32)
            .collect();
        prop_assert_eq!(hits, naive);
    }

    #[test]
    fn fastq_round_trips(
        seqs in prop::collection::vec((dna(1..150), 0u8..41), 1..20)
    ) {
        let records: Vec<FastqRecord> = seqs
            .into_iter()
            .enumerate()
            .map(|(i, (codes, q))| {
                FastqRecord::with_uniform_quality(format!("r{i}"), DnaSeq::from_codes(codes), q)
            })
            .collect();
        let mut buf = Vec::new();
        genomics::fastq::write_fastq(&mut buf, &records).unwrap();
        let back = genomics::fastq::read_fastq(std::io::Cursor::new(&buf)).unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn fasta_round_trips(
        seqs in prop::collection::vec(dna(0..200), 1..10),
        width in 1usize..100
    ) {
        let records: Vec<genomics::FastaRecord> = seqs
            .into_iter()
            .enumerate()
            .map(|(i, codes)| genomics::FastaRecord {
                header: format!("contig_{i} synthetic"),
                seq: DnaSeq::from_codes(codes),
            })
            .collect();
        let mut buf = Vec::new();
        genomics::fasta::write_fasta(&mut buf, &records, width).unwrap();
        let (back, stats) = genomics::fasta::read_fasta(std::io::Cursor::new(&buf)).unwrap();
        prop_assert_eq!(stats.substituted_ambiguous, 0);
        prop_assert_eq!(back, records);
    }

    #[test]
    fn sra_archive_round_trips(
        seqs in prop::collection::vec(dna(50..51), 0..30),
        qual in 0u8..41
    ) {
        let reads: Vec<FastqRecord> = seqs
            .into_iter()
            .enumerate()
            .map(|(i, codes)| {
                FastqRecord::with_uniform_quality(
                    format!("SRRP.{}", i + 1),
                    DnaSeq::from_codes(codes),
                    qual,
                )
            })
            .collect();
        let archive = sra_sim::SraArchive::encode(
            "SRRP",
            sra_sim::accession::LibraryStrategy::RnaSeqBulk,
            &reads,
        )
        .unwrap();
        let again = sra_sim::SraArchive::from_bytes(archive.bytes()).unwrap();
        let decoded = again.decode_all().unwrap();
        prop_assert_eq!(decoded.len(), reads.len());
        for (d, r) in decoded.iter().zip(&reads) {
            prop_assert_eq!(&d.seq, &r.seq);
        }
    }

    #[test]
    fn deseq_normalization_is_scale_invariant(
        base in prop::collection::vec(1u64..500, 4..20),
        scale in 2u64..10
    ) {
        // Two samples where one is an exact `scale` multiple of the other: the
        // normalized matrices must agree column-to-column.
        let rows: Vec<Vec<u64>> = base.iter().map(|&k| vec![k, k * scale]).collect();
        let matrix = deseq_norm::CountsMatrix::from_rows(
            (0..base.len()).map(|i| format!("g{i}")).collect(),
            vec!["a".into(), "b".into()],
            rows,
        );
        let normalized = deseq_norm::normalize(&matrix).unwrap();
        for g in 0..base.len() {
            let x = normalized.get(g, 0);
            let y = normalized.get(g, 1);
            prop_assert!((x - y).abs() < 1e-6 * x.max(1.0), "gene {g}: {x} vs {y}");
        }
    }

    #[test]
    fn sqs_never_loses_or_duplicates_completed_work(
        ops in prop::collection::vec(0u8..3, 1..300)
    ) {
        use cloudsim::{SimDuration, SimTime, SqsQueue};
        let mut queue: SqsQueue<u32> = SqsQueue::new(SimDuration::from_secs(5.0));
        for i in 0..40u32 {
            queue.send(i);
        }
        let mut now = 0.0f64;
        let mut receipts = Vec::new();
        let mut deleted = 0usize;
        for op in ops {
            now += 1.0;
            match op {
                0 => {
                    if let Some((_, r, _)) = queue.receive(SimTime::from_secs(now)) {
                        receipts.push(r);
                    }
                }
                1 => {
                    if let Some(r) = receipts.pop() {
                        if queue.delete(r).is_ok() {
                            deleted += 1;
                        }
                    }
                }
                _ => now += 7.0, // let visibility timeouts expire
            }
        }
        prop_assert_eq!(queue.pending_count(), 40 - deleted);
    }
}

// Alignment properties need a shared index (expensive); build once.
mod align_props {
    use super::*;
    use genomics::annotation::AnnotationParams;
    use genomics::{Annotation, EnsemblGenerator, EnsemblParams, Release};
    use star_aligner::align::{Aligner, CigarOp};
    use star_aligner::index::{IndexParams, StarIndex};
    use star_aligner::AlignParams;
    use std::sync::OnceLock;

    struct Fixture {
        assembly: genomics::Assembly,
        index: StarIndex,
    }

    fn fixture() -> &'static Fixture {
        static FIXTURE: OnceLock<Fixture> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let generator = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
            let assembly = generator.generate(Release::R111);
            let annotation =
                Annotation::simulate(&assembly, &generator, &AnnotationParams::default()).unwrap();
            let index = StarIndex::build(&assembly, &annotation, &IndexParams::default()).unwrap();
            Fixture { assembly, index }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn cigar_always_covers_the_whole_read(start in 0usize..19_000, rc in any::<bool>()) {
            let f = fixture();
            let chrom = f.assembly.contig("1").unwrap();
            prop_assume!(start + 100 <= chrom.len());
            let mut read = chrom.seq.subseq(start, start + 100);
            if rc {
                read = read.reverse_complement();
            }
            let aligner = Aligner::new(&f.index, AlignParams::default());
            let out = aligner.align_seq(&read);
            if let Some(rec) = out.primary {
                let covered: u32 = rec
                    .cigar
                    .iter()
                    .map(|op| match op {
                        CigarOp::M(n) | CigarOp::S(n) => *n,
                        CigarOp::N(_) => 0,
                    })
                    .sum();
                prop_assert_eq!(covered, 100, "cigar {:?}", rec.cigar);
                prop_assert_eq!(rec.reverse, rc);
            }
        }

        #[test]
        fn perfect_genomic_reads_always_map(start in 0usize..19_000) {
            let f = fixture();
            let chrom = f.assembly.contig("1").unwrap();
            prop_assume!(start + 100 <= chrom.len());
            let read = chrom.seq.subseq(start, start + 100);
            let aligner = Aligner::new(&f.index, AlignParams::default());
            let out = aligner.align_seq(&read);
            prop_assert!(out.is_mapped(), "perfect read at {start} unmapped");
            let rec = out.primary.unwrap();
            prop_assert!(rec.score >= 95, "score {}", rec.score);
        }

        /// The SNAP-style hash seeding layer is an acceleration, not a policy
        /// change: on perfect, mutated, and reverse-complement reads, an
        /// aligner with `use_hash_seed` must produce the exact same outcome —
        /// class and full primary record (position, CIGAR, score, junctions) —
        /// as the suffix-array path. (The MMP-level agreement is property-
        /// tested in the star crate; this pins the end-to-end alignment.)
        #[test]
        fn hash_seeding_changes_no_alignment(
            start in 0usize..19_000,
            rc in any::<bool>(),
            flips in prop::collection::vec((0usize..100, 1u8..4), 0..6),
        ) {
            let f = fixture();
            let chrom = f.assembly.contig("1").unwrap();
            prop_assume!(start + 100 <= chrom.len());
            let mut codes = chrom.seq.subseq(start, start + 100).codes().to_vec();
            for &(pos, delta) in &flips {
                codes[pos] = (codes[pos] + delta) % 4;
            }
            let mut read = DnaSeq::from_codes(codes);
            if rc {
                read = read.reverse_complement();
            }
            let sa_out = Aligner::new(&f.index, AlignParams::default()).align_seq(&read);
            let mut hash_params = AlignParams::default();
            hash_params.use_hash_seed = true;
            let hash_out = Aligner::new(&f.index, hash_params).align_seq(&read);
            prop_assert_eq!(sa_out.class, hash_out.class);
            prop_assert_eq!(sa_out.primary, hash_out.primary);
        }

        #[test]
        fn alignment_is_deterministic(start in 0usize..10_000) {
            let f = fixture();
            let chrom = f.assembly.contig("1").unwrap();
            prop_assume!(start + 100 <= chrom.len());
            let read = chrom.seq.subseq(start, start + 100);
            let aligner = Aligner::new(&f.index, AlignParams::default());
            let a = aligner.align_seq(&read);
            let b = aligner.align_seq(&read);
            prop_assert_eq!(a.class, b.class);
            prop_assert_eq!(a.primary, b.primary);
        }
    }
}
