//! Property-based tests of the SQS queue's at-least-once delivery contract.
//!
//! A shadow model tracks, per message, the delivery count, the earliest legal
//! redelivery time, and whether it was deleted. Arbitrary interleavings of
//! receive / delete / extend / force-visible / clock-advance operations must
//! uphold the broker invariants:
//!
//! 1. conservation — every message is pending, deleted, or dead-lettered;
//! 2. visibility — an in-flight message is never redelivered before its lease
//!    expires (unless a duplicate delivery was forced);
//! 3. deleted messages are never delivered again;
//! 4. a message dead-letters only after exactly `max_receive_count` deliveries,
//!    and is never delivered beyond that allowance.

use cloudsim::sqs::ReceiptHandle;
use cloudsim::{SimDuration, SimTime, SqsQueue};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

const VISIBILITY_SECS: f64 = 30.0;
const MAX_RECEIVE: u32 = 3;

/// One scripted broker operation; indices are reduced modulo live collections.
#[derive(Clone, Debug)]
enum Op {
    Receive,
    Delete(usize),
    Extend(usize, f64),
    ForceVisible(usize),
    Advance(f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Receive),
        2 => (0usize..8).prop_map(Op::Delete),
        1 => (0usize..8, 1.0f64..60.0).prop_map(|(i, d)| Op::Extend(i, d)),
        1 => (0usize..8).prop_map(Op::ForceVisible),
        3 => (1.0f64..40.0).prop_map(Op::Advance),
    ]
}

/// Shadow state for one message body.
#[derive(Default)]
struct Shadow {
    deliveries: u32,
    /// Earliest time the broker may legally hand the message out again.
    not_before: f64,
    /// Set when a forced duplicate makes an early redelivery legal.
    dup_forced: bool,
    deleted: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn queue_upholds_at_least_once_invariants(
        n_msgs in 1usize..8,
        ops in prop::collection::vec(op_strategy(), 0..120),
    ) {
        let mut q: SqsQueue<u32> =
            SqsQueue::new(SimDuration::from_secs(VISIBILITY_SECS)).with_max_receive_count(MAX_RECEIVE);
        let mut shadow: HashMap<u32, Shadow> = HashMap::new();
        for m in 0..n_msgs as u32 {
            q.send(m);
            shadow.insert(m, Shadow::default());
        }
        let mut now = 0.0f64;
        let mut receipts: Vec<(ReceiptHandle, u32)> = Vec::new();
        let mut deleted_count = 0usize;

        for op in ops {
            match op {
                Op::Advance(d) => now += d,
                Op::Receive => {
                    let before_dead: HashSet<u32> =
                        q.dead_letters().iter().copied().collect();
                    if let Some((body, receipt, count)) = q.receive(SimTime::from_secs(now)) {
                        let s = shadow.get_mut(&body).unwrap();
                        // Invariant 3: deleted messages stay deleted.
                        prop_assert!(!s.deleted, "deleted message {body} redelivered");
                        // Invariant 2: leases are honored unless a duplicate was forced.
                        prop_assert!(
                            s.dup_forced || now >= s.not_before,
                            "message {body} delivered at {now} before its lease expires at {}",
                            s.not_before
                        );
                        // Invariant 4: the delivery allowance is never exceeded.
                        prop_assert!(count <= MAX_RECEIVE, "message {body} over-delivered");
                        s.deliveries += 1;
                        prop_assert_eq!(count, s.deliveries, "broker and shadow disagree");
                        s.not_before = now + VISIBILITY_SECS;
                        s.dup_forced = false;
                        receipts.push((receipt, body));
                    }
                    // Invariant 4: anything that dead-lettered during this receive
                    // had exhausted its allowance without ever being deleted.
                    for &d in q.dead_letters() {
                        if !before_dead.contains(&d) {
                            let s = &shadow[&d];
                            prop_assert_eq!(s.deliveries, MAX_RECEIVE, "{} dead-lettered early", d);
                            prop_assert!(!s.deleted, "deleted message {} dead-lettered", d);
                        }
                    }
                }
                Op::Delete(i) => {
                    if receipts.is_empty() {
                        continue;
                    }
                    let (receipt, body) = receipts.remove(i % receipts.len());
                    if q.delete(receipt).is_ok() {
                        shadow.get_mut(&body).unwrap().deleted = true;
                        deleted_count += 1;
                    }
                }
                Op::Extend(i, d) => {
                    if receipts.is_empty() {
                        continue;
                    }
                    let (receipt, body) = receipts[i % receipts.len()];
                    if q.change_visibility(receipt, SimTime::from_secs(now), SimDuration::from_secs(d)).is_ok() {
                        shadow.get_mut(&body).unwrap().not_before = now + d;
                    }
                }
                Op::ForceVisible(i) => {
                    if receipts.is_empty() {
                        continue;
                    }
                    let (receipt, body) = receipts[i % receipts.len()];
                    if q.force_visible(receipt).is_ok() {
                        shadow.get_mut(&body).unwrap().dup_forced = true;
                    }
                }
            }
            // Invariant 1: conservation after every operation.
            prop_assert_eq!(
                deleted_count + q.dead_letter_count() + q.pending_count(),
                n_msgs,
                "message lost or double-counted at t={}", now
            );
        }

        // Drain the queue far in the future: everything left either delivers
        // within its remaining allowance or dead-letters; nothing vanishes.
        let far = SimTime::from_secs(now + 1e7);
        let mut drained = 0usize;
        while let Some((body, receipt, _)) = q.receive(far) {
            prop_assert!(!shadow[&body].deleted);
            q.delete(receipt).unwrap();
            drained += 1;
        }
        prop_assert_eq!(deleted_count + drained + q.dead_letter_count(), n_msgs);
    }

    /// Differential oracle: the heap/deque queue and a naive scan-based
    /// reference model (below), driven with an identical operation script, must
    /// be observationally indistinguishable — same receive results (body,
    /// receipt number, count), same success/failure on delete/extend/
    /// force-visible, same counters, same dead-letter order. The model replays
    /// the role of the deleted `LegacySqsQueue`: it spells the delivery-order
    /// contract out as plain full scans, so any heap/deque scheduling bug shows
    /// up as a divergence.
    #[test]
    fn queue_matches_scan_reference_model(
        n_msgs in 1usize..8,
        ops in prop::collection::vec(op_strategy(), 0..150),
    ) {
        let vis = SimDuration::from_secs(VISIBILITY_SECS);
        let mut new_q: SqsQueue<u32> = SqsQueue::new(vis).with_max_receive_count(MAX_RECEIVE);
        let mut model = ModelQueue::new(VISIBILITY_SECS, MAX_RECEIVE);
        for m in 0..n_msgs as u32 {
            new_q.send(m);
            model.send(m);
        }

        let mut now = 0.0f64;
        // Receipts come out of each queue's own numbering; track them pairwise
        // so the same script index targets the same logical delivery in both.
        let mut receipts: Vec<(ReceiptHandle, u64)> = Vec::new();

        for op in ops {
            let t = SimTime::from_secs(now);
            match op {
                Op::Advance(d) => now += d,
                Op::Receive => {
                    let a = new_q.receive(t);
                    let b = model.receive(now);
                    prop_assert_eq!(
                        a.as_ref().map(|(m, _, c)| (*m, *c)),
                        b.as_ref().map(|(m, _, c)| (*m, *c)),
                        "receive diverged at t={}", now
                    );
                    if let (Some((_, ra, _)), Some((_, rb, _))) = (a, b) {
                        // Receipt numbering is part of the observable contract:
                        // both queues hand them out in delivery order.
                        prop_assert_eq!(
                            format!("{ra:?}"),
                            format!("ReceiptHandle({rb})"),
                            "receipt numbering diverged"
                        );
                        receipts.push((ra, rb));
                    }
                }
                Op::Delete(i) => {
                    if receipts.is_empty() {
                        continue;
                    }
                    let (ra, rb) = receipts.remove(i % receipts.len());
                    prop_assert_eq!(
                        new_q.delete(ra).is_ok(),
                        model.delete(rb),
                        "delete outcome diverged"
                    );
                }
                Op::Extend(i, d) => {
                    if receipts.is_empty() {
                        continue;
                    }
                    let (ra, rb) = receipts[i % receipts.len()];
                    let dd = SimDuration::from_secs(d);
                    prop_assert_eq!(
                        new_q.change_visibility(ra, t, dd).is_ok(),
                        model.change_visibility(rb, now, d),
                        "change_visibility outcome diverged"
                    );
                }
                Op::ForceVisible(i) => {
                    if receipts.is_empty() {
                        continue;
                    }
                    let (ra, rb) = receipts[i % receipts.len()];
                    prop_assert_eq!(
                        new_q.force_visible(ra).is_ok(),
                        model.force_visible(rb),
                        "force_visible outcome diverged"
                    );
                    prop_assert_eq!(
                        new_q.queue_wait(ra).map(|d| d.as_secs()),
                        model.queue_wait(rb),
                        "queue_wait diverged"
                    );
                }
            }
            let t = SimTime::from_secs(now);
            prop_assert_eq!(new_q.pending_count(), model.pending_count());
            prop_assert_eq!(new_q.visible_count(t), model.visible_count(now));
            prop_assert_eq!(new_q.in_flight_count(t), model.in_flight_count(now));
            prop_assert_eq!(new_q.dead_letters(), model.dead_letters(), "dead-letter order diverged");
        }

        // Drain both far in the future: the full remaining delivery schedule
        // (bodies, counts, receipts, dead-letter order) must match to the end.
        let far_secs = now + 1e7;
        let far = SimTime::from_secs(far_secs);
        loop {
            let a = new_q.receive(far);
            let b = model.receive(far_secs);
            prop_assert_eq!(
                a.as_ref().map(|(m, _, c)| (*m, *c)),
                b.as_ref().map(|(m, _, c)| (*m, *c)),
                "drain diverged"
            );
            match a {
                Some((_, r, _)) => new_q.delete(r).unwrap(),
                None => break,
            }
            if let Some((_, r, _)) = b {
                prop_assert!(model.delete(r));
            }
        }
        prop_assert_eq!(new_q.dead_letters(), model.dead_letters());
        prop_assert_eq!(new_q.pending_count(), 0);
        prop_assert_eq!(model.pending_count(), 0);
    }
}

/// A deliberately naive scan-based SQS model: the executable statement of the
/// delivery contract the production heap/deque queue must honor. Everything is
/// O(n) full scans over the message store — visibility reconciliation walks all
/// messages in index order, receipts resolve by linear search — because the
/// point is obviousness, not speed. It reproduces the semantics of the deleted
/// `LegacySqsQueue` (the pre-kernel production implementation) so the
/// differential property test above keeps its oracle power.
struct ModelMsg {
    body: u32,
    receive_count: u32,
    invisible_until: Option<f64>,
    current_receipt: Option<u64>,
    deleted: bool,
    queued: bool,
    sent_at: f64,
    first_received_at: Option<f64>,
}

struct ModelQueue {
    msgs: Vec<ModelMsg>,
    /// Indices of (potentially) visible messages, FIFO front-to-back.
    visible: Vec<usize>,
    visibility_secs: f64,
    max_receive: u32,
    next_receipt: u64,
    dead: Vec<u32>,
}

impl ModelQueue {
    fn new(visibility_secs: f64, max_receive: u32) -> ModelQueue {
        ModelQueue {
            msgs: Vec::new(),
            visible: Vec::new(),
            visibility_secs,
            max_receive,
            next_receipt: 1,
            dead: Vec::new(),
        }
    }

    fn send(&mut self, body: u32) {
        let idx = self.msgs.len();
        self.msgs.push(ModelMsg {
            body,
            receive_count: 0,
            invisible_until: None,
            current_receipt: None,
            deleted: false,
            queued: true,
            sent_at: 0.0,
            first_received_at: None,
        });
        self.visible.push(idx);
    }

    /// Fire every expired lease: receipt goes stale, message re-queues. Walking
    /// the whole store in index order is the contract — messages expiring by
    /// the same reconciliation instant re-queue in message-index order.
    fn reconcile(&mut self, now: f64) {
        for idx in 0..self.msgs.len() {
            let m = &mut self.msgs[idx];
            if m.deleted || !m.invisible_until.is_some_and(|t| t <= now) {
                continue;
            }
            m.invisible_until = None;
            m.current_receipt = None;
            if !m.queued {
                m.queued = true;
                self.visible.push(idx);
            }
        }
    }

    fn receive(&mut self, now: f64) -> Option<(u32, u64, u32)> {
        self.reconcile(now);
        while !self.visible.is_empty() {
            let idx = self.visible.remove(0);
            let m = &mut self.msgs[idx];
            m.queued = false;
            if m.deleted {
                continue;
            }
            if m.invisible_until.is_some_and(|t| t > now) {
                continue; // re-leased while queued; expiry will re-queue it
            }
            if m.receive_count >= self.max_receive {
                m.deleted = true;
                m.invisible_until = None;
                m.current_receipt = None;
                self.dead.push(m.body);
                continue;
            }
            m.receive_count += 1;
            if m.first_received_at.is_none() {
                m.first_received_at = Some(now);
            }
            m.invisible_until = Some(now + self.visibility_secs);
            let receipt = self.next_receipt;
            self.next_receipt += 1;
            m.current_receipt = Some(receipt);
            return Some((m.body, receipt, m.receive_count));
        }
        None
    }

    /// Linear receipt resolution; `None` means stale.
    fn find(&self, receipt: u64) -> Option<usize> {
        self.msgs.iter().position(|m| !m.deleted && m.current_receipt == Some(receipt))
    }

    fn delete(&mut self, receipt: u64) -> bool {
        match self.find(receipt) {
            Some(idx) => {
                self.msgs[idx].deleted = true;
                self.msgs[idx].current_receipt = None;
                true
            }
            None => false,
        }
    }

    fn change_visibility(&mut self, receipt: u64, now: f64, timeout: f64) -> bool {
        match self.find(receipt) {
            Some(idx) => {
                self.msgs[idx].invisible_until = Some(now + timeout);
                true
            }
            None => false,
        }
    }

    fn force_visible(&mut self, receipt: u64) -> bool {
        match self.find(receipt) {
            Some(idx) => {
                let m = &mut self.msgs[idx];
                m.invisible_until = None;
                if !m.queued {
                    m.queued = true;
                    self.visible.push(idx);
                }
                true
            }
            None => false,
        }
    }

    fn queue_wait(&self, receipt: u64) -> Option<f64> {
        let idx = self.find(receipt)?;
        let m = &self.msgs[idx];
        m.first_received_at.map(|t| t - m.sent_at)
    }

    fn pending_count(&self) -> usize {
        self.msgs.iter().filter(|m| !m.deleted).count()
    }

    fn visible_count(&mut self, now: f64) -> usize {
        self.reconcile(now);
        self.visible
            .iter()
            .filter(|&&i| {
                let m = &self.msgs[i];
                !m.deleted && m.invisible_until.is_none_or(|t| t <= now)
            })
            .count()
    }

    fn in_flight_count(&self, now: f64) -> usize {
        self.msgs
            .iter()
            .filter(|m| !m.deleted && m.invisible_until.is_some_and(|t| t > now))
            .count()
    }

    fn dead_letters(&self) -> &[u32] {
        &self.dead
    }
}
