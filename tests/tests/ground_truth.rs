//! Aligner accuracy against simulator ground truth: reads carry their true origin,
//! so we can score position accuracy, spliced-alignment correctness, and the
//! unmappability of technical sequence — the properties the pipeline's
//! mapping-rate statistics (and hence early stopping) depend on.

use genomics::annotation::AnnotationParams;
use genomics::simulate::{JunkClass, ReadOrigin};
use genomics::{
    Annotation, EnsemblGenerator, EnsemblParams, LibraryType, ReadSimulator, Release,
    SimulatorParams,
};
use star_aligner::align::{Aligner, CigarOp};
use star_aligner::index::{IndexParams, StarIndex};
use star_aligner::AlignParams;

struct Fixture {
    assembly: genomics::Assembly,
    annotation: Annotation,
    index: StarIndex,
}

fn fixture() -> Fixture {
    let generator = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
    let assembly = generator.generate(Release::R111);
    let annotation =
        Annotation::simulate(&assembly, &generator, &AnnotationParams::default()).unwrap();
    let index = StarIndex::build(&assembly, &annotation, &IndexParams::default()).unwrap();
    Fixture { assembly, annotation, index }
}

#[test]
fn genomic_reads_align_to_their_true_position() {
    let f = fixture();
    let aligner = Aligner::new(&f.index, AlignParams::default());
    let mut params = SimulatorParams::for_library(LibraryType::BulkPolyA);
    params.exonic_fraction = 0.0;
    params.genomic_fraction = 1.0;
    params.junk_mix = [
        (JunkClass::PolyA, 0.25),
        (JunkClass::Adapter, 0.25),
        (JunkClass::LowComplexity, 0.25),
        (JunkClass::Random, 0.25),
    ];
    let mut sim = ReadSimulator::new(&f.assembly, &f.annotation, params, 42).unwrap();
    let reads = sim.simulate(400, "GT");
    let mut correct = 0usize;
    let mut mapped = 0usize;
    for read in &reads {
        let ReadOrigin::Genomic { contig, pos } = &read.origin else { panic!("genomic only") };
        let out = aligner.align_seq(&read.fastq.seq);
        if let Some(rec) = out.primary.filter(|_| out.class.is_mapped()) {
            mapped += 1;
            // Soft clips can shift the reported start by a few bases.
            if *rec.contig == **contig && (rec.pos as i64 - *pos as i64).unsigned_abs() <= 5 {
                correct += 1;
            }
        }
    }
    assert!(mapped as f64 / reads.len() as f64 > 0.9, "mapped {mapped}/{}", reads.len());
    assert!(correct as f64 / mapped as f64 > 0.95, "position accuracy {correct}/{mapped}");
}

#[test]
fn junction_spanning_reads_recover_annotated_junctions() {
    let f = fixture();
    let aligner = Aligner::new(&f.index, AlignParams::default());
    // Take multi-exon genes and craft junction-spanning reads from their
    // transcripts: 50 bases on each side of an exon boundary.
    let mut tested = 0usize;
    let mut with_junction = 0usize;
    for gene in f.annotation.genes.iter().filter(|g| g.exons.len() >= 2) {
        let transcript = gene.transcript(&f.assembly).unwrap();
        // Exon boundary position within the transcript (first junction), in
        // transcript coordinates for the forward strand.
        let first_exon_len = gene.exons[0].len();
        if first_exon_len < 50 || transcript.len() < first_exon_len + 50 {
            continue;
        }
        // For reverse-strand genes the transcript is reverse-complemented; aligning
        // the read still must produce an N operation.
        let (lo, hi) = match gene.strand {
            genomics::Strand::Forward => (first_exon_len - 50, first_exon_len + 50),
            genomics::Strand::Reverse => {
                let from_end = transcript.len() - first_exon_len;
                if from_end < 50 || transcript.len() < from_end + 50 {
                    continue;
                }
                (from_end - 50, from_end + 50)
            }
        };
        let read = transcript.subseq(lo, hi);
        let out = aligner.align_seq(&read);
        tested += 1;
        if let Some(rec) = out.primary {
            if rec.cigar.iter().any(|op| matches!(op, CigarOp::N(_))) {
                with_junction += 1;
                // The junction must be one of the gene's annotated introns.
                let annotated: Vec<(u64, u64)> = gene
                    .exons
                    .windows(2)
                    .map(|w| (w[0].end as u64, w[1].start as u64))
                    .collect();
                for (js, je, _) in &rec.junctions {
                    assert!(
                        annotated.contains(&(*js, *je)),
                        "gene {}: junction {js}..{je} not annotated {annotated:?}",
                        gene.id
                    );
                }
            }
        }
    }
    assert!(tested >= 5, "need multi-exon genes to test: {tested}");
    assert!(
        with_junction as f64 / tested as f64 > 0.8,
        "spliced recovery {with_junction}/{tested}"
    );
}

#[test]
fn junk_classes_are_unmappable() {
    let f = fixture();
    let aligner = Aligner::new(&f.index, AlignParams::default());
    let mut params = SimulatorParams::for_library(LibraryType::SingleCell3Prime);
    params.exonic_fraction = 0.0;
    params.genomic_fraction = 0.0;
    let mut sim = ReadSimulator::new(&f.assembly, &f.annotation, params, 43).unwrap();
    let reads = sim.simulate(600, "JK");
    let mut mapped_by_class = std::collections::HashMap::new();
    for read in &reads {
        let ReadOrigin::Junk(class) = read.origin else { panic!("junk only") };
        let out = aligner.align_seq(&read.fastq.seq);
        let entry = mapped_by_class.entry(format!("{class:?}")).or_insert((0usize, 0usize));
        entry.0 += usize::from(out.is_mapped());
        entry.1 += 1;
    }
    for (class, (mapped, total)) in mapped_by_class {
        assert!(
            (mapped as f64) / (total as f64) < 0.05,
            "junk class {class} mapped {mapped}/{total}"
        );
    }
}

#[test]
fn transcript_reads_count_for_their_gene() {
    let f = fixture();
    let mut params = SimulatorParams::for_library(LibraryType::BulkPolyA);
    params.exonic_fraction = 1.0;
    params.genomic_fraction = 0.0;
    params.error_rate = 0.0;
    let mut sim = ReadSimulator::new(&f.assembly, &f.annotation, params, 44).unwrap();
    let reads = sim.simulate(500, "TC");
    let aligner = Aligner::new(&f.index, AlignParams::default());
    let mut counter = star_aligner::quant::GeneCounter::new(&f.annotation);
    let mut truth: Vec<String> = Vec::new();
    for read in &reads {
        let ReadOrigin::Transcript { gene_id, .. } = &read.origin else { panic!("exonic only") };
        truth.push(gene_id.clone());
        let out = aligner.align_read(&read.fastq);
        counter.record(out.class, out.primary.as_ref());
    }
    let counts = counter.finish();
    // Aggregate: the counted total must be close to the number of unique exonic
    // reads, and the most-counted gene must be among the true top genes.
    let counted = counts.total_counted(star_aligner::quant::Strandedness::Unstranded);
    assert!(
        counted as f64 / reads.len() as f64 > 0.5,
        "most exonic reads countable: {counted}/{}",
        reads.len()
    );
    let mut true_freq = std::collections::HashMap::new();
    for g in &truth {
        *true_freq.entry(g.clone()).or_insert(0usize) += 1;
    }
    let top_counted = counts
        .gene_ids
        .iter()
        .zip(counts.counts.iter())
        .max_by_key(|(_, c)| c[0])
        .map(|(g, _)| g.clone())
        .unwrap();
    let top_true_count = *true_freq.get(&top_counted).unwrap_or(&0);
    let max_true = *true_freq.values().max().unwrap();
    assert!(
        top_true_count * 2 >= max_true,
        "top counted gene {top_counted} is not among the truly expressed top genes"
    );
}
