//! Integration-test package: all tests live in `tests/tests/`.
