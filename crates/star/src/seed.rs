//! Seed collection: turn MMP hits into anchored genome seeds.
//!
//! Reads are scanned left to right; each MMP that is long enough and not too
//! repetitive contributes one seed per genome occurrence. The scan then restarts just
//! past the base that terminated the MMP (STAR's serial MMP search). Seeds that would
//! cross a contig boundary are discarded.
//!
//! Occurrence resolution is batched per MMP: all suffix-array slots of the interval
//! are read into scratch in one contiguous pass, the boundary check runs as a single
//! merge-join of the genome-position-sorted probes against the span table (one
//! forward sweep instead of one binary search per occurrence), and the surviving
//! seeds are pushed in original slot order so the `max_seeds_per_read` truncation is
//! bit-identical to the one-at-a-time loop it replaced.
//!
//! The seed *count* per read is the quantity the genome-release optimization moves:
//! on the release-108 index every genic MMP interval also contains the duplicated
//! scaffold copies, multiplying seeds — and all downstream stitching/extension work —
//! by the copy number.

use crate::genome::Packed2;
use crate::hashseed::HashSeedIndex;
use crate::index::StarIndex;
use crate::mmp::mmp_search_packed;
use crate::params::AlignParams;
use crate::prefix::PrefixTable;

/// One seed: an exact read↔genome match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Seed {
    /// Offset in the (possibly reverse-complemented) read.
    pub read_pos: u32,
    /// Global genome position of the match start.
    pub gpos: u64,
    /// Exact-match length.
    pub len: u32,
    /// How many genome positions this seed's MMP interval had (1 = unique anchor).
    pub interval_size: u32,
}

impl Seed {
    /// Diagonal of the seed: `gpos - read_pos`, constant along an unspliced match.
    #[inline]
    pub fn diagonal(&self) -> i64 {
        self.gpos as i64 - self.read_pos as i64
    }

    /// One past the last read base covered.
    #[inline]
    pub fn read_end(&self) -> u32 {
        self.read_pos + self.len
    }

    /// One past the last genome base covered.
    #[inline]
    pub fn gend(&self) -> u64 {
        self.gpos + self.len as u64
    }
}

/// Reusable buffers for batched per-MMP occurrence resolution (cleared per MMP,
/// capacity retained across reads so the steady state allocates nothing).
#[derive(Clone, Debug, Default)]
pub struct SeedProbeScratch {
    /// Genome position per interval slot, in slot order.
    gpos: Vec<u64>,
    /// Slot indices sorted by genome position (the merge-join visit order).
    order: Vec<u32>,
    /// Per-slot verdict of the contig-boundary check.
    fits: Vec<bool>,
}

/// Collect seeds for `read_codes` (already oriented; the caller runs this once per
/// strand). Returns seeds sorted by `read_pos`. Convenience wrapper over
/// [`collect_seeds_packed`] for callers without packed reads or reusable buffers.
pub fn collect_seeds(index: &StarIndex, read_codes: &[u8], params: &AlignParams) -> Vec<Seed> {
    let mut seeds = Vec::new();
    collect_seeds_into(index, read_codes, params, &mut seeds);
    seeds
}

/// Collect seeds into a caller-provided buffer (cleared first; capacity retained
/// across reads so the steady state allocates nothing).
pub fn collect_seeds_into(
    index: &StarIndex,
    read_codes: &[u8],
    params: &AlignParams,
    seeds: &mut Vec<Seed>,
) {
    collect_seeds_with(index, &[], read_codes, params, seeds);
}

/// [`collect_seeds_into`] accelerated by optional deeper prefix tables
/// ([`PrefixTable::deepen`], deepest first); seeds are identical with or without
/// them.
pub fn collect_seeds_with(
    index: &StarIndex,
    deep: &[PrefixTable],
    read_codes: &[u8],
    params: &AlignParams,
    seeds: &mut Vec<Seed>,
) {
    let q = Packed2::from_codes(read_codes);
    let mut probe = SeedProbeScratch::default();
    collect_seeds_packed(index, deep, None, &q, params, seeds, &mut probe);
}

/// The full seed collector over a packed read, with every acceleration layer:
/// deeper prefix tables, an optional hash seeding index, and batched occurrence
/// resolution through `probe`. Seeds are identical across all layer combinations.
#[allow(clippy::too_many_arguments)]
pub fn collect_seeds_packed(
    index: &StarIndex,
    deep: &[PrefixTable],
    hash: Option<&HashSeedIndex>,
    q: &Packed2,
    params: &AlignParams,
    seeds: &mut Vec<Seed>,
    probe: &mut SeedProbeScratch,
) {
    seeds.clear();
    let mut from = 0usize;
    let genome = index.genome();
    while from < q.len() && seeds.len() < params.max_seeds_per_read {
        let m = mmp_search_packed(index, deep, hash, q, from);
        if m.len == 0 {
            from += 1;
            continue;
        }
        if m.len >= params.min_seed_len && m.occurrences() <= params.anchor_multimap_nmax {
            let read_pos = m.start as u32;
            let len = m.len as u32;
            let interval_size = m.occurrences();
            if interval_size == 1 {
                // Single occurrence: the batch machinery would only add overhead.
                let gpos = index.sa().suffix(m.interval.lo) as u64;
                if genome.fits_in_contig(gpos, m.len as u64) {
                    seeds.push(Seed { read_pos, gpos, len, interval_size });
                }
            } else {
                // Batched resolution: one contiguous SA read, one position-sorted
                // sweep over the span table, then a slot-order push — byte-identical
                // truncation semantics to checking each slot in turn.
                let SeedProbeScratch { gpos, order, fits } = probe;
                gpos.clear();
                gpos.extend(
                    index.sa().positions()[m.interval.lo as usize..m.interval.hi as usize]
                        .iter()
                        .map(|&p| p as u64),
                );
                order.clear();
                order.extend(0..gpos.len() as u32);
                order.sort_unstable_by_key(|&i| gpos[i as usize]);
                fits.clear();
                fits.resize(gpos.len(), false);
                let spans = genome.spans();
                let mut cur = 0usize;
                for &i in order.iter() {
                    let g = gpos[i as usize];
                    while spans[cur].end() <= g {
                        cur += 1;
                    }
                    // The final span ends at the genome length, so this also
                    // rejects runs past the genome end.
                    fits[i as usize] = g + m.len as u64 <= spans[cur].end();
                }
                for (i, &ok) in fits.iter().enumerate() {
                    if ok {
                        seeds.push(Seed { read_pos, gpos: gpos[i], len, interval_size });
                        if seeds.len() >= params.max_seeds_per_read {
                            break;
                        }
                    }
                }
            }
        }
        // Restart past the mismatching base (or past the read end).
        from = m.start + m.len + 1;
    }
    seeds.sort_unstable_by_key(|s| (s.read_pos, s.gpos));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexParams, StarIndex};
    use genomics::{Annotation, Assembly, AssemblyKind, Contig, ContigKind, DnaSeq};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn index_of_contigs(contigs: Vec<(&str, &str)>) -> StarIndex {
        let asm = Assembly {
            name: "T".into(),
            release: 1,
            kind: AssemblyKind::Toplevel,
            contigs: contigs
                .into_iter()
                .map(|(name, seq)| Contig {
                    name: name.into(),
                    kind: ContigKind::Chromosome,
                    seq: seq.parse::<DnaSeq>().unwrap(),
                })
                .collect(),
        };
        StarIndex::build(&asm, &Annotation::default(), &IndexParams::default()).unwrap()
    }

    fn random_text(seed: u64, len: usize) -> String {
        DnaSeq::random(&mut StdRng::seed_from_u64(seed), len).to_string()
    }

    #[test]
    fn perfect_read_yields_one_full_length_seed() {
        let text = random_text(1, 2000);
        let idx = index_of_contigs(vec![("1", &text)]);
        let read: DnaSeq = text[300..400].parse().unwrap();
        let seeds = collect_seeds(&idx, read.codes(), &AlignParams::default());
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].read_pos, 0);
        assert_eq!(seeds[0].gpos, 300);
        assert_eq!(seeds[0].len, 100);
        assert_eq!(seeds[0].diagonal(), 300);
    }

    #[test]
    fn mismatch_splits_into_two_seeds_on_same_diagonal() {
        let text = random_text(2, 2000);
        let idx = index_of_contigs(vec![("1", &text)]);
        let mut read: DnaSeq = text[500..600].parse().unwrap();
        // Flip base 50.
        let mut codes = read.codes().to_vec();
        codes[50] = (codes[50] + 1) % 4;
        read = DnaSeq::from_codes(codes);
        let seeds = collect_seeds(&idx, read.codes(), &AlignParams::default());
        assert_eq!(seeds.len(), 2, "seeds: {seeds:?}");
        assert_eq!(seeds[0].read_pos, 0);
        assert_eq!(seeds[0].len, 50);
        assert_eq!(seeds[1].read_pos, 51);
        assert_eq!(seeds[1].len, 49);
        assert_eq!(seeds[0].diagonal(), seeds[1].diagonal());
    }

    #[test]
    fn repeated_segment_yields_one_seed_per_copy() {
        let unique = random_text(3, 1000);
        let repeat = &unique[100..200];
        // Genome: unique + 3 extra copies of repeat.
        let text = format!("{unique}{repeat}{repeat}{repeat}");
        let idx = index_of_contigs(vec![("1", &text)]);
        let read: DnaSeq = repeat.parse().unwrap();
        let seeds = collect_seeds(&idx, read.codes(), &AlignParams::default());
        assert_eq!(seeds.len(), 4, "one seed per genomic copy");
        assert!(seeds.iter().all(|s| s.interval_size == 4));
    }

    #[test]
    fn anchor_cap_suppresses_hyper_repetitive_seeds() {
        let unique = random_text(3, 1000);
        let repeat = &unique[100..200];
        let text = format!("{unique}{}", repeat.repeat(5));
        let idx = index_of_contigs(vec![("1", &text)]);
        let read: DnaSeq = repeat.parse().unwrap();
        let mut p = AlignParams::default();
        p.anchor_multimap_nmax = 3; // repeat occurs 6 times > cap
        let seeds = collect_seeds(&idx, read.codes(), &p);
        assert!(seeds.is_empty(), "seeds above the anchor cap must be skipped: {seeds:?}");
    }

    #[test]
    fn boundary_crossing_seeds_are_discarded() {
        let a = random_text(4, 400);
        let b = random_text(5, 400);
        let idx = index_of_contigs(vec![("1", &a), ("2", &b)]);
        // A read spanning the concatenation boundary exists in the packed genome but
        // crosses contigs; its single seed must be rejected.
        let mut read = DnaSeq::new();
        read.extend_from(&a.parse::<DnaSeq>().unwrap().subseq(360, 400));
        read.extend_from(&b.parse::<DnaSeq>().unwrap().subseq(0, 40));
        let seeds = collect_seeds(&idx, read.codes(), &AlignParams::default());
        // Any surviving seed must fit inside one contig.
        for s in &seeds {
            assert!(idx.genome().fits_in_contig(s.gpos, s.len as u64));
        }
        // And the full 80-mer straddling seed is gone.
        assert!(seeds.iter().all(|s| s.len < 80));
    }

    #[test]
    fn junk_read_produces_no_seeds() {
        let text = random_text(6, 3000);
        let idx = index_of_contigs(vec![("1", &text)]);
        let read = DnaSeq::from_codes(vec![0u8; 100]); // poly-A
        let seeds = collect_seeds(&idx, read.codes(), &AlignParams::default());
        assert!(seeds.is_empty());
    }

    #[test]
    fn seed_count_is_capped() {
        // Genome of a short unit repeated many times; read = the unit, well below the
        // anchor cap but spawning many occurrences.
        let unit = random_text(7, 30);
        let text = unit.repeat(40);
        let idx = index_of_contigs(vec![("1", &text)]);
        let read: DnaSeq = unit.repeat(3).parse().unwrap();
        let mut p = AlignParams::default();
        p.anchor_multimap_nmax = 1000;
        p.max_seeds_per_read = 25;
        let seeds = collect_seeds(&idx, read.codes(), &p);
        assert!(seeds.len() <= 25);
    }

    #[test]
    fn batched_resolution_matches_slot_order_semantics_across_boundaries() {
        // Repeat a unit so it lands in several contigs, with some copies cut by
        // boundaries; compare against a straightforward per-slot reference.
        let unit = random_text(8, 40);
        let a = format!("{}{}", unit.repeat(3), random_text(9, 23));
        let b = format!("{}{}{}", random_text(10, 17), unit.repeat(2), &unit[..20]);
        let c = format!("{}{}", &unit[20..], unit);
        let idx = index_of_contigs(vec![("1", &a), ("2", &b), ("3", &c)]);
        let read: DnaSeq = unit.parse().unwrap();
        for cap in [2usize, 4, 100] {
            let mut p = AlignParams::default();
            p.anchor_multimap_nmax = 1000;
            p.max_seeds_per_read = cap;
            p.min_seed_len = 10;
            let seeds = collect_seeds(&idx, read.codes(), &p);
            // Reference: the pre-batching algorithm, written plainly.
            let mut expect = Vec::new();
            let mut from = 0usize;
            while from < read.len() && expect.len() < cap {
                let m = crate::mmp::mmp_search(&idx, read.codes(), from);
                if m.len == 0 {
                    from += 1;
                    continue;
                }
                if m.len >= p.min_seed_len && m.occurrences() <= p.anchor_multimap_nmax {
                    for slot in m.interval.lo..m.interval.hi {
                        let gpos = idx.sa().suffix(slot) as u64;
                        if idx.genome().fits_in_contig(gpos, m.len as u64) {
                            expect.push(Seed {
                                read_pos: m.start as u32,
                                gpos,
                                len: m.len as u32,
                                interval_size: m.occurrences(),
                            });
                            if expect.len() >= cap {
                                break;
                            }
                        }
                    }
                }
                from = m.start + m.len + 1;
            }
            expect.sort_unstable_by_key(|s| (s.read_pos, s.gpos));
            assert_eq!(seeds, expect, "cap {cap}");
        }
    }
}
