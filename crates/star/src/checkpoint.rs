//! Alignment checkpoint/resume — the star-side half of graceful spot degradation.
//!
//! When the cloud layer receives a spot interruption notice it has ~2 minutes to
//! get off the instance. Cancelling the run loses the work done so far; an
//! [`AlignCheckpoint`] captures it instead: the reads-processed offset, the
//! partial progress counters, and the partial quant/junction tables, serialized
//! deterministically so the same checkpoint always produces the same bytes. A
//! later attempt resumes with [`crate::runner::Runner::run_resumed`], which skips
//! the already-aligned prefix and seeds its accumulators from the checkpoint —
//! producing SAM/quant/`Log.final` output bit-identical to an uninterrupted run
//! (per-read alignment is pure, so the only state that matters is the offset and
//! the running tallies, all of which the checkpoint carries).
//!
//! The serialized form is versioned, tab-separated text with an FNV-1a checksum
//! trailer; a truncated or tampered blob is rejected on load rather than silently
//! resuming from garbage.

use crate::junctions::JunctionRow;
use crate::quant::GeneCounts;
use crate::runner::{RunOutput, RunStatus};
use crate::sjdb::SpliceClass;
use crate::StarError;

/// Serialization format version; bump on any layout change.
const CHECKPOINT_VERSION: u32 = 1;

/// A resumable snapshot of a partially-completed alignment run.
///
/// Captured at a batch boundary (cancellation only takes effect there), so
/// `reads_processed` is exact: every read before the offset is fully accounted
/// for in the counters and tables, every read at or after it is untouched.
#[derive(Clone, Debug, PartialEq)]
pub struct AlignCheckpoint {
    /// Reads fully processed before the interruption (the resume offset).
    pub reads_processed: u64,
    /// Uniquely mapped reads so far.
    pub unique: u64,
    /// Multimapped reads (within the cap) so far.
    pub multi: u64,
    /// Reads mapped to too many loci so far.
    pub too_many: u64,
    /// Unmapped reads so far.
    pub unmapped: u64,
    /// Partial gene counts when the run had `quant` enabled.
    pub gene_counts: Option<GeneCounts>,
    /// Partial junction table when the run had `collect_junctions` enabled.
    pub junctions: Option<Vec<JunctionRow>>,
}

impl AlignCheckpoint {
    /// Capture a checkpoint from a cancelled run's output. Returns `None` for
    /// any other status: a completed run needs no checkpoint and an
    /// early-stopped run was abandoned on purpose.
    pub fn from_cancelled(output: &RunOutput) -> Option<AlignCheckpoint> {
        let RunStatus::Cancelled { processed_reads } = output.status else {
            return None;
        };
        let s = &output.final_snapshot;
        debug_assert_eq!(s.processed, processed_reads, "cancel lands at a batch boundary");
        Some(AlignCheckpoint {
            reads_processed: processed_reads,
            unique: s.unique,
            multi: s.multi,
            too_many: s.too_many,
            unmapped: s.unmapped,
            gene_counts: output.gene_counts.clone(),
            junctions: output.junctions.clone(),
        })
    }

    /// Internal consistency: every processed read sits in exactly one class
    /// bucket, and the quant table (when present) accounts for the same total.
    pub fn validate(&self) -> Result<(), StarError> {
        let classed = self.unique + self.multi + self.too_many + self.unmapped;
        if classed != self.reads_processed {
            return Err(StarError::CorruptIndex(format!(
                "checkpoint classes sum to {classed} but claims {} reads",
                self.reads_processed
            )));
        }
        if let Some(gc) = &self.gene_counts {
            let quant_total = gc.n_unmapped
                + gc.n_multimapping
                + gc.n_no_feature[0]
                + gc.n_ambiguous[0]
                + gc.counts.iter().map(|c| c[0]).sum::<u64>();
            if quant_total != self.reads_processed {
                return Err(StarError::CorruptIndex(format!(
                    "checkpoint quant table accounts for {quant_total} of {} reads",
                    self.reads_processed
                )));
            }
        }
        Ok(())
    }

    /// Serialize deterministically: versioned tab-separated text with an FNV-1a
    /// checksum trailer. Equal checkpoints always produce equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = String::new();
        body.push_str(&format!("star-ckpt\t{CHECKPOINT_VERSION}\n"));
        body.push_str(&format!(
            "reads\t{}\t{}\t{}\t{}\t{}\n",
            self.reads_processed, self.unique, self.multi, self.too_many, self.unmapped
        ));
        match &self.gene_counts {
            None => body.push_str("quant\t0\n"),
            Some(gc) => {
                body.push_str("quant\t1\n");
                body.push_str(&format!(
                    "nofeature\t{}\t{}\t{}\n",
                    gc.n_no_feature[0], gc.n_no_feature[1], gc.n_no_feature[2]
                ));
                body.push_str(&format!(
                    "ambiguous\t{}\t{}\t{}\n",
                    gc.n_ambiguous[0], gc.n_ambiguous[1], gc.n_ambiguous[2]
                ));
                body.push_str(&format!("multimapping\t{}\n", gc.n_multimapping));
                body.push_str(&format!("unmapped\t{}\n", gc.n_unmapped));
                body.push_str(&format!("genes\t{}\n", gc.gene_ids.len()));
                for (id, c) in gc.gene_ids.iter().zip(&gc.counts) {
                    body.push_str(&format!("g\t{id}\t{}\t{}\t{}\n", c[0], c[1], c[2]));
                }
            }
        }
        match &self.junctions {
            None => body.push_str("junctions\t0\n"),
            Some(rows) => {
                body.push_str(&format!("junctions\t{}\n", rows.len()));
                for row in rows {
                    body.push_str(&format!(
                        "j\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                        row.contig,
                        row.intron_start,
                        row.intron_end,
                        row.stats.unique_reads,
                        row.stats.multi_reads,
                        row.stats.max_overhang,
                        splice_class_name(row.stats.class),
                    ));
                }
            }
        }
        let mut bytes = body.into_bytes();
        let sum = fnv1a(&bytes);
        bytes.extend_from_slice(format!("sum\t{sum:016x}\n").as_bytes());
        bytes
    }

    /// Parse a serialized checkpoint, rejecting version mismatches, truncation,
    /// checksum failures and internally inconsistent tallies.
    pub fn from_bytes(bytes: &[u8]) -> Result<AlignCheckpoint, StarError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| StarError::CorruptIndex("checkpoint is not UTF-8".into()))?;
        let Some(sum_at) = text.rfind("sum\t") else {
            return Err(StarError::CorruptIndex("checkpoint missing checksum trailer".into()));
        };
        let stored = text[sum_at..]
            .trim_end()
            .strip_prefix("sum\t")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| StarError::CorruptIndex("unparseable checkpoint checksum".into()))?;
        let body = &bytes[..sum_at];
        if fnv1a(body) != stored {
            return Err(StarError::CorruptIndex("checkpoint checksum mismatch".into()));
        }

        let mut lines = text[..sum_at].lines();
        let header = fields(lines.next(), 2, "header")?;
        if header[0] != "star-ckpt" {
            return Err(StarError::CorruptIndex("not a checkpoint blob".into()));
        }
        let version: u32 = parse(&header[1], "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(StarError::CorruptIndex(format!(
                "checkpoint version {version}, expected {CHECKPOINT_VERSION}"
            )));
        }
        let reads = fields(lines.next(), 6, "reads")?;
        if reads[0] != "reads" {
            return Err(StarError::CorruptIndex("expected reads line".into()));
        }
        let mut ckpt = AlignCheckpoint {
            reads_processed: parse(&reads[1], "reads_processed")?,
            unique: parse(&reads[2], "unique")?,
            multi: parse(&reads[3], "multi")?,
            too_many: parse(&reads[4], "too_many")?,
            unmapped: parse(&reads[5], "unmapped")?,
            gene_counts: None,
            junctions: None,
        };

        let quant = fields(lines.next(), 2, "quant")?;
        if quant[0] != "quant" {
            return Err(StarError::CorruptIndex("expected quant line".into()));
        }
        if quant[1] != "0" {
            let nf = fields(lines.next(), 4, "nofeature")?;
            let amb = fields(lines.next(), 4, "ambiguous")?;
            let mm = fields(lines.next(), 2, "multimapping")?;
            let unm = fields(lines.next(), 2, "unmapped")?;
            let genes = fields(lines.next(), 2, "genes")?;
            let n_genes: usize = parse(&genes[1], "gene count")?;
            let mut gene_ids = Vec::with_capacity(n_genes);
            let mut counts = Vec::with_capacity(n_genes);
            for _ in 0..n_genes {
                let g = fields(lines.next(), 5, "gene row")?;
                if g[0] != "g" {
                    return Err(StarError::CorruptIndex("expected gene row".into()));
                }
                gene_ids.push(g[1].to_string());
                counts.push([parse(&g[2], "count")?, parse(&g[3], "count")?, parse(&g[4], "count")?]);
            }
            ckpt.gene_counts = Some(GeneCounts {
                gene_ids,
                counts,
                n_no_feature: [
                    parse(&nf[1], "nofeature")?,
                    parse(&nf[2], "nofeature")?,
                    parse(&nf[3], "nofeature")?,
                ],
                n_ambiguous: [
                    parse(&amb[1], "ambiguous")?,
                    parse(&amb[2], "ambiguous")?,
                    parse(&amb[3], "ambiguous")?,
                ],
                n_multimapping: parse(&mm[1], "multimapping")?,
                n_unmapped: parse(&unm[1], "unmapped")?,
            });
        }

        let junctions = fields(lines.next(), 2, "junctions")?;
        if junctions[0] != "junctions" {
            return Err(StarError::CorruptIndex("expected junctions line".into()));
        }
        if junctions[1] != "0" {
            let n: usize = parse(&junctions[1], "junction count")?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let j = fields(lines.next(), 8, "junction row")?;
                if j[0] != "j" {
                    return Err(StarError::CorruptIndex("expected junction row".into()));
                }
                rows.push(JunctionRow {
                    contig: j[1].to_string(),
                    intron_start: parse(&j[2], "intron_start")?,
                    intron_end: parse(&j[3], "intron_end")?,
                    stats: crate::junctions::JunctionStats {
                        unique_reads: parse(&j[4], "unique_reads")?,
                        multi_reads: parse(&j[5], "multi_reads")?,
                        max_overhang: parse(&j[6], "max_overhang")?,
                        class: splice_class_from_name(&j[7])?,
                    },
                });
            }
            ckpt.junctions = Some(rows);
        }
        ckpt.validate()?;
        Ok(ckpt)
    }
}

/// Stable snake_case names for [`SpliceClass`] in the serialized form.
fn splice_class_name(c: SpliceClass) -> &'static str {
    match c {
        SpliceClass::Annotated => "annotated",
        SpliceClass::Canonical => "canonical",
        SpliceClass::NonCanonical => "non_canonical",
    }
}

fn splice_class_from_name(name: &str) -> Result<SpliceClass, StarError> {
    match name {
        "annotated" => Ok(SpliceClass::Annotated),
        "canonical" => Ok(SpliceClass::Canonical),
        "non_canonical" => Ok(SpliceClass::NonCanonical),
        other => Err(StarError::CorruptIndex(format!("unknown splice class {other:?}"))),
    }
}

/// FNV-1a over the serialized body.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fields(line: Option<&str>, want: usize, what: &str) -> Result<Vec<String>, StarError> {
    let line =
        line.ok_or_else(|| StarError::CorruptIndex(format!("checkpoint truncated at {what}")))?;
    let parts: Vec<String> = line.split('\t').map(str::to_string).collect();
    if parts.len() != want {
        return Err(StarError::CorruptIndex(format!(
            "checkpoint {what} line has {} fields, expected {want}",
            parts.len()
        )));
    }
    Ok(parts)
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, StarError> {
    s.parse().map_err(|_| StarError::CorruptIndex(format!("unparseable {what}: {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexParams, StarIndex};
    use crate::params::AlignParams;
    use crate::progress::ProgressSnapshot;
    use crate::runner::{CancelToken, MonitorVerdict, RunConfig, Runner};
    use crate::sam;
    use genomics::annotation::AnnotationParams;
    use genomics::{
        Annotation, EnsemblGenerator, EnsemblParams, FastqRecord, LibraryType, ReadSimulator,
        Release, SimulatorParams,
    };

    fn setup() -> (StarIndex, Annotation, Vec<FastqRecord>) {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = g.generate(Release::R111);
        let ann = Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap();
        let idx = StarIndex::build(&asm, &ann, &IndexParams::default()).unwrap();
        let reads: Vec<FastqRecord> =
            ReadSimulator::new(&asm, &ann, SimulatorParams::for_library(LibraryType::BulkPolyA), 11)
                .unwrap()
                .simulate(1500, "SRRCKPT")
                .into_iter()
                .map(|r| r.fastq)
                .collect();
        (idx, ann, reads)
    }

    fn full_config() -> RunConfig {
        RunConfig {
            batch_size: 250,
            quant: true,
            collect_junctions: true,
            record_alignments: true,
            ..RunConfig::default()
        }
    }

    /// The tentpole differential proof: cancel mid-run, checkpoint, resume, and
    /// get byte-identical SAM / quant / SJ / Log.final output versus a run that
    /// was never interrupted.
    #[test]
    fn checkpoint_resume_is_bit_identical_to_an_uninterrupted_run() {
        let (idx, ann, reads) = setup();
        let runner = Runner::new(&idx, AlignParams::default(), full_config()).unwrap();

        let baseline = runner.run(&reads, Some(&ann), None, None).unwrap();

        // Interrupted attempt: the monitor pulls the cancel token once 500 reads
        // are in — exactly how the cloud worker reacts to a spot notice — and
        // cancellation lands at the next batch boundary.
        let token = CancelToken::new();
        let trip = token.clone();
        let monitor = move |s: &ProgressSnapshot| {
            if s.processed >= 500 {
                trip.cancel();
            }
            MonitorVerdict::Continue
        };
        let cancelled = runner.run(&reads, Some(&ann), Some(&monitor), Some(&token)).unwrap();
        assert_eq!(cancelled.status, crate::runner::RunStatus::Cancelled { processed_reads: 500 });

        // Checkpoint survives a serialization round trip byte-for-byte.
        let ckpt = AlignCheckpoint::from_cancelled(&cancelled).unwrap();
        let bytes = ckpt.to_bytes();
        assert_eq!(bytes, ckpt.to_bytes(), "serialization is deterministic");
        let restored = AlignCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(restored, ckpt);

        let resumed = runner.run_resumed(&reads, Some(&ann), &restored, None, None).unwrap();
        assert_eq!(resumed.status, crate::runner::RunStatus::Completed);

        // Log.final: canonical text (wall-clock rows excluded) is identical.
        assert_eq!(
            resumed.final_log.canonical_text(),
            baseline.final_log.canonical_text(),
            "Log.final must match"
        );
        // Quant: ReadsPerGene.out.tab is byte-identical.
        assert_eq!(
            resumed.gene_counts.as_ref().unwrap().to_tsv(),
            baseline.gene_counts.as_ref().unwrap().to_tsv(),
            "quant table must match"
        );
        // Junctions: SJ.out.tab is byte-identical.
        assert_eq!(
            crate::junctions::to_sj_tab(resumed.junctions.as_deref().unwrap()),
            crate::junctions::to_sj_tab(baseline.junctions.as_deref().unwrap()),
            "SJ table must match"
        );
        // SAM: the cancelled attempt's shard plus the resumed shard concatenate
        // to exactly the uninterrupted run's body.
        let shard_a = sam::sam_body(&reads, cancelled.alignments.as_deref().unwrap()).unwrap();
        let shard_b = sam::sam_body(&reads, resumed.alignments.as_deref().unwrap()).unwrap();
        let whole = sam::sam_body(&reads, baseline.alignments.as_deref().unwrap()).unwrap();
        assert_eq!(format!("{shard_a}{shard_b}"), whole, "SAM shards must concatenate exactly");
    }

    #[test]
    fn tampered_or_truncated_blobs_are_rejected() {
        let ckpt = AlignCheckpoint {
            reads_processed: 4,
            unique: 2,
            multi: 1,
            too_many: 0,
            unmapped: 1,
            gene_counts: None,
            junctions: None,
        };
        let bytes = ckpt.to_bytes();
        assert_eq!(AlignCheckpoint::from_bytes(&bytes).unwrap(), ckpt);

        // Flip a digit in the body: checksum catches it.
        let mut bad = bytes.clone();
        let pos = bad.iter().position(|&b| b == b'4').unwrap();
        bad[pos] = b'5';
        assert!(AlignCheckpoint::from_bytes(&bad).is_err(), "tampering must be detected");

        // Truncation loses the trailer.
        assert!(AlignCheckpoint::from_bytes(&bytes[..bytes.len() / 2]).is_err());

        // Wrong version is refused even with a valid checksum.
        let body = String::from_utf8(bytes[..bytes.len() - 21].to_vec()).unwrap();
        let future = body.replace("star-ckpt\t1", "star-ckpt\t9");
        let mut blob = future.into_bytes();
        let sum = fnv1a(&blob);
        blob.extend_from_slice(format!("sum\t{sum:016x}\n").as_bytes());
        let err = AlignCheckpoint::from_bytes(&blob).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn inconsistent_tallies_fail_validation() {
        let ckpt = AlignCheckpoint {
            reads_processed: 10,
            unique: 2,
            multi: 1,
            too_many: 0,
            unmapped: 1,
            gene_counts: None,
            junctions: None,
        };
        assert!(ckpt.validate().is_err());
        assert!(AlignCheckpoint::from_bytes(&ckpt.to_bytes()).is_err());
    }

    #[test]
    fn only_cancelled_runs_yield_checkpoints() {
        let (idx, ann, reads) = setup();
        let runner = Runner::new(&idx, AlignParams::default(), full_config()).unwrap();
        let done = runner.run(&reads[..250], Some(&ann), None, None).unwrap();
        assert_eq!(done.status, crate::runner::RunStatus::Completed);
        assert!(AlignCheckpoint::from_cancelled(&done).is_none());
    }

    #[test]
    fn resume_validation_rejects_mismatched_shapes() {
        let (idx, ann, reads) = setup();
        let runner = Runner::new(&idx, AlignParams::default(), full_config()).unwrap();

        // Offset beyond the input.
        let beyond = AlignCheckpoint {
            reads_processed: reads.len() as u64 + 1,
            unique: reads.len() as u64 + 1,
            multi: 0,
            too_many: 0,
            unmapped: 0,
            gene_counts: None,
            junctions: None,
        };
        assert!(runner.run_resumed(&reads, Some(&ann), &beyond, None, None).is_err());

        // Quant enabled but the checkpoint carries no partial counts.
        let quantless = AlignCheckpoint {
            reads_processed: 0,
            unique: 0,
            multi: 0,
            too_many: 0,
            unmapped: 0,
            gene_counts: None,
            junctions: None,
        };
        assert!(runner.run_resumed(&reads, Some(&ann), &quantless, None, None).is_err());
    }

    #[test]
    fn empty_checkpoint_resume_equals_a_fresh_run() {
        let (idx, ann, reads) = setup();
        let runner = Runner::new(&idx, AlignParams::default(), full_config()).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let never_started = runner.run(&reads, Some(&ann), None, Some(&token)).unwrap();
        let ckpt = AlignCheckpoint::from_cancelled(&never_started).unwrap();
        assert_eq!(ckpt.reads_processed, 0);
        let resumed = runner.run_resumed(&reads, Some(&ann), &ckpt, None, None).unwrap();
        let fresh = runner.run(&reads, Some(&ann), None, None).unwrap();
        assert_eq!(resumed.final_log.canonical_text(), fresh.final_log.canonical_text());
        assert_eq!(resumed.gene_counts, fresh.gene_counts);
    }
}
