//! Reusable per-thread alignment scratch.
//!
//! Steady-state per-read alignment must perform zero heap allocations: every
//! buffer the seed → stitch → extend pipeline needs lives in an [`AlignScratch`]
//! that is reused across reads. Vectors are cleared, never dropped, so their
//! capacity (grown over the first few reads) is retained; pooled objects with
//! interior vectors ([`ChainPool`], [`CandSet`]) keep dead slots alive beyond
//! their live length for the same reason.
//!
//! Each OS thread owns one scratch through a thread-local ([`with_thread_scratch`]),
//! so a [`crate::runner::Runner`]'s pool workers amortize their buffers across
//! batches for the lifetime of the pool. Callers that want explicit control (e.g.
//! allocation-counting tests) can hold their own [`AlignScratch`] and use
//! [`crate::align::Aligner::align_seq_with`].

use std::cell::RefCell;

use crate::extend::WindowAlignment;
use crate::genome::Packed2;
use crate::pair::CandidatePair;
use crate::seed::{Seed, SeedProbeScratch};
use crate::stitch::Chain;

/// All buffers the per-read alignment hot path reuses.
#[derive(Debug, Default)]
pub struct AlignScratch {
    pub(crate) core: ScratchCore,
    pub(crate) cands: CandSet,
    /// Second mate's candidate set (paired-end alignment).
    pub(crate) cands2: CandSet,
    /// Candidate pairings (paired-end alignment).
    pub(crate) pairs: Vec<CandidatePair>,
}

impl AlignScratch {
    /// A fresh scratch; buffers grow on first use and are then retained.
    pub fn new() -> AlignScratch {
        AlignScratch::default()
    }
}

/// Buffers consumed within one `candidates` pass (shared by both mates).
#[derive(Debug, Default)]
pub(crate) struct ScratchCore {
    /// Reverse-complement codes of the read being aligned.
    pub(crate) rc: Vec<u8>,
    /// 2-bit packed forward read (word buffer reused across reads).
    pub(crate) fwd: Packed2,
    /// 2-bit packed reverse-complement read.
    pub(crate) rcp: Packed2,
    /// Seed list for the current orientation.
    pub(crate) seeds: Vec<Seed>,
    /// Batched seed-occurrence resolution buffers.
    pub(crate) probe: SeedProbeScratch,
    pub(crate) stitch: StitchScratch,
    pub(crate) chains: ChainPool,
}

/// Working vectors for windowing + chain DP.
#[derive(Debug, Default)]
pub(crate) struct StitchScratch {
    /// Seeds re-sorted by genome position for window splitting.
    pub(crate) by_gpos: Vec<Seed>,
    /// Current window's seeds, sorted by (read_pos, gpos) for the DP.
    pub(crate) win: Vec<Seed>,
    pub(crate) best_cov: Vec<u32>,
    /// DP back-pointers; `u32::MAX` = chain start.
    pub(crate) prev: Vec<u32>,
    pub(crate) used_as_prev: Vec<bool>,
}

/// Pool of chains: `chains[..len]` are live; dead slots keep their seed-vector
/// capacity so re-acquiring them allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct ChainPool {
    pub(crate) chains: Vec<Chain>,
    pub(crate) len: usize,
}

impl ChainPool {
    pub(crate) fn clear(&mut self) {
        self.len = 0;
    }

    /// Acquire the next slot with an emptied (capacity-retaining) seed vector.
    pub(crate) fn acquire(&mut self) -> &mut Chain {
        if self.len == self.chains.len() {
            self.chains.push(Chain { seeds: Vec::new() });
        }
        let c = &mut self.chains[self.len];
        self.len += 1;
        c.seeds.clear();
        c
    }

    pub(crate) fn live(&self) -> &[Chain] {
        &self.chains[..self.len]
    }
}

/// Pooled candidate set: window alignments plus the deduplicated access order.
///
/// `pool[..len]` hold the candidates of the current read; `order` lists the
/// surviving (deduplicated) candidates as indexes into `pool`, sorted by
/// `(strand, gstart, score desc)`. Keeping an index vector instead of sorting
/// the pool itself lets dead entries retain their CIGAR/junction capacity.
#[derive(Debug, Default)]
pub(crate) struct CandSet {
    pub(crate) pool: Vec<(bool, WindowAlignment)>,
    pub(crate) len: usize,
    pub(crate) order: Vec<u32>,
}

impl CandSet {
    pub(crate) fn clear(&mut self) {
        self.len = 0;
        self.order.clear();
    }

    /// Slot for the extender to fill in place; call [`CandSet::commit`] to keep it.
    pub(crate) fn slot(&mut self, is_rc: bool) -> &mut WindowAlignment {
        if self.len == self.pool.len() {
            self.pool.push((false, WindowAlignment::empty()));
        }
        let entry = &mut self.pool[self.len];
        entry.0 = is_rc;
        entry.1.reset();
        &mut entry.1
    }

    pub(crate) fn commit(&mut self) {
        self.len += 1;
    }

    /// Sort by `(strand, gstart, score desc, insertion order)` and keep the first
    /// candidate per `(strand, gstart)` locus. The insertion-order tiebreak makes
    /// the unstable sort reproduce the previous stable-sort + keep-first-dedup
    /// result bit for bit.
    pub(crate) fn finalize(&mut self) {
        self.order.clear();
        self.order.extend(0..self.len as u32);
        let pool = &self.pool;
        self.order.sort_unstable_by_key(|&i| {
            let (rc, wa) = &pool[i as usize];
            (*rc, wa.gstart, std::cmp::Reverse(wa.score), i)
        });
        let mut kept = 0usize;
        for r in 0..self.order.len() {
            let i = self.order[r];
            let dup = kept > 0 && {
                let (prc, pwa) = &pool[self.order[kept - 1] as usize];
                let (rc, wa) = &pool[i as usize];
                *prc == *rc && pwa.gstart == wa.gstart
            };
            if !dup {
                self.order[kept] = i;
                kept += 1;
            }
        }
        self.order.truncate(kept);
    }

    pub(crate) fn len(&self) -> usize {
        self.order.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The `i`-th surviving candidate in sorted order.
    pub(crate) fn get(&self, i: usize) -> &(bool, WindowAlignment) {
        &self.pool[self.order[i] as usize]
    }

    /// Surviving candidates in sorted order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &(bool, WindowAlignment)> + '_ {
        self.order.iter().map(move |&i| &self.pool[i as usize])
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<AlignScratch> = RefCell::new(AlignScratch::new());
}

/// Run `f` with this thread's scratch. One scratch per OS thread: a runner's
/// rayon workers therefore keep their buffers warm across batches.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut AlignScratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_pool_retains_seed_capacity() {
        let mut pool = ChainPool::default();
        {
            let c = pool.acquire();
            for i in 0..64u32 {
                c.seeds.push(Seed { read_pos: i, gpos: i as u64, len: 1, interval_size: 1 });
            }
        }
        let cap = pool.chains[0].seeds.capacity();
        pool.clear();
        let c = pool.acquire();
        assert_eq!(c.seeds.len(), 0, "acquire hands out an emptied chain");
        assert_eq!(c.seeds.capacity(), cap, "capacity survives reuse");
    }

    #[test]
    fn cand_set_finalize_keeps_best_per_locus_in_insertion_order() {
        let mut set = CandSet::default();
        // Three candidates at the same locus with scores 5, 9, 9 and one elsewhere.
        for (gstart, score) in [(100u64, 5i32), (100, 9), (100, 9), (200, 7)] {
            let wa = set.slot(false);
            wa.gstart = gstart;
            wa.score = score;
            set.commit();
        }
        set.finalize();
        assert_eq!(set.len(), 2);
        // Winner at locus 100 is the *first inserted* of the score-9 ties (pool idx 1).
        assert_eq!(set.order[0], 1);
        assert_eq!(set.get(0).1.score, 9);
        assert_eq!(set.get(1).1.gstart, 200);
        // Reuse clears the order but keeps the pool slots.
        let pool_cap = set.pool.len();
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.pool.len(), pool_cap);
    }
}
