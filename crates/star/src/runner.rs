//! Multi-threaded alignment run driver (`--runThreadN` analog) with the cooperative
//! cancellation hook that early stopping plugs into.
//!
//! Reads are processed in batches; each batch is aligned in parallel on a shared
//! rayon pool (one per thread count, process-wide — repeated runs and two-pass mode
//! reuse threads and their warm per-thread scratch buffers instead of spawning new
//! ones), progress counters are updated, and a [`RunMonitor`] is consulted between
//! batches. A monitor that returns [`MonitorVerdict::Abort`] stops the run — exactly
//! how the paper's pipeline kills STAR when `Log.progress.out` shows a sub-threshold
//! mapping rate after the 10 % checkpoint.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use rayon::prelude::*;

use crate::align::{Aligner, AlignmentRecord, MapClass, PhaseWork};
use crate::checkpoint::AlignCheckpoint;
use crate::index::StarIndex;
use crate::junctions::{JunctionCollector, JunctionRow};
use crate::logs::FinalLog;
use crate::params::AlignParams;
use crate::progress::{ProgressSnapshot, ProgressStats};
use crate::quant::{GeneCounter, GeneCounts};
use crate::StarError;
use genomics::{Annotation, FastqRecord};

/// What a [`RunMonitor`] tells the runner after each batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorVerdict {
    /// Keep aligning.
    Continue,
    /// Abort the run (early stopping).
    Abort,
}

/// Observer consulted between batches with a fresh progress snapshot.
pub trait RunMonitor: Sync {
    /// Inspect progress; return [`MonitorVerdict::Abort`] to stop the run.
    fn on_progress(&self, snapshot: &ProgressSnapshot) -> MonitorVerdict;
}

/// Blanket impl so closures can be used as monitors.
impl<F> RunMonitor for F
where
    F: Fn(&ProgressSnapshot) -> MonitorVerdict + Sync,
{
    fn on_progress(&self, snapshot: &ProgressSnapshot) -> MonitorVerdict {
        self(snapshot)
    }
}

/// Shared cancellation flag (e.g. a spot-interruption notice in the cloud layer).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation (idempotent, thread-safe).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Run configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Worker threads (`--runThreadN`).
    pub threads: usize,
    /// Reads per batch between monitor checks.
    pub batch_size: usize,
    /// Count genes while mapping (`--quantMode GeneCounts`).
    pub quant: bool,
    /// Keep per-read alignment records (memory-heavy; tests/examples only).
    pub record_alignments: bool,
    /// Tally splice-junction usage (SJ.out.tab; required for two-pass mode).
    pub collect_junctions: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 4,
            batch_size: 2_000,
            quant: true,
            record_alignments: false,
            collect_junctions: false,
        }
    }
}

impl RunConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), StarError> {
        if self.threads == 0 {
            return Err(StarError::InvalidParams("threads must be positive".into()));
        }
        if self.batch_size == 0 {
            return Err(StarError::InvalidParams("batch_size must be positive".into()));
        }
        Ok(())
    }
}

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// All reads processed.
    Completed,
    /// A monitor aborted the run after `processed_reads`.
    EarlyStopped {
        /// Reads processed when the abort took effect.
        processed_reads: u64,
    },
    /// The cancel token fired (external interruption, e.g. spot reclaim).
    Cancelled {
        /// Reads processed when cancellation took effect.
        processed_reads: u64,
    },
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunOutput {
    /// Completion status.
    pub status: RunStatus,
    /// Final progress snapshot.
    pub final_snapshot: ProgressSnapshot,
    /// One snapshot per batch boundary (the `Log.progress.out` history).
    pub history: Vec<ProgressSnapshot>,
    /// `Log.final.out` summary.
    pub final_log: FinalLog,
    /// Gene counts when `quant` was enabled.
    pub gene_counts: Option<GeneCounts>,
    /// Sorted junction table when `collect_junctions` was enabled (SJ.out.tab).
    pub junctions: Option<Vec<JunctionRow>>,
    /// Per-read records when `record_alignments` was enabled (mapped reads only).
    pub alignments: Option<Vec<AlignmentRecord>>,
    /// Aggregate per-phase alignment work (seed/stitch/extend unit counts).
    pub phase_work: PhaseWork,
    /// Wall-clock seconds.
    pub wall_secs: f64,
}

impl RunOutput {
    /// Convenience: overall mapping rate in `[0,1]`.
    pub fn mapped_fraction(&self) -> f64 {
        self.final_snapshot.mapped_fraction()
    }
}

/// Process-wide rayon pool per thread count. Building a pool spawns OS threads —
/// doing that once per [`Runner`] (let alone per run) wastes startup time and
/// discards the per-thread alignment scratch the workers have warmed up; sharing
/// keeps both across runners, runs and two-pass re-alignment.
fn shared_pool(threads: usize) -> Result<Arc<rayon::ThreadPool>, StarError> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<rayon::ThreadPool>>>> = OnceLock::new();
    let mut pools =
        POOLS.get_or_init(|| Mutex::new(HashMap::new())).lock().expect("pool registry poisoned");
    if let Some(pool) = pools.get(&threads) {
        return Ok(Arc::clone(pool));
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| StarError::InvalidParams(format!("thread pool: {e}")))?;
    let pool = Arc::new(pool);
    pools.insert(threads, Arc::clone(&pool));
    Ok(pool)
}

/// The run driver, borrowing an index for its lifetime.
pub struct Runner<'i> {
    index: &'i StarIndex,
    align_params: AlignParams,
    config: RunConfig,
    pool: Arc<rayon::ThreadPool>,
}

impl<'i> Runner<'i> {
    /// Create a runner on the shared thread pool for `config.threads`.
    pub fn new(index: &'i StarIndex, align_params: AlignParams, config: RunConfig) -> Result<Runner<'i>, StarError> {
        align_params.validate()?;
        config.validate()?;
        let pool = shared_pool(config.threads)?;
        Ok(Runner { index, align_params, config, pool })
    }

    /// The configuration in use.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Align all `reads`, consulting `monitor` between batches and `cancel` at batch
    /// boundaries. `annotation` is required when `quant` is enabled.
    pub fn run(
        &self,
        reads: &[FastqRecord],
        annotation: Option<&Annotation>,
        monitor: Option<&dyn RunMonitor>,
        cancel: Option<&CancelToken>,
    ) -> Result<RunOutput, StarError> {
        self.run_impl(reads, annotation, monitor, cancel, None)
    }

    /// Resume a run from a checkpoint taken at a cancellation: skip the
    /// already-aligned prefix, seed progress/quant/junction state from the
    /// checkpoint, and align only `reads[checkpoint.reads_processed..]`.
    ///
    /// The checkpoint must structurally match the configuration: partial gene
    /// counts are required exactly when `quant` is on (and must come from the
    /// same annotation), a partial junction table exactly when
    /// `collect_junctions` is on. `reads` must be the same input the
    /// interrupted run saw — per-read alignment is pure, so offset plus tallies
    /// fully determine the final output, and the resumed run's SAM/quant/
    /// `Log.final` are bit-identical to an uninterrupted run's. Kept alignment
    /// records (`record_alignments`) cover only the resumed tail: together with
    /// the interrupted attempt's records they form the complete shard set.
    pub fn run_resumed(
        &self,
        reads: &[FastqRecord],
        annotation: Option<&Annotation>,
        checkpoint: &AlignCheckpoint,
        monitor: Option<&dyn RunMonitor>,
        cancel: Option<&CancelToken>,
    ) -> Result<RunOutput, StarError> {
        checkpoint.validate()?;
        if checkpoint.reads_processed as usize > reads.len() {
            return Err(StarError::InvalidParams(format!(
                "checkpoint offset {} exceeds input of {} reads",
                checkpoint.reads_processed,
                reads.len()
            )));
        }
        if self.config.quant != checkpoint.gene_counts.is_some() {
            return Err(StarError::InvalidParams(
                "checkpoint quant state does not match the run configuration".into(),
            ));
        }
        if self.config.collect_junctions != checkpoint.junctions.is_some() {
            return Err(StarError::InvalidParams(
                "checkpoint junction state does not match the run configuration".into(),
            ));
        }
        self.run_impl(reads, annotation, monitor, cancel, Some(checkpoint))
    }

    fn run_impl(
        &self,
        reads: &[FastqRecord],
        annotation: Option<&Annotation>,
        monitor: Option<&dyn RunMonitor>,
        cancel: Option<&CancelToken>,
        resume: Option<&AlignCheckpoint>,
    ) -> Result<RunOutput, StarError> {
        if self.config.quant && annotation.is_none() {
            return Err(StarError::InvalidParams("quant mode requires an annotation".into()));
        }
        let started = Instant::now();
        let skip = resume.map_or(0, |c| c.reads_processed as usize);
        let progress = match resume {
            Some(c) => ProgressStats::with_initial(
                reads.len() as u64,
                c.reads_processed,
                c.unique,
                c.multi,
                c.too_many,
                c.unmapped,
            ),
            None => ProgressStats::new(reads.len() as u64),
        };
        let aligner = Aligner::new(self.index, self.align_params.clone());
        let mut counter = match (
            annotation.filter(|_| self.config.quant),
            resume.and_then(|c| c.gene_counts.as_ref()),
        ) {
            (Some(ann), Some(saved)) => Some(GeneCounter::restore(ann, saved)?),
            (Some(ann), None) => Some(GeneCounter::new(ann)),
            (None, _) => None,
        };
        let mut junction_collector =
            self.config.collect_junctions.then(JunctionCollector::new);
        if let (Some(collector), Some(rows)) =
            (junction_collector.as_mut(), resume.and_then(|c| c.junctions.as_deref()))
        {
            collector.absorb_rows(rows);
        }
        let mut history = Vec::new();
        let mut kept: Vec<AlignmentRecord> = Vec::new();
        let mut phase_work = PhaseWork::default();
        let mut status = RunStatus::Completed;
        // Records are only materialized when a downstream consumer exists; pure
        // mapping-rate runs skip building them (and every allocation they imply).
        let want_record =
            counter.is_some() || junction_collector.is_some() || self.config.record_alignments;

        'batches: for batch in reads[skip..].chunks(self.config.batch_size) {
            if let Some(tok) = cancel {
                if tok.is_cancelled() {
                    status = RunStatus::Cancelled { processed_reads: progress.snapshot().processed };
                    break 'batches;
                }
            }
            // Parallel alignment of the batch on the shared pool.
            let outcomes: Vec<(MapClass, Option<AlignmentRecord>, PhaseWork)> =
                self.pool.install(|| {
                    batch
                        .par_iter()
                        .map(|read| {
                            let out = aligner.align_read_lean(read, want_record);
                            (out.class, out.primary, out.work)
                        })
                        .collect()
                });
            // Sequential accounting (cheap relative to alignment). Read ids are
            // attached here, and only to records that are actually kept.
            for ((class, primary, work), read) in outcomes.into_iter().zip(batch) {
                progress.record(class);
                phase_work.add(&work);
                if let Some(c) = counter.as_mut() {
                    c.record(class, primary.as_ref());
                }
                if let Some(j) = junction_collector.as_mut() {
                    j.record(class, primary.as_ref());
                }
                if self.config.record_alignments {
                    if let Some(mut rec) = primary {
                        if class.is_mapped() {
                            rec.read_id = read.id.clone();
                            kept.push(rec);
                        }
                    }
                }
            }
            let snap = progress.snapshot();
            history.push(snap);
            if let Some(m) = monitor {
                if m.on_progress(&snap) == MonitorVerdict::Abort {
                    status = RunStatus::EarlyStopped { processed_reads: snap.processed };
                    break 'batches;
                }
            }
        }

        let final_snapshot = progress.snapshot();
        Ok(RunOutput {
            status,
            final_log: FinalLog::from_snapshot(&final_snapshot),
            final_snapshot,
            history,
            gene_counts: counter.map(GeneCounter::finish),
            junctions: junction_collector.map(JunctionCollector::finish),
            alignments: if self.config.record_alignments { Some(kept) } else { None },
            phase_work,
            wall_secs: started.elapsed().as_secs_f64(),
        })
    }

    /// Align read *pairs* (fragments are the progress/counting unit, matching how
    /// STAR reports paired libraries). Same batching, monitoring and cancellation
    /// semantics as [`Runner::run`].
    pub fn run_pairs(
        &self,
        pairs: &[(FastqRecord, FastqRecord)],
        annotation: Option<&Annotation>,
        monitor: Option<&dyn RunMonitor>,
        cancel: Option<&CancelToken>,
    ) -> Result<RunOutput, StarError> {
        if self.config.quant && annotation.is_none() {
            return Err(StarError::InvalidParams("quant mode requires an annotation".into()));
        }
        let started = Instant::now();
        let progress = ProgressStats::new(pairs.len() as u64);
        let aligner = Aligner::new(self.index, self.align_params.clone());
        let mut counter = annotation.filter(|_| self.config.quant).map(GeneCounter::new);
        let mut junction_collector = self.config.collect_junctions.then(JunctionCollector::new);
        let mut history = Vec::new();
        let mut kept: Vec<AlignmentRecord> = Vec::new();
        let mut phase_work = PhaseWork::default();
        let mut status = RunStatus::Completed;
        let want_record =
            counter.is_some() || junction_collector.is_some() || self.config.record_alignments;

        'batches: for batch in pairs.chunks(self.config.batch_size) {
            if let Some(tok) = cancel {
                if tok.is_cancelled() {
                    status = RunStatus::Cancelled { processed_reads: progress.snapshot().processed };
                    break 'batches;
                }
            }
            let outcomes: Vec<crate::pair::PairOutcome> = self.pool.install(|| {
                batch
                    .par_iter()
                    .map(|(r1, r2)| {
                        aligner.align_pair_lean(r1, r2, &crate::pair::PairParams::default(), want_record)
                    })
                    .collect()
            });
            for (out, (r1, r2)) in outcomes.into_iter().zip(batch) {
                progress.record(out.class);
                phase_work.add(&out.work);
                if let Some(c) = counter.as_mut() {
                    c.record_pair(out.class, out.rec1.as_ref(), out.rec2.as_ref());
                }
                if let Some(j) = junction_collector.as_mut() {
                    j.record(out.class, out.rec1.as_ref());
                    j.record(out.class, out.rec2.as_ref());
                }
                if self.config.record_alignments && out.class.is_mapped() {
                    if let Some(mut rec) = out.rec1 {
                        rec.read_id = r1.id.clone();
                        kept.push(rec);
                    }
                    if let Some(mut rec) = out.rec2 {
                        rec.read_id = r2.id.clone();
                        kept.push(rec);
                    }
                }
            }
            let snap = progress.snapshot();
            history.push(snap);
            if let Some(m) = monitor {
                if m.on_progress(&snap) == MonitorVerdict::Abort {
                    status = RunStatus::EarlyStopped { processed_reads: snap.processed };
                    break 'batches;
                }
            }
        }

        let final_snapshot = progress.snapshot();
        Ok(RunOutput {
            status,
            final_log: FinalLog::from_snapshot(&final_snapshot),
            final_snapshot,
            history,
            gene_counts: counter.map(GeneCounter::finish),
            junctions: junction_collector.map(JunctionCollector::finish),
            alignments: if self.config.record_alignments { Some(kept) } else { None },
            phase_work,
            wall_secs: started.elapsed().as_secs_f64(),
        })
    }

    /// `--twopassMode Basic`: align once collecting junctions, insert novel
    /// junctions supported by at least `min_unique_support` uniquely-mapped reads
    /// into the sjdb, and re-align everything against the augmented index.
    ///
    /// Returns the second-pass output plus the number of junctions inserted. The
    /// paper's pipeline runs single-pass (its data are known libraries), but 2-pass
    /// is the standard STAR mode for novel-junction discovery, so the reproduction
    /// ships it.
    pub fn run_two_pass(
        &self,
        reads: &[FastqRecord],
        annotation: Option<&Annotation>,
        min_unique_support: u64,
    ) -> Result<(RunOutput, usize), StarError> {
        let mut first_config = self.config.clone();
        first_config.collect_junctions = true;
        first_config.quant = false;
        first_config.record_alignments = false;
        let first_runner = Runner::new(self.index, self.align_params.clone(), first_config)?;
        let first = first_runner.run(reads, None, None, None)?;

        let genome = self.index.genome();
        let novel: Vec<(u64, u64)> = first
            .junctions
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .filter(|row| row.stats.unique_reads >= min_unique_support)
            .filter_map(|row| {
                let span = genome.span_by_name(&row.contig)?;
                let (s, e) = (span.start + row.intron_start, span.start + row.intron_end);
                (!self.index.sjdb().contains(s, e)).then_some((s, e))
            })
            .collect();
        let inserted = novel.len();
        if inserted == 0 {
            // Nothing new: the second pass would be identical; run with the caller's
            // own config for the requested outputs.
            let mut output = self.run(reads, annotation, None, None)?;
            output.phase_work.add(&first.phase_work);
            return Ok((output, 0));
        }
        let augmented = self.index.with_extra_junctions(novel);
        let second_runner = Runner::new(&augmented, self.align_params.clone(), self.config.clone())?;
        let mut output = second_runner.run(reads, annotation, None, None)?;
        output.phase_work.add(&first.phase_work);
        Ok((output, inserted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexParams, StarIndex};
    use genomics::annotation::AnnotationParams;
    use genomics::{
        Annotation, EnsemblGenerator, EnsemblParams, LibraryType, ReadSimulator, Release,
        SimulatorParams,
    };

    fn setup() -> (StarIndex, Annotation, Vec<FastqRecord>, Vec<FastqRecord>) {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = g.generate(Release::R111);
        let ann = Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap();
        let idx = StarIndex::build(&asm, &ann, &IndexParams::default()).unwrap();
        let bulk: Vec<FastqRecord> =
            ReadSimulator::new(&asm, &ann, SimulatorParams::for_library(LibraryType::BulkPolyA), 1)
                .unwrap()
                .simulate(1500, "SRRBULK")
                .into_iter()
                .map(|r| r.fastq)
                .collect();
        let sc: Vec<FastqRecord> = ReadSimulator::new(
            &asm,
            &ann,
            SimulatorParams::for_library(LibraryType::SingleCell3Prime),
            2,
        )
        .unwrap()
        .simulate(1500, "SRRSC")
        .into_iter()
        .map(|r| r.fastq)
        .collect();
        (idx, ann, bulk, sc)
    }

    #[test]
    fn bulk_library_maps_high_single_cell_maps_low() {
        let (idx, ann, bulk, sc) = setup();
        let runner = Runner::new(&idx, AlignParams::default(), RunConfig::default()).unwrap();
        let out_bulk = runner.run(&bulk, Some(&ann), None, None).unwrap();
        let out_sc = runner.run(&sc, Some(&ann), None, None).unwrap();
        assert_eq!(out_bulk.status, RunStatus::Completed);
        let rb = out_bulk.mapped_fraction();
        let rs = out_sc.mapped_fraction();
        assert!(rb > 0.75, "bulk mapping rate {rb}");
        assert!(rs < 0.30, "single-cell mapping rate {rs} must sit below the paper's threshold");
    }

    #[test]
    fn monitor_can_abort_after_checkpoint() {
        let (idx, ann, _, sc) = setup();
        let mut cfg = RunConfig::default();
        cfg.batch_size = 100;
        let runner = Runner::new(&idx, AlignParams::default(), cfg).unwrap();
        // The paper's policy: after ≥10% of reads, abort when mapped% < 30%.
        let monitor = |s: &ProgressSnapshot| {
            if s.processed_fraction() >= 0.10 && s.mapped_fraction() < 0.30 {
                MonitorVerdict::Abort
            } else {
                MonitorVerdict::Continue
            }
        };
        let out = runner.run(&sc, Some(&ann), Some(&monitor), None).unwrap();
        match out.status {
            RunStatus::EarlyStopped { processed_reads } => {
                assert!(processed_reads >= 150, "checkpoint honored");
                assert!(processed_reads < sc.len() as u64, "must stop before the end");
            }
            other => panic!("expected early stop, got {other:?}"),
        }
        assert!(out.final_snapshot.processed < sc.len() as u64);
    }

    #[test]
    fn cancel_token_stops_the_run() {
        let (idx, ann, bulk, _) = setup();
        let mut cfg = RunConfig::default();
        cfg.batch_size = 200;
        let runner = Runner::new(&idx, AlignParams::default(), cfg).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let out = runner.run(&bulk, Some(&ann), None, Some(&token)).unwrap();
        match out.status {
            RunStatus::Cancelled { processed_reads } => assert_eq!(processed_reads, 0),
            other => panic!("expected cancelled, got {other:?}"),
        }
    }

    #[test]
    fn gene_counts_cover_unique_reads() {
        let (idx, ann, bulk, _) = setup();
        let runner = Runner::new(&idx, AlignParams::default(), RunConfig::default()).unwrap();
        let out = runner.run(&bulk, Some(&ann), None, None).unwrap();
        let gc = out.gene_counts.unwrap();
        let counted = gc.total_counted(crate::quant::Strandedness::Unstranded)
            + gc.n_no_feature[0]
            + gc.n_ambiguous[0]
            + gc.n_multimapping
            + gc.n_unmapped;
        assert_eq!(counted, bulk.len() as u64, "every read lands in exactly one bucket");
        assert!(
            gc.total_counted(crate::quant::Strandedness::Unstranded) > 0,
            "exonic bulk reads must produce gene counts"
        );
    }

    #[test]
    fn quant_without_annotation_is_rejected() {
        let (idx, _, bulk, _) = setup();
        let runner = Runner::new(&idx, AlignParams::default(), RunConfig::default()).unwrap();
        assert!(runner.run(&bulk, None, None, None).is_err());
    }

    #[test]
    fn record_alignments_keeps_mapped_reads_only() {
        let (idx, ann, bulk, _) = setup();
        let mut cfg = RunConfig::default();
        cfg.record_alignments = true;
        let runner = Runner::new(&idx, AlignParams::default(), cfg).unwrap();
        let out = runner.run(&bulk, Some(&ann), None, None).unwrap();
        let alns = out.alignments.unwrap();
        let mapped = out.final_snapshot.unique + out.final_snapshot.multi;
        assert_eq!(alns.len() as u64, mapped);
        assert!(alns.iter().all(|a| !a.read_id.is_empty()));
    }

    #[test]
    fn thread_counts_give_identical_statistics() {
        let (idx, ann, bulk, _) = setup();
        let mut results = Vec::new();
        for threads in [1, 4] {
            let cfg = RunConfig { threads, ..RunConfig::default() };
            let runner = Runner::new(&idx, AlignParams::default(), cfg).unwrap();
            let out = runner.run(&bulk, Some(&ann), None, None).unwrap();
            results.push((
                out.final_snapshot.unique,
                out.final_snapshot.multi,
                out.final_snapshot.unmapped,
                out.gene_counts.unwrap(),
            ));
        }
        assert_eq!(results[0].0, results[1].0);
        assert_eq!(results[0].1, results[1].1);
        assert_eq!(results[0].2, results[1].2);
        assert_eq!(results[0].3, results[1].3, "gene counts must be thread-count invariant");
    }

    #[test]
    fn history_records_batch_boundaries() {
        let (idx, ann, bulk, _) = setup();
        let cfg = RunConfig { batch_size: 500, ..RunConfig::default() };
        let runner = Runner::new(&idx, AlignParams::default(), cfg).unwrap();
        let out = runner.run(&bulk, Some(&ann), None, None).unwrap();
        assert_eq!(out.history.len(), 3); // 1500 reads / 500
        assert_eq!(out.history[0].processed, 500);
        assert_eq!(out.history[2].processed, 1500);
        assert!(out.history.windows(2).all(|w| w[0].processed < w[1].processed));
    }

    #[test]
    fn paired_run_counts_fragments() {
        let g = genomics::EnsemblGenerator::new(genomics::EnsemblParams::tiny()).unwrap();
        let asm = g.generate(genomics::Release::R111);
        let ann = Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap();
        let idx = StarIndex::build(&asm, &ann, &IndexParams::default()).unwrap();
        let pairs: Vec<(FastqRecord, FastqRecord)> = ReadSimulator::new(
            &asm,
            &ann,
            SimulatorParams::for_library(LibraryType::BulkPolyA),
            91,
        )
        .unwrap()
        .simulate_pairs(800, "PR")
        .into_iter()
        .map(|p| (p.r1, p.r2))
        .collect();
        let runner = Runner::new(&idx, AlignParams::default(), RunConfig::default()).unwrap();
        let out = runner.run_pairs(&pairs, Some(&ann), None, None).unwrap();
        assert_eq!(out.final_snapshot.processed, 800, "fragments are the unit");
        assert!(out.mapped_fraction() > 0.7, "paired mapping rate {}", out.mapped_fraction());
        let gc = out.gene_counts.unwrap();
        let accounted = gc.total_counted(crate::quant::Strandedness::Unstranded)
            + gc.n_no_feature[0]
            + gc.n_ambiguous[0]
            + gc.n_multimapping
            + gc.n_unmapped;
        assert_eq!(accounted, 800, "every fragment lands in exactly one bucket");
        assert!(gc.total_counted(crate::quant::Strandedness::Unstranded) > 0);
    }

    #[test]
    fn paired_single_cell_can_be_early_stopped() {
        let g = genomics::EnsemblGenerator::new(genomics::EnsemblParams::tiny()).unwrap();
        let asm = g.generate(genomics::Release::R111);
        let ann = Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap();
        let idx = StarIndex::build(&asm, &ann, &IndexParams::default()).unwrap();
        let pairs: Vec<(FastqRecord, FastqRecord)> = ReadSimulator::new(
            &asm,
            &ann,
            SimulatorParams::for_library(LibraryType::SingleCell3Prime),
            92,
        )
        .unwrap()
        .simulate_pairs(1_200, "PS")
        .into_iter()
        .map(|p| (p.r1, p.r2))
        .collect();
        let cfg = RunConfig { batch_size: 100, quant: false, ..RunConfig::default() };
        let runner = Runner::new(&idx, AlignParams::default(), cfg).unwrap();
        let monitor = |s: &ProgressSnapshot| {
            if s.processed_fraction() >= 0.10 && s.mapped_fraction() < 0.30 {
                MonitorVerdict::Abort
            } else {
                MonitorVerdict::Continue
            }
        };
        let out = runner.run_pairs(&pairs, None, Some(&monitor), None).unwrap();
        assert!(matches!(out.status, RunStatus::EarlyStopped { .. }));
        assert!(out.final_snapshot.processed < 1_200);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (idx, _, _, _) = setup();
        let cfg = RunConfig { threads: 0, ..RunConfig::default() };
        assert!(Runner::new(&idx, AlignParams::default(), cfg).is_err());
        let cfg = RunConfig { batch_size: 0, ..RunConfig::default() };
        assert!(Runner::new(&idx, AlignParams::default(), cfg).is_err());
    }
}
