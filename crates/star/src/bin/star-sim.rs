//! `star-sim` — a STAR-style command-line interface over the aligner library.
//!
//! ```text
//! # Generate demo inputs (a synthetic assembly + annotation + reads):
//! star-sim simulate --outDir demo/ [--release 111] [--reads 20000]
//!
//! # Build an index ("STAR --runMode genomeGenerate"):
//! star-sim genomeGenerate --genomeFastaFiles demo/genome.fa \
//!     --sjdbGTFfile demo/annotation.gtf --genomeDir demo/index
//!
//! # Align ("STAR"), writing Aligned.out.sam, Log.final.out, Log.progress.out,
//! # ReadsPerGene.out.tab and SJ.out.tab:
//! star-sim alignReads --genomeDir demo/index --readFilesIn demo/reads.fastq \
//!     --outFileNamePrefix demo/out_ --runThreadN 4 --quantMode GeneCounts \
//!     [--twopassMode Basic]
//!
//! # Paired-end: give both mate files comma-separated:
//! star-sim alignReads --genomeDir demo/index --readFilesIn r1.fastq,r2.fastq ...
//! ```
//!
//! Flag names follow real STAR where a counterpart exists.

use genomics::annotation::AnnotationParams;
use genomics::{Annotation, Assembly, AssemblyKind, Contig, ContigKind};
use star_aligner::index::{IndexParams, StarIndex};
use star_aligner::junctions::to_sj_tab;
use star_aligner::runner::{RunConfig, Runner};
use star_aligner::sam::{sam_header, sam_record};
use star_aligner::AlignParams;
use std::collections::HashMap;
use std::fs;
use std::io::{BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((mode, rest)) = args.split_first() else {
        eprintln!("usage: star-sim <simulate|genomeGenerate|alignReads> [flags]");
        return ExitCode::from(2);
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("star-sim: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match mode.as_str() {
        "simulate" => cmd_simulate(&flags),
        "genomeGenerate" => cmd_genome_generate(&flags),
        "alignReads" => cmd_align_reads(&flags),
        other => Err(format!("unknown mode {other:?}; use simulate|genomeGenerate|alignReads")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("star-sim: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--flag value` pairs (every star-sim flag takes exactly one value).
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {key:?}"))?;
        let value = it.next().ok_or_else(|| format!("--{key} requires a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags.get(key).map(String::as_str).ok_or_else(|| format!("missing required flag --{key}"))
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let out_dir = PathBuf::from(required(flags, "outDir")?);
    let release = match flags.get("release").map(String::as_str).unwrap_or("111") {
        "108" => genomics::Release::R108,
        "109" => genomics::Release::R109,
        "110" => genomics::Release::R110,
        "111" => genomics::Release::R111,
        other => return Err(format!("unknown release {other}; use 108|109|110|111")),
    };
    let n_reads: usize = flags
        .get("reads")
        .map(|v| v.parse().map_err(|_| format!("bad --reads {v}")))
        .transpose()?
        .unwrap_or(20_000);
    fs::create_dir_all(&out_dir).map_err(|e| format!("mkdir {}: {e}", out_dir.display()))?;

    let params = genomics::EnsemblParams { chromosome_len: 100_000, ..genomics::EnsemblParams::default() };
    let generator = genomics::EnsemblGenerator::new(params).map_err(|e| e.to_string())?;
    let assembly = generator.generate(release);
    let annotation = Annotation::simulate(&assembly, &generator, &AnnotationParams::default())
        .map_err(|e| e.to_string())?;

    let fasta_path = out_dir.join("genome.fa");
    let mut fasta = Vec::new();
    genomics::fasta::write_fasta(&mut fasta, &assembly.to_fasta(), 70).map_err(|e| e.to_string())?;
    fs::write(&fasta_path, fasta).map_err(|e| e.to_string())?;

    let gtf_path = out_dir.join("annotation.gtf");
    fs::write(&gtf_path, annotation.to_gtf()).map_err(|e| e.to_string())?;

    let mut simulator = genomics::ReadSimulator::new(
        &assembly,
        &annotation,
        genomics::SimulatorParams::for_library(genomics::LibraryType::BulkPolyA),
        4242,
    )
    .map_err(|e| e.to_string())?;
    let reads: Vec<genomics::FastqRecord> =
        simulator.simulate(n_reads, "SIM").into_iter().map(|r| r.fastq).collect();
    let fastq_path = out_dir.join("reads.fastq");
    let mut fastq = Vec::new();
    genomics::fastq::write_fastq(&mut fastq, &reads).map_err(|e| e.to_string())?;
    fs::write(&fastq_path, fastq).map_err(|e| e.to_string())?;

    println!(
        "simulated release-{} assembly ({} contigs, {} bases), {} genes, {} reads:",
        release.number(),
        assembly.contigs.len(),
        assembly.total_len(),
        annotation.len(),
        reads.len()
    );
    println!("  {}", fasta_path.display());
    println!("  {}", gtf_path.display());
    println!("  {}", fastq_path.display());
    Ok(())
}

fn load_assembly(path: &Path) -> Result<Assembly, String> {
    let file = fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let (records, stats) = genomics::fasta::read_fasta(BufReader::new(file)).map_err(|e| e.to_string())?;
    if stats.substituted_ambiguous > 0 {
        eprintln!("warning: {} ambiguous bases substituted with A", stats.substituted_ambiguous);
    }
    Ok(Assembly {
        name: path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default(),
        release: 0,
        kind: AssemblyKind::Toplevel,
        contigs: records
            .into_iter()
            .map(|r| {
                let kind = if r.header.contains("scaffold") {
                    ContigKind::UnplacedScaffold
                } else {
                    ContigKind::Chromosome
                };
                Contig { name: r.id().to_string(), kind, seq: r.seq }
            })
            .collect(),
    })
}

fn cmd_genome_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let fasta = PathBuf::from(required(flags, "genomeFastaFiles")?);
    let genome_dir = PathBuf::from(required(flags, "genomeDir")?);
    let assembly = load_assembly(&fasta)?;
    let annotation = match flags.get("sjdbGTFfile") {
        Some(p) => {
            let file = fs::File::open(p).map_err(|e| format!("open {p}: {e}"))?;
            genomics::gtf::read_gtf(BufReader::new(file)).map_err(|e| e.to_string())?
        }
        None => Annotation::default(),
    };
    let mut params = IndexParams::default();
    if let Some(k) = flags.get("genomeSAindexNbases") {
        params.sa_index_nbases = Some(k.parse().map_err(|_| format!("bad --genomeSAindexNbases {k}"))?);
    }
    let index = StarIndex::build(&assembly, &annotation, &params).map_err(|e| e.to_string())?;
    fs::create_dir_all(&genome_dir).map_err(|e| e.to_string())?;
    let blob = index.serialize();
    let index_path = genome_dir.join("index.star");
    fs::write(&index_path, &blob).map_err(|e| e.to_string())?;
    let stats = index.stats();
    println!(
        "genomeGenerate: {} bases, {} contigs, {} sjdb junctions → {} ({} bytes)",
        stats.genome_len,
        stats.n_contigs,
        index.sjdb().len(),
        index_path.display(),
        blob.len()
    );
    Ok(())
}

fn load_reads(path: &Path) -> Result<Vec<genomics::FastqRecord>, String> {
    let file = fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    genomics::fastq::read_fastq(BufReader::new(file)).map_err(|e| e.to_string())
}

fn cmd_align_reads(flags: &HashMap<String, String>) -> Result<(), String> {
    let genome_dir = PathBuf::from(required(flags, "genomeDir")?);
    let read_files = required(flags, "readFilesIn")?;
    let prefix = flags.get("outFileNamePrefix").cloned().unwrap_or_default();
    let threads: usize = flags
        .get("runThreadN")
        .map(|v| v.parse().map_err(|_| format!("bad --runThreadN {v}")))
        .transpose()?
        .unwrap_or(4);
    let quant = flags.get("quantMode").map(String::as_str) == Some("GeneCounts");
    let two_pass = flags.get("twopassMode").map(String::as_str) == Some("Basic");

    // Load the index.
    let blob = fs::read(genome_dir.join("index.star"))
        .map_err(|e| format!("read {}: {e}", genome_dir.join("index.star").display()))?;
    let index = StarIndex::deserialize(&blob).map_err(|e| e.to_string())?;

    // Load the reads (single file, or "mate1,mate2" for paired-end).
    let mut split = read_files.splitn(2, ',');
    let reads = load_reads(Path::new(split.next().expect("non-empty")))?;
    let mate2 = match split.next() {
        Some(p) => {
            let m2 = load_reads(Path::new(p))?;
            if m2.len() != reads.len() {
                return Err(format!("mate files differ in length: {} vs {}", reads.len(), m2.len()));
            }
            Some(m2)
        }
        None => None,
    };

    // Quant requires an annotation: reuse the GTF next to the index if given.
    let annotation = match flags.get("sjdbGTFfile") {
        Some(p) => {
            let file = fs::File::open(p).map_err(|e| format!("open {p}: {e}"))?;
            Some(genomics::gtf::read_gtf(BufReader::new(file)).map_err(|e| e.to_string())?)
        }
        None => None,
    };
    if quant && annotation.is_none() {
        return Err("--quantMode GeneCounts requires --sjdbGTFfile".into());
    }

    let mut align_params = AlignParams::default();
    if let Some(v) = flags.get("outFilterMultimapNmax") {
        align_params.out_filter_multimap_nmax =
            v.parse().map_err(|_| format!("bad --outFilterMultimapNmax {v}"))?;
    }
    let config = RunConfig {
        threads,
        quant,
        record_alignments: true,
        collect_junctions: true,
        ..RunConfig::default()
    };
    let runner = Runner::new(&index, align_params, config).map_err(|e| e.to_string())?;
    let (output, inserted) = match (&mate2, two_pass) {
        (Some(m2), _) => {
            if two_pass {
                eprintln!("note: --twopassMode is single-end only in star-sim; running one pass");
            }
            let pairs: Vec<(genomics::FastqRecord, genomics::FastqRecord)> =
                reads.iter().cloned().zip(m2.iter().cloned()).collect();
            (runner.run_pairs(&pairs, annotation.as_ref(), None, None).map_err(|e| e.to_string())?, 0)
        }
        (None, true) => runner.run_two_pass(&reads, annotation.as_ref(), 3).map_err(|e| e.to_string())?,
        (None, false) => {
            (runner.run(&reads, annotation.as_ref(), None, None).map_err(|e| e.to_string())?, 0)
        }
    };

    // Aligned.out.sam — re-align per read for record emission pairing (records are
    // kept in run order; mapped-only, so walk reads and records together).
    let sam_path = PathBuf::from(format!("{prefix}Aligned.out.sam"));
    {
        let mut w = fs::File::create(&sam_path).map_err(|e| e.to_string())?;
        let cl = std::env::args().collect::<Vec<_>>().join(" ");
        w.write_all(sam_header(index.genome(), &cl).as_bytes()).map_err(|e| e.to_string())?;
        // Emit via fresh per-read alignment (records in `output.alignments` lack
        // per-read pairing for unmapped reads).
        let aligner = star_aligner::align::Aligner::new(
            &index,
            runner_params_for_output(flags)?,
        );
        match &mate2 {
            Some(m2) => {
                for (r1, r2) in reads.iter().zip(m2) {
                    let outcome = aligner.align_pair(r1, r2);
                    let (l1, l2) = star_aligner::sam::sam_pair_records(r1, r2, &outcome);
                    writeln!(w, "{l1}").map_err(|e| e.to_string())?;
                    writeln!(w, "{l2}").map_err(|e| e.to_string())?;
                }
            }
            None => {
                for read in &reads {
                    let outcome = aligner.align_read(read);
                    writeln!(w, "{}", sam_record(read, &outcome)).map_err(|e| e.to_string())?;
                }
            }
        }
    }

    // Log.progress.out + Log.final.out.
    let progress_path = PathBuf::from(format!("{prefix}Log.progress.out"));
    let progress_text: String =
        output.history.iter().map(|s| format!("{}\n", s.to_log_line())).collect();
    fs::write(&progress_path, progress_text).map_err(|e| e.to_string())?;
    let final_path = PathBuf::from(format!("{prefix}Log.final.out"));
    fs::write(&final_path, format!("{}\n", output.final_log)).map_err(|e| e.to_string())?;

    // ReadsPerGene.out.tab.
    if let Some(counts) = &output.gene_counts {
        let path = PathBuf::from(format!("{prefix}ReadsPerGene.out.tab"));
        fs::write(&path, counts.to_tsv()).map_err(|e| e.to_string())?;
    }

    // SJ.out.tab.
    if let Some(junctions) = &output.junctions {
        let path = PathBuf::from(format!("{prefix}SJ.out.tab"));
        fs::write(&path, to_sj_tab(junctions)).map_err(|e| e.to_string())?;
    }

    println!("{}", output.final_log);
    if two_pass {
        println!("twopassMode Basic: {inserted} novel junctions inserted before pass 2");
    }
    println!("outputs written with prefix {prefix:?}");
    Ok(())
}

/// The align params used for SAM emission must match the run's.
fn runner_params_for_output(flags: &HashMap<String, String>) -> Result<AlignParams, String> {
    let mut p = AlignParams::default();
    if let Some(v) = flags.get("outFilterMultimapNmax") {
        p.out_filter_multimap_nmax = v.parse().map_err(|_| format!("bad --outFilterMultimapNmax {v}"))?;
    }
    Ok(p)
}
