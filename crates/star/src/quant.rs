//! `--quantMode GeneCounts` — per-gene read counting (ReadsPerGene.out.tab).
//!
//! STAR counts *uniquely mapped* reads per gene while mapping, producing a table with
//! four columns: gene id, unstranded count, and the two stranded counts. Reads
//! overlapping no gene's exons go to `N_noFeature`, reads overlapping several genes to
//! `N_ambiguous`, multimappers to `N_multimapping`, unmapped reads to `N_unmapped` —
//! the same header rows as the real output file.

use std::collections::HashMap;

use crate::align::{AlignmentRecord, CigarOp, MapClass};
use genomics::annotation::{Annotation, Strand};

/// Strandedness column selector, mirroring ReadsPerGene.out.tab columns 2–4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strandedness {
    /// Column 2: count regardless of strand.
    Unstranded,
    /// Column 3: read strand must equal gene strand.
    Forward,
    /// Column 4: read strand must be opposite to the gene strand.
    Reverse,
}

/// The per-gene counting engine for one contig-indexed annotation.
pub struct GeneCounter {
    /// Exon intervals per contig, sorted by start: (start, end, gene_index).
    exons_by_contig: HashMap<String, Vec<(u64, u64, usize)>>,
    gene_ids: Vec<String>,
    gene_strands: Vec<Strand>,
    counts: Vec<[u64; 3]>,
    n_no_feature: [u64; 3],
    n_ambiguous: [u64; 3],
    n_multimapping: u64,
    n_unmapped: u64,
}

impl GeneCounter {
    /// Build the counter's interval tables from an annotation.
    pub fn new(annotation: &Annotation) -> GeneCounter {
        let mut exons_by_contig: HashMap<String, Vec<(u64, u64, usize)>> = HashMap::new();
        let mut gene_ids = Vec::with_capacity(annotation.genes.len());
        let mut gene_strands = Vec::with_capacity(annotation.genes.len());
        for (gi, gene) in annotation.genes.iter().enumerate() {
            gene_ids.push(gene.id.clone());
            gene_strands.push(gene.strand);
            let entry = exons_by_contig.entry(gene.contig.clone()).or_default();
            for e in &gene.exons {
                entry.push((e.start as u64, e.end as u64, gi));
            }
        }
        for v in exons_by_contig.values_mut() {
            v.sort_unstable();
        }
        let n = gene_ids.len();
        GeneCounter {
            exons_by_contig,
            gene_ids,
            gene_strands,
            counts: vec![[0; 3]; n],
            n_no_feature: [0; 3],
            n_ambiguous: [0; 3],
            n_multimapping: 0,
            n_unmapped: 0,
        }
    }

    /// Rebuild a counter from a checkpointed partial table, seeding every tally
    /// so counting continues exactly where the interrupted run left off. The
    /// saved table must come from the same annotation (checked via gene ids).
    pub fn restore(annotation: &Annotation, saved: &GeneCounts) -> Result<GeneCounter, crate::StarError> {
        let mut counter = GeneCounter::new(annotation);
        if counter.gene_ids != saved.gene_ids {
            return Err(crate::StarError::InvalidParams(
                "checkpoint gene table does not match the annotation".into(),
            ));
        }
        counter.counts = saved.counts.clone();
        counter.n_no_feature = saved.n_no_feature;
        counter.n_ambiguous = saved.n_ambiguous;
        counter.n_multimapping = saved.n_multimapping;
        counter.n_unmapped = saved.n_unmapped;
        Ok(counter)
    }

    /// Record one read's outcome. Only `Unique` reads are gene-counted (STAR
    /// semantics); `Multi`/`TooMany` go to `N_multimapping`, `Unmapped` to
    /// `N_unmapped`.
    pub fn record(&mut self, class: MapClass, primary: Option<&AlignmentRecord>) {
        match class {
            MapClass::Unmapped => self.n_unmapped += 1,
            MapClass::Multi(_) | MapClass::TooMany(_) => self.n_multimapping += 1,
            MapClass::Unique => {
                let rec = primary.expect("unique reads carry a primary alignment");
                let genes = self.overlapping_genes(rec);
                // Resolve per strandedness column like STAR does (one read can be a
                // feature hit in one column and noFeature in another).
                for (col, strandedness) in
                    [Strandedness::Unstranded, Strandedness::Forward, Strandedness::Reverse]
                        .into_iter()
                        .enumerate()
                {
                    let eligible: Vec<usize> = genes
                        .iter()
                        .copied()
                        .filter(|&gi| strand_matches(strandedness, self.gene_strands[gi], rec.reverse))
                        .collect();
                    match eligible.len() {
                        0 => self.n_no_feature[col] += 1,
                        1 => self.counts[eligible[0]][col] += 1,
                        _ => self.n_ambiguous[col] += 1,
                    }
                }
            }
        }
    }

    /// Record one read *pair* (fragment). Unique fragments count once for the union
    /// of genes either mate overlaps; strandedness follows mate 1 (Illumina dUTP
    /// convention as STAR counts it).
    pub fn record_pair(
        &mut self,
        class: MapClass,
        rec1: Option<&AlignmentRecord>,
        rec2: Option<&AlignmentRecord>,
    ) {
        match class {
            MapClass::Unmapped => self.n_unmapped += 1,
            MapClass::Multi(_) | MapClass::TooMany(_) => self.n_multimapping += 1,
            MapClass::Unique => {
                let rec1 = rec1.expect("unique pairs carry mate records");
                let mut genes = self.overlapping_genes(rec1);
                if let Some(r2) = rec2 {
                    genes.extend(self.overlapping_genes(r2));
                    genes.sort_unstable();
                    genes.dedup();
                }
                for (col, strandedness) in
                    [Strandedness::Unstranded, Strandedness::Forward, Strandedness::Reverse]
                        .into_iter()
                        .enumerate()
                {
                    let eligible: Vec<usize> = genes
                        .iter()
                        .copied()
                        .filter(|&gi| strand_matches(strandedness, self.gene_strands[gi], rec1.reverse))
                        .collect();
                    match eligible.len() {
                        0 => self.n_no_feature[col] += 1,
                        1 => self.counts[eligible[0]][col] += 1,
                        _ => self.n_ambiguous[col] += 1,
                    }
                }
            }
        }
    }

    /// Genes whose exons overlap any aligned (M) block of the record.
    fn overlapping_genes(&self, rec: &AlignmentRecord) -> Vec<usize> {
        let Some(exons) = self.exons_by_contig.get(&*rec.contig) else {
            return Vec::new();
        };
        let mut hits: Vec<usize> = Vec::new();
        for (start, end) in aligned_blocks(rec) {
            // Linear scan from the first exon ending after block start; exon lists
            // per contig are modest (annotation-sized, not read-sized).
            for &(es, ee, gi) in exons {
                if es >= end {
                    break;
                }
                if ee > start {
                    hits.push(gi);
                }
            }
        }
        hits.sort_unstable();
        hits.dedup();
        hits
    }

    /// Total reads recorded so far.
    pub fn total_recorded(&self) -> u64 {
        self.n_unmapped
            + self.n_multimapping
            + self.n_no_feature[0]
            + self.n_ambiguous[0]
            + self.counts.iter().map(|c| c[0]).sum::<u64>()
    }

    /// Finish counting and produce the output table.
    pub fn finish(self) -> GeneCounts {
        GeneCounts {
            gene_ids: self.gene_ids,
            counts: self.counts,
            n_no_feature: self.n_no_feature,
            n_ambiguous: self.n_ambiguous,
            n_multimapping: self.n_multimapping,
            n_unmapped: self.n_unmapped,
        }
    }
}

fn strand_matches(s: Strandedness, gene: Strand, read_reverse: bool) -> bool {
    let read_strand = if read_reverse { Strand::Reverse } else { Strand::Forward };
    match s {
        Strandedness::Unstranded => true,
        Strandedness::Forward => read_strand == gene,
        Strandedness::Reverse => read_strand != gene,
    }
}

/// Genomic blocks covered by M operations, walking the CIGAR from `rec.pos`.
fn aligned_blocks(rec: &AlignmentRecord) -> Vec<(u64, u64)> {
    let mut blocks = Vec::new();
    let mut gpos = rec.pos;
    for op in &rec.cigar {
        match op {
            CigarOp::M(n) => {
                blocks.push((gpos, gpos + *n as u64));
                gpos += *n as u64;
            }
            CigarOp::N(n) => gpos += *n as u64,
            CigarOp::S(_) => {}
        }
    }
    blocks
}

/// The finished ReadsPerGene.out.tab equivalent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneCounts {
    /// Gene ids, annotation order.
    pub gene_ids: Vec<String>,
    /// Per-gene counts: `[unstranded, forward, reverse]`.
    pub counts: Vec<[u64; 3]>,
    /// Unique reads overlapping no gene, per column.
    pub n_no_feature: [u64; 3],
    /// Unique reads overlapping several genes, per column.
    pub n_ambiguous: [u64; 3],
    /// Multimapping reads (one total; STAR repeats it across columns).
    pub n_multimapping: u64,
    /// Unmapped reads.
    pub n_unmapped: u64,
}

impl GeneCounts {
    /// Count for a gene id in the given column.
    pub fn count(&self, gene_id: &str, s: Strandedness) -> Option<u64> {
        let col = column(s);
        self.gene_ids.iter().position(|g| g == gene_id).map(|i| self.counts[i][col])
    }

    /// Sum of gene counts in a column.
    pub fn total_counted(&self, s: Strandedness) -> u64 {
        let col = column(s);
        self.counts.iter().map(|c| c[col]).sum()
    }

    /// Render in ReadsPerGene.out.tab format (4 header rows then one row per gene).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "N_unmapped\t{}\t{}\t{}\n",
            self.n_unmapped, self.n_unmapped, self.n_unmapped
        ));
        out.push_str(&format!(
            "N_multimapping\t{}\t{}\t{}\n",
            self.n_multimapping, self.n_multimapping, self.n_multimapping
        ));
        out.push_str(&format!(
            "N_noFeature\t{}\t{}\t{}\n",
            self.n_no_feature[0], self.n_no_feature[1], self.n_no_feature[2]
        ));
        out.push_str(&format!(
            "N_ambiguous\t{}\t{}\t{}\n",
            self.n_ambiguous[0], self.n_ambiguous[1], self.n_ambiguous[2]
        ));
        for (id, c) in self.gene_ids.iter().zip(&self.counts) {
            out.push_str(&format!("{id}\t{}\t{}\t{}\n", c[0], c[1], c[2]));
        }
        out
    }
}

fn column(s: Strandedness) -> usize {
    match s {
        Strandedness::Unstranded => 0,
        Strandedness::Forward => 1,
        Strandedness::Reverse => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomics::annotation::{Exon, Gene};

    fn annotation() -> Annotation {
        Annotation {
            genes: vec![
                Gene {
                    id: "G1".into(),
                    contig: "1".into(),
                    strand: Strand::Forward,
                    exons: vec![Exon { start: 100, end: 200 }, Exon { start: 400, end: 500 }],
                },
                Gene {
                    id: "G2".into(),
                    contig: "1".into(),
                    strand: Strand::Reverse,
                    exons: vec![Exon { start: 1000, end: 1200 }],
                },
                Gene {
                    id: "G3".into(),
                    contig: "2".into(),
                    strand: Strand::Forward,
                    exons: vec![Exon { start: 0, end: 300 }],
                },
            ],
        }
    }

    fn rec(contig: &str, pos: u64, cigar: Vec<CigarOp>, reverse: bool) -> AlignmentRecord {
        AlignmentRecord {
            read_id: "r".into(),
            contig: contig.into(),
            pos,
            reverse,
            cigar,
            score: 100,
            mismatches: 0,
            n_hits: 1,
            mapq: 255,
            junctions: vec![],
        }
    }

    #[test]
    fn exonic_unique_read_counts_for_its_gene() {
        let mut counter = GeneCounter::new(&annotation());
        let r = rec("1", 120, vec![CigarOp::M(50)], false);
        counter.record(MapClass::Unique, Some(&r));
        let counts = counter.finish();
        assert_eq!(counts.count("G1", Strandedness::Unstranded), Some(1));
        // Forward gene, forward read: column 3 counts, column 4 goes noFeature.
        assert_eq!(counts.count("G1", Strandedness::Forward), Some(1));
        assert_eq!(counts.count("G1", Strandedness::Reverse), Some(0));
        assert_eq!(counts.n_no_feature[2], 1);
    }

    #[test]
    fn spliced_read_counts_via_both_exons() {
        let mut counter = GeneCounter::new(&annotation());
        // 50M 200N 50M starting at 150: blocks [150,200) and [400,450) — both G1 exons.
        let r = rec("1", 150, vec![CigarOp::M(50), CigarOp::N(200), CigarOp::M(50)], false);
        counter.record(MapClass::Unique, Some(&r));
        let counts = counter.finish();
        assert_eq!(counts.count("G1", Strandedness::Unstranded), Some(1));
    }

    #[test]
    fn intergenic_read_goes_no_feature() {
        let mut counter = GeneCounter::new(&annotation());
        let r = rec("1", 700, vec![CigarOp::M(100)], false);
        counter.record(MapClass::Unique, Some(&r));
        let counts = counter.finish();
        assert_eq!(counts.n_no_feature, [1, 1, 1]);
        assert_eq!(counts.total_counted(Strandedness::Unstranded), 0);
    }

    #[test]
    fn intronic_read_is_no_feature() {
        let mut counter = GeneCounter::new(&annotation());
        // Inside G1's intron [200,400).
        let r = rec("1", 250, vec![CigarOp::M(100)], false);
        counter.record(MapClass::Unique, Some(&r));
        let counts = counter.finish();
        assert_eq!(counts.count("G1", Strandedness::Unstranded), Some(0));
        assert_eq!(counts.n_no_feature[0], 1);
    }

    #[test]
    fn reverse_strand_gene_uses_reverse_column() {
        let mut counter = GeneCounter::new(&annotation());
        // Forward read over reverse-strand gene G2.
        let r = rec("1", 1050, vec![CigarOp::M(100)], false);
        counter.record(MapClass::Unique, Some(&r));
        let counts = counter.finish();
        assert_eq!(counts.count("G2", Strandedness::Unstranded), Some(1));
        assert_eq!(counts.count("G2", Strandedness::Forward), Some(0));
        assert_eq!(counts.count("G2", Strandedness::Reverse), Some(1));
    }

    #[test]
    fn overlapping_genes_yield_ambiguous() {
        let mut ann = annotation();
        ann.genes.push(Gene {
            id: "G1b".into(),
            contig: "1".into(),
            strand: Strand::Forward,
            exons: vec![Exon { start: 150, end: 250 }],
        });
        let mut counter = GeneCounter::new(&ann);
        let r = rec("1", 160, vec![CigarOp::M(30)], false);
        counter.record(MapClass::Unique, Some(&r));
        let counts = counter.finish();
        assert_eq!(counts.n_ambiguous[0], 1);
        assert_eq!(counts.count("G1", Strandedness::Unstranded), Some(0));
    }

    #[test]
    fn multimappers_and_unmapped_go_to_header_rows() {
        let mut counter = GeneCounter::new(&annotation());
        counter.record(MapClass::Multi(3), Some(&rec("1", 120, vec![CigarOp::M(50)], false)));
        counter.record(MapClass::TooMany(50), None);
        counter.record(MapClass::Unmapped, None);
        let counts = counter.finish();
        assert_eq!(counts.n_multimapping, 2);
        assert_eq!(counts.n_unmapped, 1);
        assert_eq!(counts.total_counted(Strandedness::Unstranded), 0);
    }

    #[test]
    fn soft_clips_do_not_cover_genome() {
        let mut counter = GeneCounter::new(&annotation());
        // Block [195, 205): 5 bases in exon1 [100,200) — overlap counts; but clips
        // before pos don't extend coverage backwards.
        let r = rec("1", 195, vec![CigarOp::S(20), CigarOp::M(10)], false);
        counter.record(MapClass::Unique, Some(&r));
        let counts = counter.finish();
        assert_eq!(counts.count("G1", Strandedness::Unstranded), Some(1));
    }

    #[test]
    fn pair_counts_fragment_once_via_either_mate() {
        let mut counter = GeneCounter::new(&annotation());
        // Mate 1 in G1's first exon, mate 2 (reverse) in its second exon.
        let r1 = rec("1", 120, vec![CigarOp::M(50)], false);
        let r2 = rec("1", 420, vec![CigarOp::M(50)], true);
        counter.record_pair(MapClass::Unique, Some(&r1), Some(&r2));
        let counts = counter.finish();
        assert_eq!(counts.count("G1", Strandedness::Unstranded), Some(1), "one fragment, one count");
        // Strandedness follows mate 1 (forward): column 3.
        assert_eq!(counts.count("G1", Strandedness::Forward), Some(1));
    }

    #[test]
    fn pair_with_mates_in_different_genes_is_ambiguous() {
        let mut counter = GeneCounter::new(&annotation());
        let r1 = rec("1", 120, vec![CigarOp::M(50)], false); // G1
        let r2 = rec("1", 1_050, vec![CigarOp::M(50)], true); // G2
        counter.record_pair(MapClass::Unique, Some(&r1), Some(&r2));
        let counts = counter.finish();
        assert_eq!(counts.n_ambiguous[0], 1);
        assert_eq!(counts.total_counted(Strandedness::Unstranded), 0);
    }

    #[test]
    fn tsv_has_header_rows_then_genes() {
        let mut counter = GeneCounter::new(&annotation());
        counter.record(MapClass::Unique, Some(&rec("1", 120, vec![CigarOp::M(50)], false)));
        counter.record(MapClass::Unmapped, None);
        let tsv = counter.finish().to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert!(lines[0].starts_with("N_unmapped\t1"));
        assert!(lines[1].starts_with("N_multimapping\t0"));
        assert!(lines[2].starts_with("N_noFeature"));
        assert!(lines[3].starts_with("N_ambiguous"));
        assert!(lines[4].starts_with("G1\t1\t1\t0"));
        assert_eq!(lines.len(), 4 + 3);
    }

    #[test]
    fn total_recorded_is_consistent() {
        let mut counter = GeneCounter::new(&annotation());
        counter.record(MapClass::Unique, Some(&rec("1", 120, vec![CigarOp::M(50)], false)));
        counter.record(MapClass::Unique, Some(&rec("1", 700, vec![CigarOp::M(50)], false)));
        counter.record(MapClass::Multi(2), None);
        counter.record(MapClass::Unmapped, None);
        assert_eq!(counter.total_recorded(), 4);
    }
}
