//! A from-scratch, STAR-style spliced RNA-seq aligner.
//!
//! This crate reimplements the algorithmic core of STAR (Dobin et al., 2013) that the
//! paper's optimizations act through:
//!
//! * [`genome`] — the concatenated, contig-boundary-aware reference ("Genome" file).
//! * [`sa`] — an uncompressed suffix array over the concatenated genome, STAR's
//!   central index structure, built with prefix doubling (rayon-parallel sort).
//! * [`prefix`] — the k-mer prefix lookup table (`genomeSAindexNbases` analog) that
//!   seeds suffix-array searches.
//! * [`sjdb`] — the annotated splice-junction database used for spliced stitching.
//! * [`index`] — [`index::StarIndex`]: everything above bundled, with byte-accurate
//!   size accounting (the 85 GiB vs 29.5 GiB comparison of the paper's §III-A) and
//!   (de)serialization.
//! * [`mmp`] — Maximal Mappable Prefix search, STAR's seed-discovery primitive.
//! * [`hashseed`] — optional SNAP-style fixed-length hash seeding table
//!   ([`params::AlignParams::use_hash_seed`]): trades index memory for seed-lookup
//!   speed without changing a single alignment.
//! * [`seed`] / [`stitch`] / [`extend`] — seed collection, windowing/stitching into
//!   collinear chains (introns allowed), and mismatch-scored extension to a full-read
//!   alignment with soft clips.
//! * [`align`] — the per-read alignment driver ([`align::Aligner`]).
//! * [`quant`] — `--quantMode GeneCounts` equivalent (ReadsPerGene.out.tab).
//! * [`progress`] — the `Log.progress.out` statistic stream (% mapped so far) that the
//!   paper's early-stopping optimization consumes.
//! * [`logs`] — `Log.final.out`-style run summary.
//! * [`runner`] — the multi-threaded run driver (`runThreadN` analog) with a
//!   cooperative cancellation hook for early stopping.
//! * [`checkpoint`] — resumable alignment checkpoints: a cancelled run's offset
//!   and partial tallies, serialized deterministically so a spot-interrupted
//!   worker's successor can resume and still produce bit-identical output.
//!
//! # Simplifications relative to real STAR
//!
//! Substitution-only alignment (no indels — the simulators in `genomics` emit none),
//! single-end reads, no 2-pass mode, and SAM-lite output records instead of BAM. None
//! of these affect the evaluated claims; see DESIGN.md.
//!
//! # Quick example
//!
//! ```
//! use genomics::{EnsemblGenerator, EnsemblParams, Release, Annotation,
//!                annotation::AnnotationParams};
//! use star_aligner::index::{IndexParams, StarIndex};
//! use star_aligner::align::Aligner;
//! use star_aligner::params::AlignParams;
//!
//! let generator = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
//! let assembly = generator.generate(Release::R111);
//! let annotation = Annotation::simulate(&assembly, &generator,
//!                                       &AnnotationParams::default()).unwrap();
//! let index = StarIndex::build(&assembly, &annotation, &IndexParams::default()).unwrap();
//! let aligner = Aligner::new(&index, AlignParams::default());
//! // Align a read taken straight from chromosome 1.
//! let chrom = assembly.contig("1").unwrap();
//! let read = chrom.seq.subseq(1000, 1100);
//! let result = aligner.align_seq(&read);
//! assert!(result.is_mapped());
//! ```

pub mod align;
pub mod checkpoint;
pub mod error;
pub mod extend;
pub mod genome;
pub mod hashseed;
pub mod index;
pub mod junctions;
pub mod logs;
pub mod mmp;
pub mod pair;
pub mod params;
pub mod prefix;
pub mod progress;
pub mod quant;
pub mod runner;
pub mod sa;
pub mod scratch;
pub mod sam;
pub mod seed;
pub mod sjdb;
pub mod stitch;

pub use align::{AlignOutcome, Aligner, AlignmentRecord, CigarOp, MapClass, PhaseWork};
pub use checkpoint::AlignCheckpoint;
pub use error::StarError;
pub use genome::Packed2;
pub use hashseed::HashSeedIndex;
pub use index::{IndexParams, IndexStats, StarIndex};
pub use pair::{PairOutcome, PairParams};
pub use params::AlignParams;
pub use junctions::{JunctionCollector, JunctionRow};
pub use progress::{ProgressSnapshot, ProgressStats};
pub use runner::{CancelToken, RunConfig, RunOutput, RunStatus, Runner};
pub use scratch::AlignScratch;
