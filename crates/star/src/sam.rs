//! SAM-format output (STAR's `Aligned.out.sam`).
//!
//! Renders alignment outcomes as SAM 1.6 text: `@HD`/`@SQ`/`@PG` header from the
//! genome's span table, then one record per read with the flags, 1-based position,
//! CIGAR and the STAR-style optional tags (`NH` hit count, `AS` alignment score,
//! `nM` mismatches). Unmapped reads emit flag-4 records like STAR's
//! `--outSAMunmapped Within`.

use crate::align::{cigar_string, AlignOutcome, AlignmentRecord, MapClass};
use crate::genome::PackedGenome;
use crate::pair::PairOutcome;
use crate::StarError;
use genomics::FastqRecord;
use std::collections::HashMap;
use std::fmt::Write as _;

/// SAM flag bits.
pub mod flags {
    /// Template has multiple segments (paired).
    pub const PAIRED: u16 = 0x1;
    /// Each segment properly aligned (proper pair).
    pub const PROPER_PAIR: u16 = 0x2;
    /// Read is unmapped.
    pub const UNMAPPED: u16 = 0x4;
    /// Mate is unmapped.
    pub const MATE_UNMAPPED: u16 = 0x8;
    /// Read aligned to the reverse strand.
    pub const REVERSE: u16 = 0x10;
    /// Mate aligned to the reverse strand.
    pub const MATE_REVERSE: u16 = 0x20;
    /// First segment in the template.
    pub const FIRST: u16 = 0x40;
    /// Last segment in the template.
    pub const LAST: u16 = 0x80;
    /// Secondary alignment (not emitted: we report primaries only).
    pub const SECONDARY: u16 = 0x100;
}

/// Render the SAM header for a genome.
pub fn sam_header(genome: &PackedGenome, command_line: &str) -> String {
    let mut out = String::from("@HD\tVN:1.6\tSO:unsorted\n");
    for span in genome.spans() {
        let _ = writeln!(out, "@SQ\tSN:{}\tLN:{}", span.name, span.len);
    }
    let _ = writeln!(out, "@PG\tID:star-aligner-rs\tPN:star-aligner-rs\tCL:{command_line}");
    out
}

/// Render one read's outcome as a SAM record line (no trailing newline).
///
/// Mapped reads use the primary alignment; `TooMany` reads are written as unmapped
/// (STAR's default `--outFilterMultimapNmax` behaviour), with the true hit count
/// still visible in the `NH` tag of mapped records.
pub fn sam_record(read: &FastqRecord, outcome: &AlignOutcome) -> String {
    match (&outcome.class, &outcome.primary) {
        (MapClass::Unique | MapClass::Multi(_), Some(rec)) => sam_mapped_record(read, rec),
        _ => {
            let qual_string: String =
                read.qual.iter().map(|&q| (q.min(60) + 33) as char).collect();
            let qual_field = if qual_string.is_empty() { "*".to_string() } else { qual_string };
            format!(
                "{}\t{}\t*\t0\t0\t*\t*\t0\t0\t{}\t{}\tuT:A:1",
                read.id,
                flags::UNMAPPED,
                read.seq,
                qual_field,
            )
        }
    }
}

/// Render a mapped read's primary alignment as a SAM line (no trailing newline).
/// The mapped arm of [`sam_record`], usable directly from the records a run
/// keeps (`record_alignments`), where the outcome classification is implicit.
pub fn sam_mapped_record(read: &FastqRecord, rec: &AlignmentRecord) -> String {
    let qual_string: String = read.qual.iter().map(|&q| (q.min(60) + 33) as char).collect();
    let qual_field = if qual_string.is_empty() { "*".to_string() } else { qual_string };
    let flag = if rec.reverse { flags::REVERSE } else { 0 };
    // SAM stores the sequence in reference orientation.
    let seq =
        if rec.reverse { read.seq.reverse_complement().to_string() } else { read.seq.to_string() };
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t*\t0\t0\t{}\t{}\tNH:i:{}\tAS:i:{}\tnM:i:{}",
        read.id,
        flag,
        rec.contig,
        rec.pos + 1, // SAM is 1-based
        rec.mapq,
        cigar_string(&rec.cigar),
        seq,
        qual_field,
        rec.n_hits,
        rec.score,
        rec.mismatches,
    )
}

/// Render the SAM body for the alignment records a run kept
/// (`record_alignments`; mapped reads only, input order). Each record's read is
/// looked up by id in `reads`; an unknown id is an error rather than a silent
/// skip. Shards from a checkpointed run concatenate to exactly the body an
/// uninterrupted run produces — the property the spot-recovery differential
/// test pins down.
pub fn sam_body(reads: &[FastqRecord], records: &[AlignmentRecord]) -> Result<String, StarError> {
    let by_id: HashMap<&str, &FastqRecord> = reads.iter().map(|r| (r.id.as_str(), r)).collect();
    let mut out = String::new();
    for rec in records {
        let read = by_id.get(rec.read_id.as_str()).ok_or_else(|| {
            StarError::InvalidParams(format!("alignment record for unknown read {:?}", rec.read_id))
        })?;
        out.push_str(&sam_mapped_record(read, rec));
        out.push('\n');
    }
    Ok(out)
}

/// Render a mapped read pair as two SAM record lines.
///
/// Unmapped pairs emit two flag-4 records (mate-unmapped set on both).
pub fn sam_pair_records(r1: &FastqRecord, r2: &FastqRecord, outcome: &PairOutcome) -> (String, String) {
    match (&outcome.rec1, &outcome.rec2) {
        (Some(a), Some(b)) if outcome.is_mapped() => {
            let tlen = outcome.insert_size.unwrap_or(0) as i64;
            (
                pair_line(r1, a, b, flags::FIRST, tlen),
                pair_line(r2, b, a, flags::LAST, -tlen),
            )
        }
        _ => {
            let unmapped = |read: &FastqRecord, which: u16| {
                let qual: String = read.qual.iter().map(|&q| (q.min(60) + 33) as char).collect();
                format!(
                    "{}\t{}\t*\t0\t0\t*\t*\t0\t0\t{}\t{}\tuT:A:1",
                    read.id,
                    flags::PAIRED | flags::UNMAPPED | flags::MATE_UNMAPPED | which,
                    read.seq,
                    if qual.is_empty() { "*".to_string() } else { qual },
                )
            };
            (unmapped(r1, flags::FIRST), unmapped(r2, flags::LAST))
        }
    }
}

fn pair_line(
    read: &FastqRecord,
    rec: &AlignmentRecord,
    mate: &AlignmentRecord,
    which: u16,
    tlen: i64,
) -> String {
    let mut flag = flags::PAIRED | flags::PROPER_PAIR | which;
    if rec.reverse {
        flag |= flags::REVERSE;
    }
    if mate.reverse {
        flag |= flags::MATE_REVERSE;
    }
    let seq = if rec.reverse { read.seq.reverse_complement().to_string() } else { read.seq.to_string() };
    let qual: String = read.qual.iter().map(|&q| (q.min(60) + 33) as char).collect();
    let rnext = if mate.contig == rec.contig { "=" } else { &*mate.contig };
    // TLEN sign: positive for the leftmost mate.
    let tlen = if rec.pos <= mate.pos { tlen.abs() } else { -tlen.abs() };
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\tNH:i:{}\tAS:i:{}\tnM:i:{}",
        read.id,
        flag,
        rec.contig,
        rec.pos + 1,
        rec.mapq,
        cigar_string(&rec.cigar),
        rnext,
        mate.pos + 1,
        tlen,
        seq,
        if qual.is_empty() { "*".to_string() } else { qual },
        rec.n_hits,
        rec.score,
        rec.mismatches,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::Aligner;
    use crate::index::{IndexParams, StarIndex};
    use crate::AlignParams;
    use genomics::{Annotation, Assembly, AssemblyKind, Contig, ContigKind, DnaSeq};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn index() -> (DnaSeq, StarIndex) {
        let chr = DnaSeq::random(&mut StdRng::seed_from_u64(4), 3000);
        let asm = Assembly {
            name: "T".into(),
            release: 111,
            kind: AssemblyKind::Toplevel,
            contigs: vec![Contig { name: "1".into(), kind: ContigKind::Chromosome, seq: chr.clone() }],
        };
        (chr, StarIndex::build(&asm, &Annotation::default(), &IndexParams::default()).unwrap())
    }

    #[test]
    fn header_lists_every_contig() {
        let (_, idx) = index();
        let h = sam_header(idx.genome(), "star-sim alignReads");
        assert!(h.starts_with("@HD\tVN:1.6"));
        assert!(h.contains("@SQ\tSN:1\tLN:3000"));
        assert!(h.contains("@PG\tID:star-aligner-rs"));
        assert!(h.contains("CL:star-sim alignReads"));
    }

    #[test]
    fn mapped_record_has_one_based_pos_and_tags() {
        let (chr, idx) = index();
        let aligner = Aligner::new(&idx, AlignParams::default());
        let read = FastqRecord::with_uniform_quality("r1".into(), chr.subseq(500, 600), 35);
        let out = aligner.align_read(&read);
        let line = sam_record(&read, &out);
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols[0], "r1");
        assert_eq!(cols[1], "0");
        assert_eq!(cols[2], "1");
        assert_eq!(cols[3], "501", "SAM position is 1-based");
        assert_eq!(cols[4], "255");
        assert_eq!(cols[5], "100M");
        assert_eq!(cols[9].len(), 100);
        assert!(line.contains("NH:i:1"));
        assert!(line.contains("AS:i:100"));
        assert!(line.contains("nM:i:0"));
    }

    #[test]
    fn reverse_read_is_flagged_and_reference_oriented() {
        let (chr, idx) = index();
        let aligner = Aligner::new(&idx, AlignParams::default());
        let fwd = chr.subseq(800, 900);
        let read = FastqRecord::with_uniform_quality("r2".into(), fwd.reverse_complement(), 35);
        let out = aligner.align_read(&read);
        let line = sam_record(&read, &out);
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols[1], "16", "reverse flag");
        assert_eq!(cols[9], fwd.to_string(), "SEQ stored in reference orientation");
    }

    #[test]
    fn unmapped_record_uses_flag_4() {
        let (_, idx) = index();
        let aligner = Aligner::new(&idx, AlignParams::default());
        let read = FastqRecord::with_uniform_quality(
            "junk".into(),
            DnaSeq::from_codes(vec![0; 100]),
            35,
        );
        let out = aligner.align_read(&read);
        let line = sam_record(&read, &out);
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols[1], "4");
        assert_eq!(cols[2], "*");
        assert_eq!(cols[3], "0");
        assert!(line.contains("uT:A:1"));
    }

    #[test]
    fn pair_records_carry_mate_fields_and_tlen() {
        let (chr, idx) = index();
        let aligner = Aligner::new(&idx, AlignParams::default());
        // Fragment [1000, 1250): r1 fwd at 1000, r2 rc at 1150.
        let r1 = FastqRecord::with_uniform_quality("p/1".into(), chr.subseq(1000, 1100), 35);
        let r2 = FastqRecord::with_uniform_quality(
            "p/2".into(),
            chr.subseq(1150, 1250).reverse_complement(),
            35,
        );
        let out = aligner.align_pair(&r1, &r2);
        assert!(out.is_mapped());
        let (l1, l2) = sam_pair_records(&r1, &r2, &out);
        let c1: Vec<&str> = l1.split('\t').collect();
        let c2: Vec<&str> = l2.split('\t').collect();
        // Flags: paired+proper+first (+ mate reverse) = 0x1|0x2|0x40|0x20 = 99.
        assert_eq!(c1[1], "99");
        // Mate 2: paired+proper+last+reverse = 0x1|0x2|0x80|0x10 = 147.
        assert_eq!(c2[1], "147");
        assert_eq!(c1[6], "=", "RNEXT same contig");
        assert_eq!(c1[7], "1151", "PNEXT is mate pos, 1-based");
        assert_eq!(c1[8], "250", "TLEN positive on leftmost mate");
        assert_eq!(c2[8], "-250");
    }

    #[test]
    fn unmapped_pair_records_flag_both_mates() {
        let (_, idx) = index();
        let aligner = Aligner::new(&idx, AlignParams::default());
        let junk = DnaSeq::from_codes(vec![0; 100]);
        let r1 = FastqRecord::with_uniform_quality("j/1".into(), junk.clone(), 35);
        let r2 = FastqRecord::with_uniform_quality("j/2".into(), junk, 35);
        let out = aligner.align_pair(&r1, &r2);
        let (l1, l2) = sam_pair_records(&r1, &r2, &out);
        let f1: u16 = l1.split('\t').nth(1).unwrap().parse().unwrap();
        let f2: u16 = l2.split('\t').nth(1).unwrap().parse().unwrap();
        assert_eq!(f1, 0x1 | 0x4 | 0x8 | 0x40);
        assert_eq!(f2, 0x1 | 0x4 | 0x8 | 0x80);
    }

    #[test]
    fn quality_string_is_phred33() {
        let (chr, idx) = index();
        let aligner = Aligner::new(&idx, AlignParams::default());
        let read = FastqRecord::with_uniform_quality("r3".into(), chr.subseq(0, 100), 40);
        let out = aligner.align_read(&read);
        let line = sam_record(&read, &out);
        let cols: Vec<&str> = line.split('\t').collect();
        assert!(cols[10].chars().all(|c| c == 'I'), "Q40 encodes as 'I'");
    }
}
