//! k-mer prefix lookup table (`--genomeSAindexNbases` analog).
//!
//! STAR pre-resolves the first `k` bases of every suffix-array search through a dense
//! 4^k-entry table, skipping the first `k` rounds of interval refinement. The table is
//! part of the index and contributes to its size; `k` defaults to a `log4`-of-genome
//! shape like STAR's `min(14, log2(GenomeLength)/2 - 1)`, with a smaller cap suited to
//! synthetic genomes.
//!
//! Suffixes shorter than `k` bases (the last `k-1` genome positions) sort in between
//! bucket runs; each bucket therefore stores its exact `[start, end)` slot range
//! rather than deriving the end from the next bucket's start.

use crate::sa::{SaInterval, SuffixArray};

/// Dense k-mer → SA-interval table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixTable {
    k: usize,
    /// Per-bucket first SA slot; `u32::MAX` marks an empty bucket.
    starts: Vec<u32>,
    /// Per-bucket one-past-last SA slot (0 for empty buckets).
    ends: Vec<u32>,
}

impl PrefixTable {
    /// Choose a table depth for a genome of `n` bases: STAR's
    /// `min(cap, log2(n)/2 - 1)` (`--genomeSAindexNbases` default), floored at 4.
    pub fn auto_k(n: usize, cap: usize) -> usize {
        let k = ((n.max(4) as f64).log2() / 2.0 - 1.0).floor() as isize;
        (k.max(4) as usize).min(cap.max(4))
    }

    /// Build the table by a single scan over the suffix array.
    ///
    /// The k-mer at every genome position is precomputed with one rolling pass
    /// (`kmers[i] = codes[i] | kmers[i+1] · 4`, truncated to `2k` bits), so the SA
    /// scan does one table lookup per suffix instead of re-packing `k` bases —
    /// O(n) total rather than O(nk).
    pub fn build(sa: &SuffixArray, codes: &[u8], k: usize) -> PrefixTable {
        assert!((1..=13).contains(&k), "prefix depth {k} unsupported");
        let buckets = 1usize << (2 * k);
        let mask = (buckets - 1) as u32;
        let mut starts = vec![u32::MAX; buckets];
        let mut ends = vec![0u32; buckets];
        let n = codes.len();
        let mut kmers: Vec<u32> = Vec::new();
        if n >= k {
            kmers = vec![0u32; n - k + 1];
            let last = n - k;
            kmers[last] = kmer_value(&codes[last..last + k]) as u32;
            for i in (0..last).rev() {
                kmers[i] = ((kmers[i + 1] << 2) | codes[i] as u32) & mask;
            }
        }
        for (slot, &pos) in sa.positions().iter().enumerate() {
            let pos = pos as usize;
            if pos >= kmers.len() {
                continue; // suffix too short to be addressable through the table
            }
            let m = kmers[pos] as usize;
            let slot = slot as u32;
            if starts[m] == u32::MAX {
                starts[m] = slot;
            }
            debug_assert!(
                ends[m] == 0 || ends[m] == slot,
                "bucket {m} not contiguous in the suffix array"
            );
            ends[m] = slot + 1;
        }
        PrefixTable { k, starts, ends }
    }

    /// The table depth `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// SA interval of suffixes starting with the `k`-mer at the front of `pattern`.
    /// Returns `None` when `pattern` is shorter than `k` (caller falls back to plain
    /// refinement from depth 0).
    #[inline]
    pub fn lookup(&self, pattern: &[u8]) -> Option<SaInterval> {
        if pattern.len() < self.k {
            return None;
        }
        Some(self.lookup_value(kmer_value(&pattern[..self.k])))
    }

    /// SA interval for an LSB-first-packed `k`-mer value — the O(1) probe the
    /// packed hot path uses: `seq.word_from(p) & ((1 << 2k) - 1)` *is* the value.
    /// The caller guarantees at least `k` bases remain at the probe position.
    #[inline]
    pub fn lookup_value(&self, m: usize) -> SaInterval {
        let lo = self.starts[m];
        if lo == u32::MAX {
            return SaInterval { lo: 0, hi: 0 };
        }
        SaInterval { lo, hi: self.ends[m] }
    }

    /// Build deeper companion tables for the alignment hot path, deepest first.
    ///
    /// Seed search spends most of its time probing every suffix of the starting
    /// `k`-mer bucket against the genome; a deeper table shrinks that starting
    /// interval by `4^(d-k)` without changing any search result (the `d`-mer bucket
    /// is exactly the interval refinement from depth `k` would reach at depth `d`).
    /// Depths `k+2` and `k+1` are built when each fits within 4× the genome length
    /// in buckets (≤ 13), bounding the tables at ~40 bytes per genome base combined.
    /// The shallower layer matters on reverse-complement strands: their `k+2`-mers
    /// are frequently absent from the genome, and falling all the way back to the
    /// base bucket would pay the full per-suffix scan the deep table exists to skip.
    /// These tables are runtime-only: rebuilt by [`crate::align::Aligner::new`] and
    /// never serialized, so index files and their digests are unaffected.
    pub fn deepen(sa: &SuffixArray, codes: &[u8], base_k: usize) -> Vec<PrefixTable> {
        let max_d = (base_k + 2).min(13);
        (base_k + 1..=max_d)
            .rev()
            .filter(|&d| (1usize << (2 * d)) <= 4 * codes.len())
            .map(|d| PrefixTable::build(sa, codes, d))
            .collect()
    }

    /// Bytes of memory/disk the table occupies.
    pub fn byte_size(&self) -> usize {
        (self.starts.len() + self.ends.len()) * std::mem::size_of::<u32>()
    }

    /// Raw parts for serialization.
    pub(crate) fn raw(&self) -> (&[u32], &[u32], usize) {
        (&self.starts, &self.ends, self.k)
    }

    /// Rebuild from serialized parts.
    pub(crate) fn from_raw(
        starts: Vec<u32>,
        ends: Vec<u32>,
        k: usize,
        sa_len: usize,
    ) -> Result<PrefixTable, crate::StarError> {
        if k == 0 || k > 13 || starts.len() != 1usize << (2 * k) || ends.len() != starts.len() {
            return Err(crate::StarError::CorruptIndex("prefix table shape mismatch".into()));
        }
        for (m, (&s, &e)) in starts.iter().zip(&ends).enumerate() {
            if s == u32::MAX {
                if e != 0 {
                    return Err(crate::StarError::CorruptIndex(format!("bucket {m}: empty start, end {e}")));
                }
            } else if s >= e || e as usize > sa_len {
                return Err(crate::StarError::CorruptIndex(format!("bucket {m}: bad range {s}..{e}")));
            }
        }
        Ok(PrefixTable { k, starts, ends })
    }
}

/// Pack 2-bit codes into an integer, LSB-first (base `i` at bits `2i`) — the same
/// layout [`crate::genome::Packed2::word_from`] produces, so a packed read yields
/// probe values in O(1). Bucket addressing only needs a bijection k-mer↔index: each bucket's SA
/// slots are contiguous because they share a k-base prefix, regardless of how the
/// buckets themselves are numbered.
#[inline]
pub(crate) fn kmer_value(codes: &[u8]) -> usize {
    let mut v = 0usize;
    for (i, &c) in codes.iter().enumerate() {
        v |= (c as usize) << (2 * i);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::Packed2;
    use genomics::DnaSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_agrees_with_sa_find_on_random_text() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = DnaSeq::random(&mut rng, 2000);
        let packed = Packed2::from_codes(s.codes());
        let sa = SuffixArray::build(s.codes());
        let k = 4;
        let table = PrefixTable::build(&sa, s.codes(), k);
        // Every possible k-mer: the table interval must equal a from-scratch search.
        for m in 0..(1usize << (2 * k)) {
            // LSB-first decode, mirroring kmer_value's packing.
            let pattern: Vec<u8> = (0..k).map(|i| ((m >> (2 * i)) & 0b11) as u8).collect();
            let via_table = table.lookup(&pattern).unwrap();
            assert_eq!(via_table, table.lookup_value(m), "value probe {m:#b}");
            let via_find = sa.find(&packed, &pattern);
            if via_find.is_empty() {
                assert!(via_table.is_empty(), "k-mer {m:#b}");
            } else {
                assert_eq!(via_table, via_find, "k-mer {m:#b}");
            }
        }
    }

    #[test]
    fn short_suffixes_do_not_leak_into_buckets() {
        // Craft a text whose final short suffixes sort between bucket runs.
        let s: DnaSeq = "CACGTC".parse().unwrap(); // suffixes include "C", "TC" (short for k=3)
        let sa = SuffixArray::build(s.codes());
        let t = PrefixTable::build(&sa, s.codes(), 3);
        for pat_str in ["CAC", "ACG", "CGT", "GTC", "CCC", "TCA"] {
            let pat: DnaSeq = pat_str.parse().unwrap();
            let via_table = t.lookup(pat.codes()).unwrap();
            let via_find = sa.find(&Packed2::from_codes(s.codes()), pat.codes());
            if via_find.is_empty() {
                assert!(via_table.is_empty(), "{pat_str}");
            } else {
                assert_eq!(via_table, via_find, "{pat_str}");
            }
        }
    }

    #[test]
    fn short_pattern_returns_none() {
        let s: DnaSeq = "ACGTACGTACGTACGT".parse().unwrap();
        let sa = SuffixArray::build(s.codes());
        let table = PrefixTable::build(&sa, s.codes(), 4);
        assert!(table.lookup(&[0, 1]).is_none());
        assert!(table.lookup(&[0, 1, 2, 3]).is_some());
    }

    #[test]
    fn auto_k_scales_with_genome_and_respects_cap() {
        assert_eq!(PrefixTable::auto_k(0, 12), 4);
        let k_small = PrefixTable::auto_k(10_000, 12);
        let k_big = PrefixTable::auto_k(100_000_000, 12);
        assert!(k_small < k_big);
        assert!(k_big <= 12);
        assert_eq!(PrefixTable::auto_k(usize::MAX / 2, 8), 8);
    }

    #[test]
    fn byte_size_counts_both_arrays() {
        let s: DnaSeq = "ACGTACGTACGT".parse().unwrap();
        let sa = SuffixArray::build(s.codes());
        let t = PrefixTable::build(&sa, s.codes(), 4);
        assert_eq!(t.byte_size(), 2 * 256 * 4);
    }

    #[test]
    fn from_raw_validates() {
        let s: DnaSeq = "ACGTACGT".parse().unwrap();
        let sa = SuffixArray::build(s.codes());
        let t = PrefixTable::build(&sa, s.codes(), 4);
        let (starts, ends, k) = t.raw();
        assert!(PrefixTable::from_raw(starts.to_vec(), ends.to_vec(), k, sa.len()).is_ok());
        assert!(PrefixTable::from_raw(starts.to_vec(), ends.to_vec(), 3, sa.len()).is_err());
        // Empty bucket with nonzero end.
        let mut bad_ends = ends.to_vec();
        let empty_m = starts.iter().position(|&s| s == u32::MAX).unwrap();
        bad_ends[empty_m] = 1;
        assert!(PrefixTable::from_raw(starts.to_vec(), bad_ends, k, sa.len()).is_err());
        // Range beyond SA.
        let full_m = starts.iter().position(|&s| s != u32::MAX).unwrap();
        let mut bad_ends = ends.to_vec();
        bad_ends[full_m] = sa.len() as u32 + 5;
        assert!(PrefixTable::from_raw(starts.to_vec(), bad_ends, k, sa.len()).is_err());
    }

    #[test]
    fn homopolymer_buckets_match_find() {
        let codes = vec![0u8; 64];
        let sa = SuffixArray::build(&codes);
        let t = PrefixTable::build(&sa, &codes, 4);
        let pattern = vec![0u8; 4];
        assert_eq!(t.lookup(&pattern).unwrap(), sa.find(&Packed2::from_codes(&codes), &pattern));
    }
}
