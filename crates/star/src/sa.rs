//! Uncompressed suffix array — STAR's central index structure.
//!
//! Built with SA-IS (suffix array by induced sorting, Nong–Zhang–Chan 2009): a
//! linear-time, allocation-lean construction that replaced the original prefix
//! doubling (Manber–Myers, O(n log² n) rounds of sorting). The prefix-doubling
//! builder is kept as [`SuffixArray::build_prefix_doubling`] purely as an
//! independent oracle for differential testing. STAR likewise keeps its suffix
//! array *uncompressed* to trade memory for search speed, which is exactly why
//! index size matters so much in the paper (85 GiB for the release-108 human
//! toplevel genome) and why shrinking the genome shrinks the instance-memory
//! requirement.
//!
//! Search is interval refinement: an interval of the SA whose suffixes share a prefix
//! is narrowed one base at a time via binary search ([`SuffixArray::refine`]), the
//! primitive that the MMP seed search builds on.

use crate::genome::Packed2;
use rayon::prelude::*;

/// An interval `[lo, hi)` of suffix-array slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SaInterval {
    pub lo: u32,
    pub hi: u32,
}

impl SaInterval {
    /// Number of suffixes in the interval.
    #[inline]
    pub fn size(&self) -> u32 {
        self.hi - self.lo
    }

    /// True when the interval contains no suffixes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }
}

/// The suffix array: all suffix start positions, lexicographically sorted.
///
/// A shorter suffix that is a prefix of a longer one sorts first (standard suffix
/// order with an implicit end-of-text sentinel smaller than every base).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuffixArray {
    sa: Vec<u32>,
}

impl SuffixArray {
    /// Build the suffix array of `codes` (2-bit base codes, one per byte).
    ///
    /// SA-IS: classify suffixes S/L, induce-sort the LMS substrings, recurse on the
    /// reduced string when names collide, then induce the full order from the sorted
    /// LMS suffixes. O(n) time, O(n) extra memory, no per-round reallocation.
    pub fn build(codes: &[u8]) -> SuffixArray {
        let n = codes.len();
        assert!(n < u32::MAX as usize, "genome too large for u32 suffix array");
        if n == 0 {
            return SuffixArray { sa: Vec::new() };
        }
        // Shift codes to 1..=4 and append the unique smallest sentinel 0; the
        // sentinel reproduces the convention that a shorter suffix which is a
        // prefix of a longer one sorts first.
        let mut text: Vec<u32> = Vec::with_capacity(n + 1);
        text.extend(codes.iter().map(|&c| c as u32 + 1));
        text.push(0);
        let full = sa_is(&text, 5);
        debug_assert_eq!(full[0] as usize, n, "sentinel suffix must sort first");
        let sa = full[1..].to_vec();
        SuffixArray { sa }
    }

    /// The original prefix-doubling builder (Manber–Myers), kept as an independent
    /// oracle: ranks start as the codes themselves; each round sorts by
    /// `(rank[i], rank[i+k])` and re-ranks, doubling `k`, until all ranks are unique.
    pub fn build_prefix_doubling(codes: &[u8]) -> SuffixArray {
        let n = codes.len();
        assert!(n < u32::MAX as usize, "genome too large for u32 suffix array");
        if n == 0 {
            return SuffixArray { sa: Vec::new() };
        }
        let mut sa: Vec<u32> = (0..n as u32).collect();
        // rank[i] = rank of suffix i by its first k characters; start with k = 1.
        let mut rank: Vec<u32> = codes.iter().map(|&c| c as u32 + 1).collect();
        let mut next_rank: Vec<u32> = vec![0; n];
        let mut key: Vec<u64> = vec![0; n];
        let mut k = 1usize;
        loop {
            // Composite key: (rank[i], rank[i+k]); missing second half sorts first.
            key.par_iter_mut().enumerate().for_each(|(i, dst)| {
                let r1 = rank[i] as u64;
                let r2 = if i + k < n { rank[i + k] as u64 } else { 0 };
                *dst = (r1 << 32) | r2;
            });
            sa.par_sort_unstable_by_key(|&i| key[i as usize]);
            // Re-rank: equal keys share a rank. `next_rank` is swapped back in, not
            // reallocated, so the loop reuses two buffers for its whole life.
            let mut r = 1u32;
            next_rank[sa[0] as usize] = r;
            for w in sa.windows(2) {
                let (a, b) = (w[0] as usize, w[1] as usize);
                if key[a] != key[b] {
                    r += 1;
                }
                next_rank[b] = r;
            }
            std::mem::swap(&mut rank, &mut next_rank);
            if r as usize == n {
                break; // all suffixes distinguished
            }
            k *= 2;
            debug_assert!(k < 2 * n, "prefix doubling failed to converge");
        }
        SuffixArray { sa }
    }

    /// Reconstruct from a previously serialized position vector, validating that it
    /// is a permutation of `0..len` (full lexicographic validation is the caller's
    /// concern; this catches corruption cheaply).
    pub(crate) fn from_raw(sa: Vec<u32>, text_len: usize) -> Result<SuffixArray, crate::StarError> {
        if sa.len() != text_len {
            return Err(crate::StarError::CorruptIndex(format!(
                "suffix array has {} entries for text of length {text_len}",
                sa.len()
            )));
        }
        let mut seen = vec![false; text_len];
        for &p in &sa {
            let p = p as usize;
            if p >= text_len || seen[p] {
                return Err(crate::StarError::CorruptIndex("suffix array is not a permutation".into()));
            }
            seen[p] = true;
        }
        Ok(SuffixArray { sa })
    }

    /// Number of suffixes (= text length).
    #[inline]
    pub fn len(&self) -> usize {
        self.sa.len()
    }

    /// True for an empty text.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sa.is_empty()
    }

    /// The suffix start position stored in slot `slot`.
    #[inline]
    pub fn suffix(&self, slot: u32) -> u32 {
        self.sa[slot as usize]
    }

    /// The raw sorted positions.
    pub fn positions(&self) -> &[u32] {
        &self.sa
    }

    /// The interval covering the whole array.
    #[inline]
    pub fn full(&self) -> SaInterval {
        SaInterval { lo: 0, hi: self.sa.len() as u32 }
    }

    /// Narrow `iv` — whose suffixes all share some prefix of length `depth` — to the
    /// sub-interval whose suffixes continue with base code `c` at offset `depth`.
    ///
    /// Suffixes too short to have a base at `depth` sort at the front of the interval
    /// and are excluded. Two binary searches, O(log |iv|).
    pub fn refine(&self, seq: &Packed2, iv: SaInterval, depth: usize, c: u8) -> SaInterval {
        // Rank of the character at `depth` for the suffix in a slot: end-of-text
        // (suffix too short) ranks below every base.
        let n = seq.len();
        let char_at = |slot: u32| -> i16 {
            let pos = self.sa[slot as usize] as usize + depth;
            if pos < n {
                seq.get(pos) as i16
            } else {
                -1
            }
        };
        let target = c as i16;
        // Lower bound: first slot with char >= target.
        let lo = lower_bound(iv.lo, iv.hi, |s| char_at(s) >= target);
        // Upper bound: first slot with char > target.
        let hi = lower_bound(lo, iv.hi, |s| char_at(s) > target);
        SaInterval { lo, hi }
    }

    /// Find the SA interval of all suffixes starting with `pattern` (empty pattern →
    /// full interval). Convenience wrapper over repeated [`SuffixArray::refine`].
    pub fn find(&self, seq: &Packed2, pattern: &[u8]) -> SaInterval {
        let mut iv = self.full();
        for (depth, &c) in pattern.iter().enumerate() {
            iv = self.refine(seq, iv, depth, c);
            if iv.is_empty() {
                break;
            }
        }
        iv
    }

    /// Bytes of memory/disk this structure occupies (4 bytes per suffix).
    pub fn byte_size(&self) -> usize {
        self.sa.len() * std::mem::size_of::<u32>()
    }
}

/// Sentinel slot value for "not yet induced" during SA-IS passes.
const EMPTY: u32 = u32::MAX;

/// SA-IS core (Nong–Zhang–Chan). `text` must end with a unique smallest value 0
/// (the sentinel) and every value must be `< sigma`. Returns the suffix array of
/// `text` including the sentinel suffix (which always lands in slot 0).
fn sa_is(text: &[u32], sigma: usize) -> Vec<u32> {
    let n = text.len();
    if n == 1 {
        return vec![0];
    }
    // Type scan: suffix i is S-type when it sorts before suffix i+1.
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = text[i] < text[i + 1] || (text[i] == text[i + 1] && is_s[i + 1]);
    }
    // Character bucket sizes.
    let mut bucket = vec![0u32; sigma];
    for &c in text {
        bucket[c as usize] += 1;
    }

    // Pass 1: drop LMS suffixes at their bucket tails (any relative order), then
    // induce. This sorts the LMS *substrings*.
    let mut sa = vec![EMPTY; n];
    let mut tails = bucket_tails(&bucket);
    for i in 1..n {
        if is_s[i] && !is_s[i - 1] {
            let c = text[i] as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = i as u32;
        }
    }
    induce(text, &mut sa, &is_s, &bucket);

    // Name LMS substrings by their rank in the induced order; equal substrings
    // share a name so the recursion sees them as one character.
    let mut name = vec![EMPTY; n];
    let mut prev = usize::MAX;
    let mut last_name = 0u32;
    for &p in sa.iter() {
        let p = p as usize;
        if p > 0 && is_s[p] && !is_s[p - 1] {
            if prev != usize::MAX && !lms_substrings_equal(text, &is_s, prev, p) {
                last_name += 1;
            }
            name[p] = last_name;
            prev = p;
        }
    }
    // Reduced string: names in text order. Its last entry is the sentinel's LMS
    // (position n-1), whose name is 0 and unique — the recursion's sentinel.
    let lms_positions: Vec<u32> =
        (1..n).filter(|&i| is_s[i] && !is_s[i - 1]).map(|i| i as u32).collect();
    let reduced: Vec<u32> = lms_positions.iter().map(|&p| name[p as usize]).collect();
    let num_names = last_name as usize + 1;
    let sa1: Vec<u32> = if num_names == reduced.len() {
        // All names unique: the reduced SA is just the inverse permutation.
        let mut sa1 = vec![0u32; reduced.len()];
        for (i, &nm) in reduced.iter().enumerate() {
            sa1[nm as usize] = i as u32;
        }
        sa1
    } else {
        sa_is(&reduced, num_names)
    };

    // Pass 2: drop LMS suffixes in their now-exact order (reverse, so tails fill
    // back-to-front keeps them sorted) and induce the final array.
    sa.fill(EMPTY);
    let mut tails = bucket_tails(&bucket);
    for &r in sa1.iter().rev() {
        let p = lms_positions[r as usize];
        let c = text[p as usize] as usize;
        tails[c] -= 1;
        sa[tails[c] as usize] = p;
    }
    induce(text, &mut sa, &is_s, &bucket);
    sa
}

/// Induced sorting: scatter L-type suffixes left-to-right from bucket heads, then
/// S-type right-to-left from bucket tails. Given correctly ordered LMS seeds this
/// yields the fully sorted array; given unordered seeds it sorts LMS substrings.
fn induce(text: &[u32], sa: &mut [u32], is_s: &[bool], bucket: &[u32]) {
    let n = text.len();
    let mut heads = bucket_heads(bucket);
    for i in 0..n {
        let p = sa[i];
        if p == EMPTY || p == 0 {
            continue;
        }
        let j = (p - 1) as usize;
        if !is_s[j] {
            let c = text[j] as usize;
            sa[heads[c] as usize] = j as u32;
            heads[c] += 1;
        }
    }
    let mut tails = bucket_tails(bucket);
    for i in (0..n).rev() {
        let p = sa[i];
        if p == EMPTY || p == 0 {
            continue;
        }
        let j = (p - 1) as usize;
        if is_s[j] {
            let c = text[j] as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = j as u32;
        }
    }
}

/// Compare the LMS substrings starting at `a` and `b` (char-and-type-wise, up to
/// and including the next LMS position). The unique sentinel only equals itself.
fn lms_substrings_equal(text: &[u32], is_s: &[bool], a: usize, b: usize) -> bool {
    let n = text.len();
    if a == n - 1 || b == n - 1 {
        return a == b;
    }
    let mut i = 0usize;
    loop {
        let (pa, pb) = (a + i, b + i);
        if text[pa] != text[pb] || is_s[pa] != is_s[pb] {
            return false;
        }
        if i > 0 && is_s[pa] && !is_s[pa - 1] {
            // Both hit their closing LMS position simultaneously (types matched at
            // every prior offset, so `b + i` is LMS exactly when `a + i` is).
            return true;
        }
        i += 1;
    }
}

/// Start slot of each character's bucket.
fn bucket_heads(bucket: &[u32]) -> Vec<u32> {
    let mut heads = vec![0u32; bucket.len()];
    let mut sum = 0u32;
    for (h, &b) in heads.iter_mut().zip(bucket) {
        *h = sum;
        sum += b;
    }
    heads
}

/// One-past-the-end slot of each character's bucket.
fn bucket_tails(bucket: &[u32]) -> Vec<u32> {
    let mut tails = vec![0u32; bucket.len()];
    let mut sum = 0u32;
    for (t, &b) in tails.iter_mut().zip(bucket) {
        sum += b;
        *t = sum;
    }
    tails
}

/// First slot in `[lo, hi)` satisfying monotone predicate `pred` (or `hi`).
fn lower_bound(lo: u32, hi: u32, pred: impl Fn(u32) -> bool) -> u32 {
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomics::DnaSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference: sort suffixes naively.
    fn naive_sa(codes: &[u8]) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..codes.len() as u32).collect();
        idx.sort_by(|&a, &b| codes[a as usize..].cmp(&codes[b as usize..]));
        idx
    }

    #[test]
    fn matches_naive_on_known_string() {
        // "banana" in base codes: use ACGT alphabet — "ACGACA" style.
        let s: DnaSeq = "ACGACGTACG".parse().unwrap();
        let sa = SuffixArray::build(s.codes());
        assert_eq!(sa.positions(), naive_sa(s.codes()).as_slice());
    }

    #[test]
    fn matches_naive_on_random_strings() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [1usize, 2, 5, 17, 100, 1000] {
            let s = DnaSeq::random(&mut rng, len);
            let sa = SuffixArray::build(s.codes());
            assert_eq!(sa.positions(), naive_sa(s.codes()).as_slice(), "len {len}");
        }
    }

    #[test]
    fn handles_homopolymer_worst_case() {
        // All-equal text maximizes prefix-doubling rounds.
        let codes = vec![0u8; 500];
        let sa = SuffixArray::build(&codes);
        // Suffixes of AAAA... sort shortest-first: positions n-1, n-2, ..., 0.
        let expect: Vec<u32> = (0..500u32).rev().collect();
        assert_eq!(sa.positions(), expect.as_slice());
    }

    #[test]
    fn sais_and_prefix_doubling_agree_on_random_genomes() {
        let mut rng = StdRng::seed_from_u64(41);
        for len in [1usize, 2, 3, 7, 64, 257, 1000, 5000] {
            let s = DnaSeq::random(&mut rng, len);
            let fast = SuffixArray::build(s.codes());
            let oracle = SuffixArray::build_prefix_doubling(s.codes());
            assert_eq!(fast.positions(), oracle.positions(), "len {len}");
        }
    }

    #[test]
    fn sais_and_prefix_doubling_agree_on_adversarial_texts() {
        // All-A: maximal bucket collisions, every suffix a prefix of the next.
        let all_a = vec![0u8; 777];
        assert_eq!(
            SuffixArray::build(&all_a).positions(),
            SuffixArray::build_prefix_doubling(&all_a).positions()
        );
        // Short-period texts: ACACAC…, ACGACG…, AACAAC… force deep LMS recursion
        // because every LMS substring looks identical.
        for period in [&[0u8, 1][..], &[0, 1, 2], &[0, 0, 1], &[3, 2, 1, 0]] {
            let text: Vec<u8> = period.iter().copied().cycle().take(600).collect();
            assert_eq!(
                SuffixArray::build(&text).positions(),
                SuffixArray::build_prefix_doubling(&text).positions(),
                "period {period:?}"
            );
        }
    }

    #[test]
    fn sais_and_prefix_doubling_agree_on_duplicated_scaffold() {
        // The paper's release-108 motif: the same scaffold sequence appearing
        // twice in the assembly, giving long exact repeats in the packed genome.
        let mut rng = StdRng::seed_from_u64(108);
        let scaffold = DnaSeq::random(&mut rng, 400);
        let spacer = DnaSeq::random(&mut rng, 37);
        let mut genome: Vec<u8> = Vec::new();
        genome.extend_from_slice(scaffold.codes());
        genome.extend_from_slice(spacer.codes());
        genome.extend_from_slice(scaffold.codes());
        let fast = SuffixArray::build(&genome);
        let oracle = SuffixArray::build_prefix_doubling(&genome);
        assert_eq!(fast.positions(), oracle.positions());
        assert_eq!(fast.positions(), naive_sa(&genome).as_slice());
    }

    #[test]
    fn find_locates_all_occurrences() {
        let s: DnaSeq = "ACGTACGTTACG".parse().unwrap();
        let packed = Packed2::from_codes(s.codes());
        let sa = SuffixArray::build(s.codes());
        let pat: DnaSeq = "ACG".parse().unwrap();
        let iv = sa.find(&packed, pat.codes());
        let mut hits: Vec<u32> = (iv.lo..iv.hi).map(|slot| sa.suffix(slot)).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 4, 9]);
        // Absent pattern.
        let none: DnaSeq = "GGGG".parse().unwrap();
        assert!(sa.find(&packed, none.codes()).is_empty());
        // Empty pattern = everything.
        assert_eq!(sa.find(&packed, &[]).size() as usize, s.len());
    }

    #[test]
    fn refine_excludes_too_short_suffixes() {
        let s: DnaSeq = "TTT".parse().unwrap();
        let sa = SuffixArray::build(s.codes());
        // Suffixes: "T"(2) < "TT"(1) < "TTT"(0). Searching "TT" must hit slots {1,2}.
        let pat: DnaSeq = "TT".parse().unwrap();
        let iv = sa.find(&Packed2::from_codes(s.codes()), pat.codes());
        assert_eq!(iv.size(), 2);
        let mut hits: Vec<u32> = (iv.lo..iv.hi).map(|s_| sa.suffix(s_)).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn from_raw_rejects_corruption() {
        let s: DnaSeq = "ACGT".parse().unwrap();
        let sa = SuffixArray::build(s.codes());
        let good = sa.positions().to_vec();
        assert!(SuffixArray::from_raw(good.clone(), 4).is_ok());
        assert!(SuffixArray::from_raw(good.clone(), 5).is_err());
        let mut dup = good.clone();
        dup[0] = dup[1];
        assert!(SuffixArray::from_raw(dup, 4).is_err());
        let mut oob = good;
        oob[0] = 99;
        assert!(SuffixArray::from_raw(oob, 4).is_err());
    }

    #[test]
    fn empty_text_is_fine() {
        let sa = SuffixArray::build(&[]);
        assert!(sa.is_empty());
        assert!(sa.find(&Packed2::from_codes(&[]), &[0]).is_empty());
    }

    #[test]
    fn byte_size_counts_entries() {
        let s: DnaSeq = "ACGTACGT".parse().unwrap();
        let sa = SuffixArray::build(s.codes());
        assert_eq!(sa.byte_size(), 32);
    }
}
