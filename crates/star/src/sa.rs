//! Uncompressed suffix array — STAR's central index structure.
//!
//! Built with prefix doubling (Manber–Myers): O(n log n) rounds of a rayon-parallel
//! sort. STAR likewise keeps its suffix array *uncompressed* to trade memory for
//! search speed, which is exactly why index size matters so much in the paper (85 GiB
//! for the release-108 human toplevel genome) and why shrinking the genome shrinks the
//! instance-memory requirement.
//!
//! Search is interval refinement: an interval of the SA whose suffixes share a prefix
//! is narrowed one base at a time via binary search ([`SuffixArray::refine`]), the
//! primitive that the MMP seed search builds on.

use rayon::prelude::*;

/// An interval `[lo, hi)` of suffix-array slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SaInterval {
    pub lo: u32,
    pub hi: u32,
}

impl SaInterval {
    /// Number of suffixes in the interval.
    #[inline]
    pub fn size(&self) -> u32 {
        self.hi - self.lo
    }

    /// True when the interval contains no suffixes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }
}

/// The suffix array: all suffix start positions, lexicographically sorted.
///
/// A shorter suffix that is a prefix of a longer one sorts first (standard suffix
/// order with an implicit end-of-text sentinel smaller than every base).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuffixArray {
    sa: Vec<u32>,
}

impl SuffixArray {
    /// Build the suffix array of `codes` (2-bit base codes, one per byte).
    ///
    /// Prefix doubling: ranks start as the codes themselves; each round sorts by
    /// `(rank[i], rank[i+k])` and re-ranks, doubling `k`, until all ranks are unique.
    pub fn build(codes: &[u8]) -> SuffixArray {
        let n = codes.len();
        assert!(n < u32::MAX as usize, "genome too large for u32 suffix array");
        if n == 0 {
            return SuffixArray { sa: Vec::new() };
        }
        let mut sa: Vec<u32> = (0..n as u32).collect();
        // rank[i] = rank of suffix i by its first k characters; start with k = 1.
        let mut rank: Vec<u32> = codes.iter().map(|&c| c as u32 + 1).collect();
        let mut key: Vec<u64> = vec![0; n];
        let mut k = 1usize;
        loop {
            // Composite key: (rank[i], rank[i+k]); missing second half sorts first.
            key.par_iter_mut().enumerate().for_each(|(i, dst)| {
                let r1 = rank[i] as u64;
                let r2 = if i + k < n { rank[i + k] as u64 } else { 0 };
                *dst = (r1 << 32) | r2;
            });
            sa.par_sort_unstable_by_key(|&i| key[i as usize]);
            // Re-rank: equal keys share a rank.
            let mut next_rank = vec![0u32; n];
            let mut r = 1u32;
            next_rank[sa[0] as usize] = r;
            for w in sa.windows(2) {
                let (a, b) = (w[0] as usize, w[1] as usize);
                if key[a] != key[b] {
                    r += 1;
                }
                next_rank[b] = r;
            }
            rank = next_rank;
            if r as usize == n {
                break; // all suffixes distinguished
            }
            k *= 2;
            debug_assert!(k < 2 * n, "prefix doubling failed to converge");
        }
        SuffixArray { sa }
    }

    /// Reconstruct from a previously serialized position vector, validating that it
    /// is a permutation of `0..len` (full lexicographic validation is the caller's
    /// concern; this catches corruption cheaply).
    pub(crate) fn from_raw(sa: Vec<u32>, text_len: usize) -> Result<SuffixArray, crate::StarError> {
        if sa.len() != text_len {
            return Err(crate::StarError::CorruptIndex(format!(
                "suffix array has {} entries for text of length {text_len}",
                sa.len()
            )));
        }
        let mut seen = vec![false; text_len];
        for &p in &sa {
            let p = p as usize;
            if p >= text_len || seen[p] {
                return Err(crate::StarError::CorruptIndex("suffix array is not a permutation".into()));
            }
            seen[p] = true;
        }
        Ok(SuffixArray { sa })
    }

    /// Number of suffixes (= text length).
    #[inline]
    pub fn len(&self) -> usize {
        self.sa.len()
    }

    /// True for an empty text.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sa.is_empty()
    }

    /// The suffix start position stored in slot `slot`.
    #[inline]
    pub fn suffix(&self, slot: u32) -> u32 {
        self.sa[slot as usize]
    }

    /// The raw sorted positions.
    pub fn positions(&self) -> &[u32] {
        &self.sa
    }

    /// The interval covering the whole array.
    #[inline]
    pub fn full(&self) -> SaInterval {
        SaInterval { lo: 0, hi: self.sa.len() as u32 }
    }

    /// Narrow `iv` — whose suffixes all share some prefix of length `depth` — to the
    /// sub-interval whose suffixes continue with base code `c` at offset `depth`.
    ///
    /// Suffixes too short to have a base at `depth` sort at the front of the interval
    /// and are excluded. Two binary searches, O(log |iv|).
    pub fn refine(&self, codes: &[u8], iv: SaInterval, depth: usize, c: u8) -> SaInterval {
        // Rank of the character at `depth` for the suffix in a slot: end-of-text
        // (suffix too short) ranks below every base.
        let char_at = |slot: u32| -> i16 {
            let pos = self.sa[slot as usize] as usize + depth;
            if pos < codes.len() {
                codes[pos] as i16
            } else {
                -1
            }
        };
        let target = c as i16;
        // Lower bound: first slot with char >= target.
        let lo = lower_bound(iv.lo, iv.hi, |s| char_at(s) >= target);
        // Upper bound: first slot with char > target.
        let hi = lower_bound(lo, iv.hi, |s| char_at(s) > target);
        SaInterval { lo, hi }
    }

    /// Find the SA interval of all suffixes starting with `pattern` (empty pattern →
    /// full interval). Convenience wrapper over repeated [`SuffixArray::refine`].
    pub fn find(&self, codes: &[u8], pattern: &[u8]) -> SaInterval {
        let mut iv = self.full();
        for (depth, &c) in pattern.iter().enumerate() {
            iv = self.refine(codes, iv, depth, c);
            if iv.is_empty() {
                break;
            }
        }
        iv
    }

    /// Bytes of memory/disk this structure occupies (4 bytes per suffix).
    pub fn byte_size(&self) -> usize {
        self.sa.len() * std::mem::size_of::<u32>()
    }
}

/// First slot in `[lo, hi)` satisfying monotone predicate `pred` (or `hi`).
fn lower_bound(lo: u32, hi: u32, pred: impl Fn(u32) -> bool) -> u32 {
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomics::DnaSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference: sort suffixes naively.
    fn naive_sa(codes: &[u8]) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..codes.len() as u32).collect();
        idx.sort_by(|&a, &b| codes[a as usize..].cmp(&codes[b as usize..]));
        idx
    }

    #[test]
    fn matches_naive_on_known_string() {
        // "banana" in base codes: use ACGT alphabet — "ACGACA" style.
        let s: DnaSeq = "ACGACGTACG".parse().unwrap();
        let sa = SuffixArray::build(s.codes());
        assert_eq!(sa.positions(), naive_sa(s.codes()).as_slice());
    }

    #[test]
    fn matches_naive_on_random_strings() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [1usize, 2, 5, 17, 100, 1000] {
            let s = DnaSeq::random(&mut rng, len);
            let sa = SuffixArray::build(s.codes());
            assert_eq!(sa.positions(), naive_sa(s.codes()).as_slice(), "len {len}");
        }
    }

    #[test]
    fn handles_homopolymer_worst_case() {
        // All-equal text maximizes prefix-doubling rounds.
        let codes = vec![0u8; 500];
        let sa = SuffixArray::build(&codes);
        // Suffixes of AAAA... sort shortest-first: positions n-1, n-2, ..., 0.
        let expect: Vec<u32> = (0..500u32).rev().collect();
        assert_eq!(sa.positions(), expect.as_slice());
    }

    #[test]
    fn find_locates_all_occurrences() {
        let s: DnaSeq = "ACGTACGTTACG".parse().unwrap();
        let sa = SuffixArray::build(s.codes());
        let pat: DnaSeq = "ACG".parse().unwrap();
        let iv = sa.find(s.codes(), pat.codes());
        let mut hits: Vec<u32> = (iv.lo..iv.hi).map(|slot| sa.suffix(slot)).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 4, 9]);
        // Absent pattern.
        let none: DnaSeq = "GGGG".parse().unwrap();
        assert!(sa.find(s.codes(), none.codes()).is_empty());
        // Empty pattern = everything.
        assert_eq!(sa.find(s.codes(), &[]).size() as usize, s.len());
    }

    #[test]
    fn refine_excludes_too_short_suffixes() {
        let s: DnaSeq = "TTT".parse().unwrap();
        let sa = SuffixArray::build(s.codes());
        // Suffixes: "T"(2) < "TT"(1) < "TTT"(0). Searching "TT" must hit slots {1,2}.
        let pat: DnaSeq = "TT".parse().unwrap();
        let iv = sa.find(s.codes(), pat.codes());
        assert_eq!(iv.size(), 2);
        let mut hits: Vec<u32> = (iv.lo..iv.hi).map(|s_| sa.suffix(s_)).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn from_raw_rejects_corruption() {
        let s: DnaSeq = "ACGT".parse().unwrap();
        let sa = SuffixArray::build(s.codes());
        let good = sa.positions().to_vec();
        assert!(SuffixArray::from_raw(good.clone(), 4).is_ok());
        assert!(SuffixArray::from_raw(good.clone(), 5).is_err());
        let mut dup = good.clone();
        dup[0] = dup[1];
        assert!(SuffixArray::from_raw(dup, 4).is_err());
        let mut oob = good;
        oob[0] = 99;
        assert!(SuffixArray::from_raw(oob, 4).is_err());
    }

    #[test]
    fn empty_text_is_fine() {
        let sa = SuffixArray::build(&[]);
        assert!(sa.is_empty());
        assert!(sa.find(&[], &[0]).is_empty());
    }

    #[test]
    fn byte_size_counts_entries() {
        let s: DnaSeq = "ACGTACGT".parse().unwrap();
        let sa = SuffixArray::build(s.codes());
        assert_eq!(sa.byte_size(), 32);
    }
}
