//! Per-read alignment driver.
//!
//! [`Aligner::align_seq`] runs the full STAR-style pipeline for one read: seed both
//! orientations, window/stitch, extend every candidate chain, then apply STAR's
//! output filters (`--outFilterMatchNminOverLread`, `--outFilterMismatchNoverLmax`,
//! `--outFilterMultimapNmax`) and classify the read as uniquely mapped, multimapped,
//! mapped-to-too-many-loci, or unmapped.

use crate::extend::{extend_chain_into, WindowAlignment};
use crate::hashseed::HashSeedIndex;
use crate::index::StarIndex;
use crate::params::AlignParams;
use crate::prefix::PrefixTable;
use crate::scratch::{with_thread_scratch, AlignScratch, CandSet, ScratchCore};
use crate::seed::collect_seeds_packed;
use crate::sjdb::SpliceClass;
use crate::stitch::best_chains_into;
use genomics::{DnaSeq, FastqRecord};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// CIGAR-lite operation (substitution-only model: no I/D).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CigarOp {
    /// Aligned bases (matches + substitutions).
    M(u32),
    /// Intron skip.
    N(u32),
    /// Soft clip.
    S(u32),
}

impl fmt::Display for CigarOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CigarOp::M(n) => write!(f, "{n}M"),
            CigarOp::N(n) => write!(f, "{n}N"),
            CigarOp::S(n) => write!(f, "{n}S"),
        }
    }
}

/// Render a CIGAR vector as the usual compact string, e.g. `"5S45M400N50M"`.
pub fn cigar_string(ops: &[CigarOp]) -> String {
    ops.iter().map(|op| op.to_string()).collect()
}

/// Mapping classification, STAR `Log.final.out` vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapClass {
    /// Exactly one best locus.
    Unique,
    /// 2..=`outFilterMultimapNmax` loci (payload: locus count).
    Multi(u32),
    /// More loci than `outFilterMultimapNmax` (payload: locus count).
    TooMany(u32),
    /// No alignment passed the filters.
    Unmapped,
}

impl MapClass {
    /// Does this read count as "mapped" in the `Log.progress.out` mapped-% statistic
    /// (the quantity early stopping thresholds on)? Unique + multi do; too-many and
    /// unmapped do not, matching STAR's progress accounting.
    pub fn is_mapped(&self) -> bool {
        matches!(self, MapClass::Unique | MapClass::Multi(_))
    }
}

/// The primary alignment of a mapped read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlignmentRecord {
    /// Read identifier (empty when aligning a bare sequence).
    pub read_id: String,
    /// Contig name (interned: cloning is an atomic refcount bump, not a heap copy).
    pub contig: Arc<str>,
    /// 0-based position on the contig of the first aligned base.
    pub pos: u64,
    /// True when the read aligned as its reverse complement.
    pub reverse: bool,
    /// CIGAR-lite operations.
    pub cigar: Vec<CigarOp>,
    /// Alignment score.
    pub score: i32,
    /// Mismatches in the aligned region.
    pub mismatches: u32,
    /// Number of loci the read mapped to (1 = unique).
    pub n_hits: u32,
    /// SAM-style mapping quality: 255 unique, 3 for 2 loci, 1 for 3–4, 0 beyond.
    pub mapq: u8,
    /// Splice junctions used, in contig-local coordinates with classification.
    pub junctions: Vec<(u64, u64, SpliceClass)>,
}

/// Work done per alignment phase, in abstract units (seeds collected, chains
/// stitched, extensions run). Purely a *measurement* — it never affects alignment
/// results — and it is thread-count invariant, so telemetry built from it replays
/// identically across runs. The atlas pipeline uses the unit ratios to split the
/// modeled `align` span into `align/seed`, `align/stitch`, and `align/extend`
/// sub-spans.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseWork {
    /// Seeds collected across both orientations.
    pub seed_units: u64,
    /// Candidate chains produced by stitching.
    pub stitch_units: u64,
    /// Chain extensions attempted.
    pub extend_units: u64,
    /// Measured wall-clock nanoseconds in the seed phase. Zero unless
    /// [`crate::AlignParams::measure_phase_nanos`] is on; machine-dependent and
    /// NOT deterministic, so nothing modeled may read it.
    pub seed_nanos: u64,
    /// Measured wall-clock nanoseconds in the stitch phase (see `seed_nanos`).
    pub stitch_nanos: u64,
    /// Measured wall-clock nanoseconds in the extend phase (see `seed_nanos`).
    pub extend_nanos: u64,
}

impl PhaseWork {
    /// Accumulate another read's work.
    pub fn add(&mut self, other: &PhaseWork) {
        self.seed_units += other.seed_units;
        self.stitch_units += other.stitch_units;
        self.extend_units += other.extend_units;
        self.seed_nanos += other.seed_nanos;
        self.stitch_nanos += other.stitch_nanos;
        self.extend_nanos += other.extend_nanos;
    }

    /// Total units across all phases.
    pub fn total(&self) -> u64 {
        self.seed_units + self.stitch_units + self.extend_units
    }

    /// `(seed, stitch, extend)` as fractions of the total (zeros when no work).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.total();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.seed_units as f64 / t,
            self.stitch_units as f64 / t,
            self.extend_units as f64 / t,
        )
    }

    /// Total measured nanoseconds (zero when measurement was off).
    pub fn nanos_total(&self) -> u64 {
        self.seed_nanos + self.stitch_nanos + self.extend_nanos
    }

    /// Collapsed-stack (flamegraph `folds`) dump of the phase attribution:
    /// one `root;phase weight` line per phase, lexicographic phase order,
    /// zero-weight phases skipped. Weights are measured microseconds when
    /// [`crate::AlignParams::measure_phase_nanos`] was on, abstract work units
    /// otherwise — so the dump is useful both for modeled and measured runs.
    /// Pipe to `flamegraph.pl` / `inferno-flamegraph` as-is.
    pub fn collapsed_stacks(&self, root: &str) -> String {
        let measured = self.nanos_total() > 0;
        let rows = [
            ("extend", self.extend_nanos / 1_000, self.extend_units),
            ("seed", self.seed_nanos / 1_000, self.seed_units),
            ("stitch", self.stitch_nanos / 1_000, self.stitch_units),
        ];
        let mut out = String::new();
        for (name, micros, units) in rows {
            let weight = if measured { micros } else { units };
            if weight > 0 {
                out.push_str(&format!("{root};{name} {weight}\n"));
            }
        }
        out
    }
}

/// Zero-cost-when-off wall-clock timer for phase attribution. Disabled, both
/// methods are a branch on a bool — the hot path never touches the clock.
#[derive(Clone, Copy)]
struct PhaseTimer {
    enabled: bool,
}

impl PhaseTimer {
    fn new(enabled: bool) -> PhaseTimer {
        PhaseTimer { enabled }
    }

    fn start(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    fn stop(&self, started: Option<Instant>, acc: &mut u64) {
        if let Some(t) = started {
            *acc += t.elapsed().as_nanos() as u64;
        }
    }
}

/// Outcome of aligning one read.
#[derive(Clone, Debug)]
pub struct AlignOutcome {
    /// Classification after filters.
    pub class: MapClass,
    /// The primary (best-scoring) alignment when mapped (also populated for
    /// `TooMany`, mirroring STAR's optional reporting; `None` when unmapped).
    pub primary: Option<AlignmentRecord>,
    /// Candidate loci inspected before filtering — a *work* measure: this is the
    /// quantity the release-108 index inflates (extension runs once per candidate).
    pub candidates_examined: u32,
    /// Per-phase work units spent on this read.
    pub work: PhaseWork,
}

impl AlignOutcome {
    /// True when the read counts as mapped for progress statistics.
    pub fn is_mapped(&self) -> bool {
        self.class.is_mapped()
    }
}

/// STAR-style mapping quality from the locus count.
fn mapq_for(n_hits: u32) -> u8 {
    match n_hits {
        1 => 255,
        2 => 3,
        3 | 4 => 1,
        _ => 0,
    }
}

/// The per-read aligner, borrowing an index.
pub struct Aligner<'i> {
    index: &'i StarIndex,
    params: AlignParams,
    /// Interned contig names, indexed like `genome().spans()`.
    contig_names: Vec<Arc<str>>,
    /// Deeper runtime-only prefix tables cached on the index (deepest first);
    /// never serialized, never change search results (see [`PrefixTable::deepen`]).
    deep_prefix: &'i [PrefixTable],
    /// SNAP-style hash seeding table, present when
    /// [`AlignParams::use_hash_seed`] is set; cached on the index like the deep
    /// prefix tables and equally invisible in the results.
    hash_seed: Option<&'i HashSeedIndex>,
}

impl<'i> Aligner<'i> {
    /// Create an aligner. Panics if `params` are invalid (validate first if unsure).
    pub fn new(index: &'i StarIndex, params: AlignParams) -> Aligner<'i> {
        params.validate().expect("invalid alignment parameters");
        let contig_names =
            index.genome().spans().iter().map(|s| Arc::from(s.name.as_str())).collect();
        let hash_seed = params.use_hash_seed.then(|| index.hash_seed(params.hash_seed_len));
        Aligner { index, params, contig_names, deep_prefix: index.deep_prefix(), hash_seed }
    }

    /// The parameters in use.
    pub fn params(&self) -> &AlignParams {
        &self.params
    }

    /// The index in use.
    pub fn index(&self) -> &'i StarIndex {
        self.index
    }

    /// Align a FASTQ record (read id propagated into the record).
    pub fn align_read(&self, read: &FastqRecord) -> AlignOutcome {
        let mut out = self.align_seq(&read.seq);
        if let Some(rec) = &mut out.primary {
            rec.read_id = read.id.clone();
        }
        out
    }

    /// Align a FASTQ record without cloning its id into the record. The caller (the
    /// run driver) attaches ids afterwards, and only when records are actually kept.
    /// `materialize: false` skips building the [`AlignmentRecord`] entirely (class,
    /// work, and candidate counts are still exact).
    pub(crate) fn align_read_lean(&self, read: &FastqRecord, materialize: bool) -> AlignOutcome {
        with_thread_scratch(|scratch| self.align_seq_with(&read.seq, scratch, materialize))
    }

    /// Enumerate deduplicated candidate window alignments for a read, both
    /// orientations, into pooled buffers. Shared by single-end and paired-end
    /// alignment. After return, `out` holds candidates ordered by
    /// `(strand, gstart)` with exactly one (best-scoring, earliest-found) entry per
    /// locus — identical contents and order to the historical sort+dedup on a fresh
    /// `Vec`.
    pub(crate) fn candidates_into(
        &self,
        seq: &DnaSeq,
        core: &mut ScratchCore,
        out: &mut CandSet,
    ) -> PhaseWork {
        out.clear();
        let read_len = seq.len();
        let mut work = PhaseWork::default();
        if read_len == 0 {
            return work;
        }
        let genome = self.index.genome();
        let ScratchCore { rc, fwd, rcp, seeds, probe, stitch, chains } = core;
        rc.clear();
        rc.extend(seq.codes().iter().rev().map(|&c| 3 - c));
        fwd.pack_codes(seq.codes());
        rcp.pack_codes(rc);
        let timer = PhaseTimer::new(self.params.measure_phase_nanos);
        for (is_rc, read) in [(false, &*fwd), (true, &*rcp)] {
            let t = timer.start();
            collect_seeds_packed(
                self.index,
                self.deep_prefix,
                self.hash_seed,
                read,
                &self.params,
                seeds,
                probe,
            );
            timer.stop(t, &mut work.seed_nanos);
            work.seed_units += seeds.len() as u64;
            let t = timer.start();
            best_chains_into(seeds, read_len, &self.params, stitch, chains);
            timer.stop(t, &mut work.stitch_nanos);
            work.stitch_units += chains.len as u64;
            let t = timer.start();
            for chain in chains.live() {
                // Chains must stay within one contig (stitching across the
                // concatenation boundary is meaningless).
                let span_len = chain.gend() - chain.gstart();
                if !genome.fits_in_contig(chain.gstart(), span_len) {
                    continue;
                }
                work.extend_units += 1;
                let wa = out.slot(is_rc);
                if extend_chain_into(chain, read, genome, self.index.sjdb(), &self.params, wa) {
                    out.commit();
                }
            }
            timer.stop(t, &mut work.extend_nanos);
        }
        out.finalize();
        work
    }

    /// Build the public record for a candidate (contig-local coordinates).
    pub(crate) fn record_for(&self, is_rc: bool, wa: &WindowAlignment, n_hits: u32) -> AlignmentRecord {
        let genome = self.index.genome();
        let (contig_idx, local) = genome.to_local(wa.gstart);
        let span = &genome.spans()[contig_idx];
        AlignmentRecord {
            read_id: String::new(),
            contig: self.contig_names[contig_idx].clone(),
            pos: local,
            reverse: is_rc,
            junctions: wa
                .junctions
                .iter()
                .map(|&(s, e, c)| (s - span.start, e - span.start, c))
                .collect(),
            cigar: wa.cigar.clone(),
            score: wa.score,
            mismatches: wa.mismatches,
            n_hits,
            mapq: mapq_for(n_hits),
        }
    }

    /// Does a candidate's best alignment pass the output filters?
    pub(crate) fn passes_filters(&self, wa: &WindowAlignment, read_len: usize) -> bool {
        let matched_frac = wa.matched() as f64 / read_len.max(1) as f64;
        let mm_frac = wa.mismatches as f64 / read_len.max(1) as f64;
        matched_frac >= self.params.min_matched_over_read_len
            && mm_frac <= self.params.max_mismatch_over_read_len
    }

    /// Align a bare sequence (uses this thread's scratch buffers).
    pub fn align_seq(&self, seq: &DnaSeq) -> AlignOutcome {
        with_thread_scratch(|scratch| self.align_seq_with(seq, scratch, true))
    }

    /// Align a bare sequence through caller-provided scratch buffers. With
    /// `materialize: false` the [`AlignmentRecord`] is skipped (classification,
    /// candidate counts, and phase work are still exact).
    pub fn align_seq_with(
        &self,
        seq: &DnaSeq,
        scratch: &mut AlignScratch,
        materialize: bool,
    ) -> AlignOutcome {
        let read_len = seq.len();
        if read_len == 0 {
            return AlignOutcome {
                class: MapClass::Unmapped,
                primary: None,
                candidates_examined: 0,
                work: PhaseWork::default(),
            };
        }
        let AlignScratch { core, cands, .. } = scratch;
        let work = self.candidates_into(seq, core, cands);
        let candidates_examined = cands.len() as u32;
        if cands.is_empty() {
            return AlignOutcome { class: MapClass::Unmapped, primary: None, candidates_examined, work };
        }

        let best_score = cands.iter().map(|(_, wa)| wa.score).max().expect("non-empty");
        let (best_rc, best_wa) = cands
            .iter()
            .find(|(_, wa)| wa.score == best_score)
            .expect("best exists");

        // Output filters (on the best alignment, like STAR).
        if !self.passes_filters(best_wa, read_len) {
            return AlignOutcome { class: MapClass::Unmapped, primary: None, candidates_examined, work };
        }

        let n_hits = cands
            .iter()
            .filter(|(_, wa)| wa.score + self.params.multimap_score_range >= best_score)
            .count() as u32;
        let class = if n_hits == 1 {
            MapClass::Unique
        } else if n_hits as usize <= self.params.out_filter_multimap_nmax {
            MapClass::Multi(n_hits)
        } else {
            MapClass::TooMany(n_hits)
        };

        let primary = materialize.then(|| self.record_for(*best_rc, best_wa, n_hits));
        AlignOutcome { class, primary, candidates_examined, work }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexParams;
    use genomics::annotation::{Annotation, Exon, Gene, Strand};
    use genomics::{Assembly, AssemblyKind, Contig, ContigKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_seq(seed: u64, len: usize) -> DnaSeq {
        DnaSeq::random(&mut StdRng::seed_from_u64(seed), len)
    }

    fn build_index<S: Into<String>>(contigs: Vec<(S, DnaSeq)>, ann: Annotation) -> StarIndex {
        let asm = Assembly {
            name: "T".into(),
            release: 1,
            kind: AssemblyKind::Toplevel,
            contigs: contigs
                .into_iter()
                .map(|(n, seq)| Contig { name: n.into(), kind: ContigKind::Chromosome, seq })
                .collect(),
        };
        StarIndex::build(&asm, &ann, &IndexParams::default()).unwrap()
    }

    #[test]
    fn unique_forward_read_maps_uniquely() {
        let chr = random_seq(1, 3000);
        let idx = build_index(vec![("1", chr.clone())], Annotation::default());
        let aligner = Aligner::new(&idx, AlignParams::default());
        let out = aligner.align_seq(&chr.subseq(1200, 1300));
        assert_eq!(out.class, MapClass::Unique);
        let rec = out.primary.unwrap();
        assert_eq!(&*rec.contig, "1");
        assert_eq!(rec.pos, 1200);
        assert!(!rec.reverse);
        assert_eq!(rec.mapq, 255);
        assert_eq!(cigar_string(&rec.cigar), "100M");
    }

    #[test]
    fn reverse_complement_read_maps_with_reverse_flag() {
        let chr = random_seq(2, 3000);
        let idx = build_index(vec![("1", chr.clone())], Annotation::default());
        let aligner = Aligner::new(&idx, AlignParams::default());
        let out = aligner.align_seq(&chr.subseq(500, 600).reverse_complement());
        assert_eq!(out.class, MapClass::Unique);
        let rec = out.primary.unwrap();
        assert_eq!(rec.pos, 500);
        assert!(rec.reverse);
    }

    #[test]
    fn duplicated_locus_classifies_as_multi() {
        let chr = random_seq(3, 2000);
        // Second contig duplicates a window of chromosome 1 (a "scaffold").
        let dup = chr.subseq(800, 1400);
        let idx = build_index(vec![("1", chr.clone()), ("KI1", dup)], Annotation::default());
        let aligner = Aligner::new(&idx, AlignParams::default());
        let out = aligner.align_seq(&chr.subseq(1000, 1100));
        match out.class {
            MapClass::Multi(n) => assert_eq!(n, 2),
            other => panic!("expected Multi(2), got {other:?}"),
        }
        assert!(out.is_mapped());
        let rec = out.primary.unwrap();
        assert_eq!(rec.mapq, 3);
    }

    #[test]
    fn too_many_loci_is_not_counted_mapped() {
        let unit = random_seq(4, 300);
        // 12 copies > default multimap cap of 10.
        let mut contigs = Vec::new();
        for i in 0..12 {
            contigs.push((format!("c{i}"), unit.clone()));
        }
        let idx = build_index(contigs, Annotation::default());
        let aligner = Aligner::new(&idx, AlignParams::default());
        let out = aligner.align_seq(&unit.subseq(100, 200));
        match out.class {
            MapClass::TooMany(n) => assert_eq!(n, 12),
            other => panic!("expected TooMany, got {other:?}"),
        }
        assert!(!out.is_mapped());
        assert_eq!(out.primary.as_ref().unwrap().mapq, 0);
    }

    #[test]
    fn junk_read_is_unmapped() {
        let chr = random_seq(5, 3000);
        let idx = build_index(vec![("1", chr)], Annotation::default());
        let aligner = Aligner::new(&idx, AlignParams::default());
        for junk in [
            DnaSeq::from_codes(vec![0; 100]),          // poly-A
            random_seq(999, 100),                      // random 100-mer, absent
        ] {
            let out = aligner.align_seq(&junk);
            assert_eq!(out.class, MapClass::Unmapped, "junk {junk:?}");
            assert!(out.primary.is_none());
        }
    }

    #[test]
    fn low_identity_read_fails_match_fraction_filter() {
        let chr = random_seq(6, 3000);
        let idx = build_index(vec![("1", chr.clone())], Annotation::default());
        let aligner = Aligner::new(&idx, AlignParams::default());
        // 40 genomic bases + 60 random: matched fraction ~0.4 < 0.66.
        let mut read = chr.subseq(100, 140);
        read.extend_from(&random_seq(1234, 60));
        let out = aligner.align_seq(&read);
        assert_eq!(out.class, MapClass::Unmapped);
    }

    #[test]
    fn spliced_read_reports_local_junction_coordinates() {
        let chr = random_seq(7, 5000);
        let gene = Gene {
            id: "G".into(),
            contig: "1".into(),
            strand: Strand::Forward,
            exons: vec![Exon { start: 2000, end: 2100 }, Exon { start: 2600, end: 2700 }],
        };
        let idx = build_index(vec![("1", chr.clone())], Annotation { genes: vec![gene] });
        let aligner = Aligner::new(&idx, AlignParams::default());
        let mut read = chr.subseq(2050, 2100);
        read.extend_from(&chr.subseq(2600, 2650));
        let out = aligner.align_seq(&read);
        assert_eq!(out.class, MapClass::Unique);
        let rec = out.primary.unwrap();
        assert_eq!(rec.pos, 2050);
        assert_eq!(rec.junctions, vec![(2100, 2600, SpliceClass::Annotated)]);
        assert_eq!(cigar_string(&rec.cigar), "50M500N50M");
    }

    #[test]
    fn align_read_propagates_id() {
        let chr = random_seq(8, 2000);
        let idx = build_index(vec![("1", chr.clone())], Annotation::default());
        let aligner = Aligner::new(&idx, AlignParams::default());
        let fq = FastqRecord::with_uniform_quality("SRR1.7".into(), chr.subseq(0, 100), 35);
        let out = aligner.align_read(&fq);
        assert_eq!(out.primary.unwrap().read_id, "SRR1.7");
    }

    #[test]
    fn empty_read_is_unmapped() {
        let chr = random_seq(9, 1000);
        let idx = build_index(vec![("1", chr)], Annotation::default());
        let aligner = Aligner::new(&idx, AlignParams::default());
        let out = aligner.align_seq(&DnaSeq::new());
        assert_eq!(out.class, MapClass::Unmapped);
        assert_eq!(out.candidates_examined, 0);
    }

    #[test]
    fn candidates_examined_grows_with_duplication() {
        let chr = random_seq(10, 2000);
        let dup1 = chr.subseq(500, 1500);
        let dup2 = chr.subseq(500, 1500);
        let idx_plain = build_index(vec![("1", chr.clone())], Annotation::default());
        let idx_dup = build_index(
            vec![("1", chr.clone()), ("KI1", dup1), ("KI2", dup2)],
            Annotation::default(),
        );
        let read = chr.subseq(900, 1000);
        let a1 = Aligner::new(&idx_plain, AlignParams::default());
        let a2 = Aligner::new(&idx_dup, AlignParams::default());
        let c1 = a1.align_seq(&read).candidates_examined;
        let c2 = a2.align_seq(&read).candidates_examined;
        assert!(c2 > c1, "duplication must inflate candidate work: {c1} vs {c2}");
    }

    #[test]
    fn phase_work_is_counted_and_deterministic() {
        let chr = random_seq(11, 2000);
        let idx = build_index(vec![("1", chr.clone())], Annotation::default());
        let aligner = Aligner::new(&idx, AlignParams::default());
        let out = aligner.align_seq(&chr.subseq(100, 200));
        assert!(out.work.seed_units > 0, "a mapping read collects seeds");
        assert!(out.work.extend_units > 0, "a mapping read extends at least one chain");
        assert_eq!(out.work, aligner.align_seq(&chr.subseq(100, 200)).work);
        let (fs, ft, fe) = out.work.fractions();
        assert!((fs + ft + fe - 1.0).abs() < 1e-12);
        assert_eq!(aligner.align_seq(&DnaSeq::new()).work, PhaseWork::default());
        assert_eq!(PhaseWork::default().fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn phase_nanos_measured_only_behind_the_gate() {
        let chr = random_seq(11, 2000);
        let idx = build_index(vec![("1", chr.clone())], Annotation::default());
        let aligner = Aligner::new(&idx, AlignParams::default());
        let off = aligner.align_seq(&chr.subseq(100, 200)).work;
        assert_eq!(off.nanos_total(), 0, "gate off: the clock is never read");
        let params = AlignParams { measure_phase_nanos: true, ..AlignParams::default() };
        let timed = Aligner::new(&idx, params);
        let on = timed.align_seq(&chr.subseq(100, 200)).work;
        assert_eq!(
            (on.seed_units, on.stitch_units, on.extend_units),
            (off.seed_units, off.stitch_units, off.extend_units),
            "measurement never changes the work counts"
        );
        assert!(on.nanos_total() > 0, "gate on: phases were timed");
        // Unit-weighted folds (gate off) are deterministic and flamegraph-shaped.
        let folds = off.collapsed_stacks("align");
        assert!(folds.contains("align;seed ") && folds.ends_with('\n'), "{folds:?}");
        assert_eq!(folds, off.collapsed_stacks("align"));
        assert_eq!(PhaseWork::default().collapsed_stacks("align"), "");
    }

    #[test]
    fn mapq_ladder() {
        assert_eq!(mapq_for(1), 255);
        assert_eq!(mapq_for(2), 3);
        assert_eq!(mapq_for(3), 1);
        assert_eq!(mapq_for(4), 1);
        assert_eq!(mapq_for(5), 0);
    }

    #[test]
    fn cigar_string_renders_compactly() {
        assert_eq!(cigar_string(&[CigarOp::S(5), CigarOp::M(45), CigarOp::N(400), CigarOp::M(50)]), "5S45M400N50M");
    }
}
