//! Seed windowing and stitching (STAR's "clustering/stitching/scoring" stage).
//!
//! Seeds are grouped into genomic *windows* (close enough to be one locus, intron
//! gaps allowed), and within each window the best collinear chain is selected by
//! dynamic programming. Each chain is a candidate alignment to be extended and
//! scored by [`crate::extend`].

use crate::params::AlignParams;
use crate::scratch::{ChainPool, StitchScratch};
use crate::seed::Seed;

/// A collinear chain of seeds within one genomic window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    /// Seeds in read order; consecutive pairs are gap-compatible (see
    /// [`gap_compatible`]).
    pub seeds: Vec<Seed>,
}

impl Chain {
    /// Total read bases covered by seeds (the chain score used for ranking).
    pub fn covered(&self) -> u32 {
        self.seeds.iter().map(|s| s.len).sum()
    }

    /// Genomic start of the chain.
    pub fn gstart(&self) -> u64 {
        self.seeds.first().map_or(0, |s| s.gpos)
    }

    /// Genomic end (exclusive) of the chain.
    pub fn gend(&self) -> u64 {
        self.seeds.last().map_or(0, |s| s.gend())
    }
}

/// Can `b` directly follow `a` in a chain? Requires read and genome order, no overlap,
/// and a genome gap that equals the read gap (mismatch run) or exceeds it by at most
/// `max_intron` (splice). Substitution-only model: the genome gap is never smaller.
pub fn gap_compatible(a: &Seed, b: &Seed, max_intron: u64) -> bool {
    if b.read_pos < a.read_end() || b.gpos < a.gend() {
        return false;
    }
    let read_gap = (b.read_pos - a.read_end()) as u64;
    let genome_gap = b.gpos - a.gend();
    genome_gap >= read_gap && genome_gap - read_gap <= max_intron
}

/// Group seeds into windows and return the maximal chains of each window.
///
/// Windows are built by sorting seeds by genome position and splitting where the gap
/// between consecutive seeds exceeds `max_intron + read_len` (they could never be
/// stitched). Within a window, a quadratic DP maximizes covered read bases; one chain
/// is returned per DP *terminal* (a seed no better chain passes through), so
/// duplicated loci inside one window — e.g. a read hitting both a chromosome region
/// and its scaffold copy — each produce their own candidate chain. Windows hold only
/// a handful of seeds, so O(w²) is cheap.
pub fn best_chains(seeds: &[Seed], read_len: usize, params: &AlignParams) -> Vec<Chain> {
    let mut scratch = StitchScratch::default();
    let mut pool = ChainPool::default();
    best_chains_into(seeds, read_len, params, &mut scratch, &mut pool);
    pool.chains.truncate(pool.len);
    pool.chains
}

/// Allocation-free form of [`best_chains`]: windows and DP run on `scratch`'s
/// buffers and chains are emitted into the pooled `out` (cleared first), so the
/// steady state reuses every vector involved.
pub(crate) fn best_chains_into(
    seeds: &[Seed],
    read_len: usize,
    params: &AlignParams,
    scratch: &mut StitchScratch,
    out: &mut ChainPool,
) {
    out.clear();
    if seeds.is_empty() {
        return;
    }
    let StitchScratch { by_gpos, win, best_cov, prev, used_as_prev } = scratch;
    by_gpos.clear();
    by_gpos.extend_from_slice(seeds);
    by_gpos.sort_unstable_by_key(|s| s.gpos);

    let split_gap = params.max_intron_len + read_len as u64;
    let mut win_start = 0usize;
    for i in 1..by_gpos.len() {
        if by_gpos[i].gpos.saturating_sub(by_gpos[i - 1].gend()) > split_gap {
            chain_window(&by_gpos[win_start..i], params, win, best_cov, prev, used_as_prev, out);
            win_start = i;
        }
    }
    chain_window(&by_gpos[win_start..], params, win, best_cov, prev, used_as_prev, out);
}

/// DP over one window: maximize covered read bases over gap-compatible chains and
/// emit one chain per terminal (a seed no better chain passes through).
#[allow(clippy::too_many_arguments)]
fn chain_window(
    window: &[Seed],
    params: &AlignParams,
    win: &mut Vec<Seed>,
    best_cov: &mut Vec<u32>,
    prev: &mut Vec<u32>,
    used_as_prev: &mut Vec<bool>,
    out: &mut ChainPool,
) {
    if window.is_empty() {
        return;
    }
    // Order by read position (then genome) for the DP.
    win.clear();
    win.extend_from_slice(window);
    win.sort_unstable_by_key(|s| (s.read_pos, s.gpos));

    let n = win.len();
    best_cov.clear();
    best_cov.extend(win.iter().map(|s| s.len));
    prev.clear();
    prev.resize(n, u32::MAX); // MAX = chain start
    for i in 0..n {
        for j in 0..i {
            if gap_compatible(&win[j], &win[i], params.max_intron_len) {
                let cand = best_cov[j] + win[i].len;
                if cand > best_cov[i] {
                    best_cov[i] = cand;
                    prev[i] = j as u32;
                }
            }
        }
    }
    // Terminals: seeds that no chosen chain continues from.
    used_as_prev.clear();
    used_as_prev.resize(n, false);
    for i in 0..n {
        if prev[i] != u32::MAX {
            used_as_prev[prev[i] as usize] = true;
        }
    }
    for end in (0..n).filter(|&i| !used_as_prev[i]) {
        let chain = out.acquire();
        let mut cur = end as u32;
        loop {
            chain.seeds.push(win[cur as usize]);
            if prev[cur as usize] == u32::MAX {
                break;
            }
            cur = prev[cur as usize];
        }
        chain.seeds.reverse();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(read_pos: u32, gpos: u64, len: u32) -> Seed {
        Seed { read_pos, gpos, len, interval_size: 1 }
    }

    #[test]
    fn gap_compatibility_rules() {
        let a = seed(0, 100, 50);
        // Contiguous mismatch gap: read gap 1 == genome gap 1.
        assert!(gap_compatible(&a, &seed(51, 151, 40), 1000));
        // Intron: genome gap 501, read gap 1, within max intron.
        assert!(gap_compatible(&a, &seed(51, 651, 40), 1000));
        // Intron too long.
        assert!(!gap_compatible(&a, &seed(51, 3651, 40), 1000));
        // Genome gap smaller than read gap (would need an insertion).
        assert!(!gap_compatible(&a, &seed(60, 155, 40), 1000));
        // Read overlap.
        assert!(!gap_compatible(&a, &seed(40, 200, 40), 1000));
        // Genome overlap.
        assert!(!gap_compatible(&a, &seed(51, 140, 40), 1000));
    }

    #[test]
    fn single_seed_gives_single_chain() {
        let chains = best_chains(&[seed(0, 500, 100)], 100, &AlignParams::default());
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].covered(), 100);
    }

    #[test]
    fn mismatch_split_seeds_chain_together() {
        let s = [seed(0, 100, 50), seed(51, 151, 49)];
        let chains = best_chains(&s, 100, &AlignParams::default());
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].seeds.len(), 2);
        assert_eq!(chains[0].covered(), 99);
    }

    #[test]
    fn spliced_seeds_chain_within_intron_limit() {
        let s = [seed(0, 100, 60), seed(60, 1160, 40)]; // 1000bp intron
        let chains = best_chains(&s, 100, &AlignParams::default());
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].seeds.len(), 2);
    }

    #[test]
    fn distant_loci_become_separate_windows() {
        let s = [seed(0, 100, 100), seed(0, 1_000_000, 100)];
        let chains = best_chains(&s, 100, &AlignParams::default());
        assert_eq!(chains.len(), 2, "two windows, one chain each");
        assert_eq!(chains[0].covered(), 100);
        assert_eq!(chains[1].covered(), 100);
    }

    #[test]
    fn dp_picks_maximal_coverage_chain() {
        // Three seeds where the greedy pair (0 + big middle) blocks the better tail.
        let s = [
            seed(0, 100, 30),
            seed(35, 500, 20),  // compatible with first but then blocks the third
            seed(35, 140, 60),  // 5bp mismatch gap after first; total 90
        ];
        let chains = best_chains(&s, 100, &AlignParams::default());
        let best = chains.iter().max_by_key(|c| c.covered()).unwrap();
        assert_eq!(best.covered(), 90);
        assert_eq!(best.seeds.len(), 2);
        assert_eq!(best.seeds[1].gpos, 140);
    }

    #[test]
    fn duplicate_loci_yield_one_chain_each() {
        // Same read seeds at two distant loci (multimapping): two chains.
        let s = [
            seed(0, 100, 50),
            seed(51, 151, 49),
            seed(0, 50_100, 50),
            seed(51, 50_151, 49),
        ];
        let chains = best_chains(&s, 100, &AlignParams::default());
        assert_eq!(chains.len(), 2);
        assert!(chains.iter().all(|c| c.covered() == 99));
    }

    #[test]
    fn empty_input_gives_no_chains() {
        assert!(best_chains(&[], 100, &AlignParams::default()).is_empty());
    }
}
