//! The packed, concatenated reference genome (STAR's `Genome` file analog).
//!
//! All contigs of an assembly are concatenated into one coordinate space so the
//! suffix array indexes a single sequence. The bases live in a [`Packed2`]: four
//! bases per byte, 32 per `u64` word, LSB-first (base `i` occupies bits
//! `[2*(i%32), 2*(i%32)+2)` of word `i/32`). That cuts the resident genome 4×
//! versus the old byte-per-base layout and lets the hot path compare 32 bases per
//! instruction via [`mismatch_mask`]. Contig boundaries are kept in a span table;
//! alignment candidates that would cross a boundary are rejected by
//! [`PackedGenome::fits_in_contig`] (real STAR inserts padding spacers, same effect).

use crate::StarError;
use genomics::{Assembly, ContigKind};

/// Bases per 64-bit word in a [`Packed2`].
pub const BASES_PER_WORD: usize = 32;

/// Even-bit mask: one bit per 2-bit base lane.
const LANE_MASK: u64 = 0x5555_5555_5555_5555;

/// A 2-bit-packed DNA code sequence: 32 bases per `u64`, LSB-first.
///
/// Base `i` is stored at bit offset `2*(i % 32)` of word `i / 32`, so
/// [`Packed2::word_from`] yields 32 consecutive bases with base `i` in the two
/// lowest bits — a k-mer value (LSB-first) is just `word_from(i) & ((1<<2k)-1)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Packed2 {
    words: Vec<u64>,
    len: usize,
}

impl Packed2 {
    /// An empty sequence (useful as a reusable scratch buffer).
    pub fn new() -> Packed2 {
        Packed2::default()
    }

    /// Pack a byte-per-base code slice (codes must be `0..=3`).
    pub fn from_codes(codes: &[u8]) -> Packed2 {
        let mut p = Packed2::new();
        p.pack_codes(codes);
        p
    }

    /// Repack `codes` into this buffer, reusing its allocation (zero-alloc once warm).
    pub fn pack_codes(&mut self, codes: &[u8]) {
        self.len = codes.len();
        self.words.clear();
        self.words.resize(codes.len().div_ceil(BASES_PER_WORD), 0);
        for (w, chunk) in codes.chunks(BASES_PER_WORD).enumerate() {
            let mut word = 0u64;
            for (lane, &c) in chunk.iter().enumerate() {
                debug_assert!(c <= 3, "invalid base code {c}");
                word |= (c as u64) << (lane << 1);
            }
            self.words[w] = word;
        }
    }

    /// Reassemble from raw words (index deserialization). Tail bits past `len`
    /// bases must be zero — the canonical form every packer here produces.
    pub fn from_words(words: Vec<u64>, len: usize) -> Result<Packed2, StarError> {
        if words.len() != len.div_ceil(BASES_PER_WORD) {
            return Err(StarError::CorruptIndex(format!(
                "packed genome: {} words cannot hold {len} bases",
                words.len()
            )));
        }
        let tail = len % BASES_PER_WORD;
        if tail != 0 && words.last().copied().unwrap_or(0) >> (tail << 1) != 0 {
            return Err(StarError::CorruptIndex(
                "packed genome: nonzero bits past sequence end".into(),
            ));
        }
        Ok(Packed2 { words, len })
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sequence holds no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 2-bit code at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        debug_assert!(i < self.len, "base index {i} out of range {}", self.len);
        ((self.words[i >> 5] >> ((i & 31) << 1)) & 3) as u8
    }

    /// 32 bases starting at `i`, LSB-first (base `i` in bits 0..2). Positions past
    /// the end read as zero (base A) — callers must mask by the remaining length
    /// and never rely on the padding matching anything.
    #[inline]
    pub fn word_from(&self, i: usize) -> u64 {
        let w = i >> 5;
        let bit = (i & 31) << 1;
        let lo = self.words.get(w).copied().unwrap_or(0) >> bit;
        if bit == 0 {
            lo
        } else {
            lo | (self.words.get(w + 1).copied().unwrap_or(0) << (64 - bit))
        }
    }

    /// The raw word array (serialization).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Unpack to byte-per-base codes (build-time only; the hot path stays packed).
    pub fn to_codes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.get(i));
        }
        out
    }

    /// Resident bytes of the packed words.
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }
}

/// One mismatch-indicator bit per base lane: bit `2*lane` is set iff the two
/// 2-bit codes at that lane differ. `trailing_zeros()/2` of a nonzero mask is
/// the first mismatching lane; `count_ones()` is the mismatch count.
#[inline]
pub fn mismatch_mask(a: u64, b: u64) -> u64 {
    let x = a ^ b;
    (x | (x >> 1)) & LANE_MASK
}

/// Length of the common prefix of `a[ai..]` and `b[bi..]`, capped at `max`.
/// `max` must not run past either sequence end (zero padding is never compared).
#[inline]
pub fn common_prefix_len(a: &Packed2, ai: usize, b: &Packed2, bi: usize, max: usize) -> usize {
    debug_assert!(ai + max <= a.len() && bi + max <= b.len());
    let mut o = 0;
    while o < max {
        let block = (max - o).min(BASES_PER_WORD);
        let mut x = mismatch_mask(a.word_from(ai + o), b.word_from(bi + o));
        if block < BASES_PER_WORD {
            x &= (1u64 << (block << 1)) - 1;
        }
        if x != 0 {
            return o + (x.trailing_zeros() >> 1) as usize;
        }
        o += block;
    }
    max
}

/// Hamming distance between `a[ai..ai+len)` and `b[bi..bi+len)`.
/// `len` must not run past either sequence end.
#[inline]
pub fn count_mismatches(a: &Packed2, ai: usize, b: &Packed2, bi: usize, len: usize) -> u32 {
    debug_assert!(ai + len <= a.len() && bi + len <= b.len());
    let mut o = 0;
    let mut mm = 0;
    while o < len {
        let block = (len - o).min(BASES_PER_WORD);
        let mut x = mismatch_mask(a.word_from(ai + o), b.word_from(bi + o));
        if block < BASES_PER_WORD {
            x &= (1u64 << (block << 1)) - 1;
        }
        mm += x.count_ones();
        o += block;
    }
    mm
}

/// One contig's location within the concatenated genome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContigSpan {
    /// Contig name, e.g. `"1"` or `"KI270302.1"`.
    pub name: String,
    /// Role in the assembly (chromosome vs scaffold) — kept for diagnostics.
    pub kind: ContigKind,
    /// Global start offset in the concatenated genome.
    pub start: u64,
    /// Length in bases.
    pub len: u64,
}

impl ContigSpan {
    /// Global end offset (exclusive).
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// The concatenated genome: 2-bit-packed bases ([`Packed2`], four per byte)
/// plus the contig span table.
#[derive(Clone, Debug)]
pub struct PackedGenome {
    seq: Packed2,
    spans: Vec<ContigSpan>,
}

impl PackedGenome {
    /// Concatenate all contigs of `assembly`. Fails on an empty assembly.
    pub fn from_assembly(assembly: &Assembly) -> Result<PackedGenome, StarError> {
        if assembly.contigs.is_empty() || assembly.total_len() == 0 {
            return Err(StarError::InvalidInput("assembly has no sequence".into()));
        }
        let mut codes = Vec::with_capacity(assembly.total_len());
        let mut spans = Vec::with_capacity(assembly.contigs.len());
        for contig in &assembly.contigs {
            spans.push(ContigSpan {
                name: contig.name.clone(),
                kind: contig.kind,
                start: codes.len() as u64,
                len: contig.len() as u64,
            });
            codes.extend_from_slice(contig.seq.codes());
        }
        Ok(PackedGenome { seq: Packed2::from_codes(&codes), spans })
    }

    /// Reassemble from raw parts (used by index deserialization).
    pub(crate) fn from_parts(seq: Packed2, spans: Vec<ContigSpan>) -> Result<PackedGenome, StarError> {
        let total: u64 = spans.iter().map(|s| s.len).sum();
        if total != seq.len() as u64 {
            return Err(StarError::CorruptIndex(format!(
                "span table covers {total} bases but genome has {}",
                seq.len()
            )));
        }
        let mut expect = 0u64;
        for s in &spans {
            if s.start != expect {
                return Err(StarError::CorruptIndex(format!("span {} starts at {} != {expect}", s.name, s.start)));
            }
            expect = s.end();
        }
        Ok(PackedGenome { seq, spans })
    }

    /// Total genome length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True when the genome holds no sequence (never constructed; kept for API hygiene).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// The 2-bit code at global position `pos`.
    #[inline]
    pub fn code(&self, pos: usize) -> u8 {
        self.seq.get(pos)
    }

    /// The packed base sequence.
    #[inline]
    pub fn seq(&self) -> &Packed2 {
        &self.seq
    }

    /// Unpack the full genome to byte-per-base codes. Build-time only (suffix
    /// array + prefix table construction) — 4× the resident footprint.
    pub fn unpack(&self) -> Vec<u8> {
        self.seq.to_codes()
    }

    /// The contig span table, in genome order.
    pub fn spans(&self) -> &[ContigSpan] {
        &self.spans
    }

    /// Index of the contig containing global position `gpos`.
    ///
    /// Panics if `gpos` is out of range (positions always come from the suffix array).
    pub fn contig_index_of(&self, gpos: u64) -> usize {
        debug_assert!((gpos as usize) < self.seq.len(), "gpos out of range");
        // partition_point: first span with start > gpos, minus one.
        self.spans.partition_point(|s| s.start <= gpos) - 1
    }

    /// The contig span containing `gpos`.
    pub fn contig_of(&self, gpos: u64) -> &ContigSpan {
        &self.spans[self.contig_index_of(gpos)]
    }

    /// Convert a global position to `(contig_index, local_position)`.
    pub fn to_local(&self, gpos: u64) -> (usize, u64) {
        let idx = self.contig_index_of(gpos);
        (idx, gpos - self.spans[idx].start)
    }

    /// True when `[gpos, gpos + len)` lies entirely within one contig.
    #[inline]
    pub fn fits_in_contig(&self, gpos: u64, len: u64) -> bool {
        if (gpos + len) as usize > self.seq.len() {
            return false;
        }
        let span = self.contig_of(gpos);
        gpos + len <= span.end()
    }

    /// Look up a span by contig name.
    pub fn span_by_name(&self, name: &str) -> Option<&ContigSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Resident bytes of this genome: the packed words plus the span table.
    /// Since the bases are stored 2-bit packed, this is what the process pays —
    /// the honest input to `right_size`-style instance decisions.
    pub fn packed_byte_size(&self) -> usize {
        self.seq.byte_size() + self.spans.iter().map(|s| s.name.len() + 24).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomics::{AssemblyKind, Contig, DnaSeq};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_seq(len: usize, seed: u64) -> DnaSeq {
        DnaSeq::random(&mut StdRng::seed_from_u64(seed), len)
    }

    fn asm() -> Assembly {
        Assembly {
            name: "T".into(),
            release: 111,
            kind: AssemblyKind::Toplevel,
            contigs: vec![
                Contig { name: "1".into(), kind: ContigKind::Chromosome, seq: "ACGTACGTAC".parse().unwrap() },
                Contig { name: "2".into(), kind: ContigKind::Chromosome, seq: "GGGG".parse().unwrap() },
                Contig {
                    name: "KI1".into(),
                    kind: ContigKind::UnplacedScaffold,
                    seq: "TTTTTT".parse().unwrap(),
                },
            ],
        }
    }

    #[test]
    fn concatenation_preserves_order_and_length() {
        let g = PackedGenome::from_assembly(&asm()).unwrap();
        assert_eq!(g.len(), 20);
        assert_eq!(g.spans().len(), 3);
        assert_eq!(g.spans()[1].start, 10);
        assert_eq!(g.spans()[2].start, 14);
        // Base 10 is the first G of contig 2.
        assert_eq!(g.code(10), genomics::Base::G.code());
    }

    #[test]
    fn packed_round_trips_arbitrary_lengths() {
        for len in [0usize, 1, 31, 32, 33, 63, 64, 65, 100, 257] {
            let seq = rand_seq(len, 0x5eed ^ len as u64);
            let p = Packed2::from_codes(seq.codes());
            assert_eq!(p.len(), len);
            assert_eq!(p.to_codes(), seq.codes());
            for (i, &c) in seq.codes().iter().enumerate() {
                assert_eq!(p.get(i), c, "base {i} of len {len}");
            }
            // Round-trip through the raw-word form used by index serde.
            let back = Packed2::from_words(p.words().to_vec(), len).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn from_words_rejects_bad_shapes() {
        let p = Packed2::from_codes(&[1, 2, 3, 0, 1]);
        assert!(Packed2::from_words(vec![], 5).is_err(), "missing words");
        assert!(Packed2::from_words(vec![p.words()[0], 0], 5).is_err(), "extra word");
        let mut dirty = p.words().to_vec();
        dirty[0] |= 1 << 12; // bit past the 5-base payload
        assert!(Packed2::from_words(dirty, 5).is_err(), "nonzero tail bits");
        assert!(Packed2::from_words(p.words().to_vec(), 5).is_ok());
    }

    #[test]
    fn word_from_matches_scalar_extraction() {
        let seq = rand_seq(150, 0xabcd);
        let p = Packed2::from_codes(seq.codes());
        for i in 0..150 {
            let w = p.word_from(i);
            for lane in 0..BASES_PER_WORD.min(150 - i) {
                assert_eq!(((w >> (lane << 1)) & 3) as u8, p.get(i + lane), "pos {i} lane {lane}");
            }
        }
    }

    #[test]
    fn mismatch_helpers_agree_with_scalar() {
        let a = rand_seq(300, 1);
        let mut bc = a.codes().to_vec();
        for i in (7..300).step_by(13) {
            bc[i] = (bc[i] + 1) & 3;
        }
        let pa = Packed2::from_codes(a.codes());
        let pb = Packed2::from_codes(&bc);
        for (ai, bi, len) in [(0, 0, 300), (5, 5, 200), (33, 1, 90), (64, 64, 1), (10, 10, 0)] {
            let scalar_mm =
                (0..len).filter(|&j| a.codes()[ai + j] != bc[bi + j]).count() as u32;
            assert_eq!(count_mismatches(&pa, ai, &pb, bi, len), scalar_mm);
            let scalar_cp =
                (0..len).position(|j| a.codes()[ai + j] != bc[bi + j]).unwrap_or(len);
            assert_eq!(common_prefix_len(&pa, ai, &pb, bi, len), scalar_cp);
        }
    }

    #[test]
    fn locate_positions_across_boundaries() {
        let g = PackedGenome::from_assembly(&asm()).unwrap();
        assert_eq!(g.to_local(0), (0, 0));
        assert_eq!(g.to_local(9), (0, 9));
        assert_eq!(g.to_local(10), (1, 0));
        assert_eq!(g.to_local(13), (1, 3));
        assert_eq!(g.to_local(14), (2, 0));
        assert_eq!(g.to_local(19), (2, 5));
        assert_eq!(g.contig_of(12).name, "2");
    }

    #[test]
    fn fits_in_contig_rejects_boundary_crossings() {
        let g = PackedGenome::from_assembly(&asm()).unwrap();
        assert!(g.fits_in_contig(0, 10));
        assert!(!g.fits_in_contig(0, 11));
        assert!(g.fits_in_contig(10, 4));
        assert!(!g.fits_in_contig(12, 3));
        assert!(g.fits_in_contig(14, 6));
        assert!(!g.fits_in_contig(14, 7), "beyond genome end");
    }

    #[test]
    fn span_lookup_by_name() {
        let g = PackedGenome::from_assembly(&asm()).unwrap();
        assert_eq!(g.span_by_name("KI1").unwrap().len, 6);
        assert!(g.span_by_name("zzz").is_none());
    }

    #[test]
    fn rejects_empty_assembly() {
        let empty =
            Assembly { name: "E".into(), release: 1, kind: AssemblyKind::Toplevel, contigs: vec![] };
        assert!(PackedGenome::from_assembly(&empty).is_err());
    }

    #[test]
    fn from_parts_validates_span_table() {
        let g = PackedGenome::from_assembly(&asm()).unwrap();
        let seq = g.seq().clone();
        let mut spans = g.spans().to_vec();
        assert!(PackedGenome::from_parts(seq.clone(), spans.clone()).is_ok());
        spans[1].start = 11;
        assert!(PackedGenome::from_parts(seq.clone(), spans).is_err());
        let mut spans = g.spans().to_vec();
        spans[2].len = 99;
        assert!(PackedGenome::from_parts(seq, spans).is_err());
    }

    #[test]
    fn packed_footprint_is_at_most_027_of_unpacked() {
        // The index-footprint contract behind right_size-style decisions: the
        // resident genome must cost ≤ ~0.27× the byte-per-base encoding.
        let contigs: Vec<Contig> = (0..4)
            .map(|i| Contig {
                name: format!("c{i}"),
                kind: ContigKind::Chromosome,
                seq: rand_seq(25_000, i as u64),
            })
            .collect();
        let a = Assembly { name: "F".into(), release: 1, kind: AssemblyKind::Toplevel, contigs };
        let g = PackedGenome::from_assembly(&a).unwrap();
        let unpacked = g.len(); // one byte per base
        assert!(
            (g.packed_byte_size() as f64) <= 0.27 * unpacked as f64,
            "packed {} vs unpacked {unpacked}",
            g.packed_byte_size()
        );
    }
}
