//! The packed, concatenated reference genome (STAR's `Genome` file analog).
//!
//! All contigs of an assembly are concatenated into one code array so the suffix array
//! indexes a single coordinate space. Contig boundaries are kept in a span table;
//! alignment candidates that would cross a boundary are rejected by
//! [`PackedGenome::fits_in_contig`] (real STAR inserts padding spacers, same effect).

use crate::StarError;
use genomics::{Assembly, ContigKind};

/// One contig's location within the concatenated genome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContigSpan {
    /// Contig name, e.g. `"1"` or `"KI270302.1"`.
    pub name: String,
    /// Role in the assembly (chromosome vs scaffold) — kept for diagnostics.
    pub kind: ContigKind,
    /// Global start offset in the concatenated genome.
    pub start: u64,
    /// Length in bases.
    pub len: u64,
}

impl ContigSpan {
    /// Global end offset (exclusive).
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// The concatenated genome: byte-per-base 2-bit codes plus the contig span table.
#[derive(Clone, Debug)]
pub struct PackedGenome {
    codes: Vec<u8>,
    spans: Vec<ContigSpan>,
}

impl PackedGenome {
    /// Concatenate all contigs of `assembly`. Fails on an empty assembly.
    pub fn from_assembly(assembly: &Assembly) -> Result<PackedGenome, StarError> {
        if assembly.contigs.is_empty() || assembly.total_len() == 0 {
            return Err(StarError::InvalidInput("assembly has no sequence".into()));
        }
        let mut codes = Vec::with_capacity(assembly.total_len());
        let mut spans = Vec::with_capacity(assembly.contigs.len());
        for contig in &assembly.contigs {
            spans.push(ContigSpan {
                name: contig.name.clone(),
                kind: contig.kind,
                start: codes.len() as u64,
                len: contig.len() as u64,
            });
            codes.extend_from_slice(contig.seq.codes());
        }
        Ok(PackedGenome { codes, spans })
    }

    /// Reassemble from raw parts (used by index deserialization).
    pub(crate) fn from_parts(codes: Vec<u8>, spans: Vec<ContigSpan>) -> Result<PackedGenome, StarError> {
        let total: u64 = spans.iter().map(|s| s.len).sum();
        if total != codes.len() as u64 {
            return Err(StarError::CorruptIndex(format!(
                "span table covers {total} bases but genome has {}",
                codes.len()
            )));
        }
        let mut expect = 0u64;
        for s in &spans {
            if s.start != expect {
                return Err(StarError::CorruptIndex(format!("span {} starts at {} != {expect}", s.name, s.start)));
            }
            expect = s.end();
        }
        Ok(PackedGenome { codes, spans })
    }

    /// Total genome length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the genome holds no sequence (never constructed; kept for API hygiene).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The 2-bit code at global position `pos`.
    #[inline]
    pub fn code(&self, pos: usize) -> u8 {
        self.codes[pos]
    }

    /// The whole code array.
    #[inline]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// The contig span table, in genome order.
    pub fn spans(&self) -> &[ContigSpan] {
        &self.spans
    }

    /// Index of the contig containing global position `gpos`.
    ///
    /// Panics if `gpos` is out of range (positions always come from the suffix array).
    pub fn contig_index_of(&self, gpos: u64) -> usize {
        debug_assert!((gpos as usize) < self.codes.len(), "gpos out of range");
        // partition_point: first span with start > gpos, minus one.
        self.spans.partition_point(|s| s.start <= gpos) - 1
    }

    /// The contig span containing `gpos`.
    pub fn contig_of(&self, gpos: u64) -> &ContigSpan {
        &self.spans[self.contig_index_of(gpos)]
    }

    /// Convert a global position to `(contig_index, local_position)`.
    pub fn to_local(&self, gpos: u64) -> (usize, u64) {
        let idx = self.contig_index_of(gpos);
        (idx, gpos - self.spans[idx].start)
    }

    /// True when `[gpos, gpos + len)` lies entirely within one contig.
    #[inline]
    pub fn fits_in_contig(&self, gpos: u64, len: u64) -> bool {
        if (gpos + len) as usize > self.codes.len() {
            return false;
        }
        let span = self.contig_of(gpos);
        gpos + len <= span.end()
    }

    /// Look up a span by contig name.
    pub fn span_by_name(&self, name: &str) -> Option<&ContigSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Bytes this genome occupies when 2-bit packed on disk/in memory (what STAR's
    /// `Genome` file stores); used for index-size accounting.
    pub fn packed_byte_size(&self) -> usize {
        self.codes.len().div_ceil(4) + self.spans.iter().map(|s| s.name.len() + 24).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomics::{AssemblyKind, Contig};

    fn asm() -> Assembly {
        Assembly {
            name: "T".into(),
            release: 111,
            kind: AssemblyKind::Toplevel,
            contigs: vec![
                Contig { name: "1".into(), kind: ContigKind::Chromosome, seq: "ACGTACGTAC".parse().unwrap() },
                Contig { name: "2".into(), kind: ContigKind::Chromosome, seq: "GGGG".parse().unwrap() },
                Contig {
                    name: "KI1".into(),
                    kind: ContigKind::UnplacedScaffold,
                    seq: "TTTTTT".parse().unwrap(),
                },
            ],
        }
    }

    #[test]
    fn concatenation_preserves_order_and_length() {
        let g = PackedGenome::from_assembly(&asm()).unwrap();
        assert_eq!(g.len(), 20);
        assert_eq!(g.spans().len(), 3);
        assert_eq!(g.spans()[1].start, 10);
        assert_eq!(g.spans()[2].start, 14);
        // Base 10 is the first G of contig 2.
        assert_eq!(g.code(10), genomics::Base::G.code());
    }

    #[test]
    fn locate_positions_across_boundaries() {
        let g = PackedGenome::from_assembly(&asm()).unwrap();
        assert_eq!(g.to_local(0), (0, 0));
        assert_eq!(g.to_local(9), (0, 9));
        assert_eq!(g.to_local(10), (1, 0));
        assert_eq!(g.to_local(13), (1, 3));
        assert_eq!(g.to_local(14), (2, 0));
        assert_eq!(g.to_local(19), (2, 5));
        assert_eq!(g.contig_of(12).name, "2");
    }

    #[test]
    fn fits_in_contig_rejects_boundary_crossings() {
        let g = PackedGenome::from_assembly(&asm()).unwrap();
        assert!(g.fits_in_contig(0, 10));
        assert!(!g.fits_in_contig(0, 11));
        assert!(g.fits_in_contig(10, 4));
        assert!(!g.fits_in_contig(12, 3));
        assert!(g.fits_in_contig(14, 6));
        assert!(!g.fits_in_contig(14, 7), "beyond genome end");
    }

    #[test]
    fn span_lookup_by_name() {
        let g = PackedGenome::from_assembly(&asm()).unwrap();
        assert_eq!(g.span_by_name("KI1").unwrap().len, 6);
        assert!(g.span_by_name("zzz").is_none());
    }

    #[test]
    fn rejects_empty_assembly() {
        let empty =
            Assembly { name: "E".into(), release: 1, kind: AssemblyKind::Toplevel, contigs: vec![] };
        assert!(PackedGenome::from_assembly(&empty).is_err());
    }

    #[test]
    fn from_parts_validates_span_table() {
        let g = PackedGenome::from_assembly(&asm()).unwrap();
        let codes = g.codes().to_vec();
        let mut spans = g.spans().to_vec();
        assert!(PackedGenome::from_parts(codes.clone(), spans.clone()).is_ok());
        spans[1].start = 11;
        assert!(PackedGenome::from_parts(codes.clone(), spans).is_err());
        let mut spans = g.spans().to_vec();
        spans[2].len = 99;
        assert!(PackedGenome::from_parts(codes, spans).is_err());
    }

    #[test]
    fn packed_size_is_quarter_of_length_plus_overhead() {
        let g = PackedGenome::from_assembly(&asm()).unwrap();
        assert!(g.packed_byte_size() >= 5);
        assert!(g.packed_byte_size() < 5 + 3 * 40);
    }
}
