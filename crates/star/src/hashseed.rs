//! SNAP-style fixed-length hash-table seeding index.
//!
//! "Faster and More Accurate Sequence Alignment with SNAP" replaces the suffix
//! array's per-base refinement with one hash probe per seed: a table keyed by the
//! fixed-length `s`-mer at the probe position. This module grafts that idea onto
//! the STAR pipeline *without changing a single alignment*: each table entry maps
//! an `s`-mer to the [`SaInterval`] of suffixes starting with it — exactly the
//! interval `s` rounds of [`SuffixArray::refine`] (or a depth-`s`
//! [`crate::PrefixTable`]) would reach. A hit therefore skips straight to depth
//! `s` of the same search the suffix array would have run; a miss means no genome
//! position starts with that `s`-mer, so the MMP is shorter than `s` and the
//! search falls through to the dense prefix tables. Either way the downstream
//! seeds are identical — the property the differential suites pin.
//!
//! The trade is memory for lookup latency, the index-size/speed frontier the
//! source paper prices per instance type (Fig. 3's 85 GiB vs 29.5 GiB deciding
//! r6a.4xlarge vs r6a.2xlarge): the table stores 16 bytes per *distinct* `s`-mer
//! at ≤ 0.5 load, compared with the prefix table's dense `2·4^k` u32 buckets.
//!
//! Implementation: open addressing with linear probing over a power-of-two
//! capacity, Fibonacci (multiply-shift) hashing, built deterministically by one
//! pass over the suffix array (groups of suffixes sharing an `s`-mer are
//! contiguous; suffixes shorter than `s` sort strictly before their group and are
//! skipped). Runtime-only: built lazily by [`crate::StarIndex::hash_seed`], never
//! serialized.

use crate::genome::Packed2;
use crate::sa::{SaInterval, SuffixArray};

/// Sentinel for an unoccupied hash slot; never a valid key because keys are
/// `2s ≤ 62`-bit values.
const EMPTY_KEY: u64 = u64::MAX;

/// Odd multiplier for Fibonacci hashing (2^64 / φ).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Hash table from fixed-length `s`-mer (LSB-first packed, as produced by
/// [`Packed2::word_from`]) to the SA interval of suffixes starting with it.
#[derive(Clone, Debug)]
pub struct HashSeedIndex {
    s: usize,
    /// `64 - log2(capacity)`: multiply-shift hash keeps the top bits.
    shift: u32,
    keys: Vec<u64>,
    vals: Vec<SaInterval>,
    entries: usize,
}

impl HashSeedIndex {
    /// Build the table for seed length `s` by one scan over the suffix array.
    /// Deterministic: insertion order is SA order, so the table layout (and any
    /// iteration over it) is a pure function of the genome.
    pub fn build(sa: &SuffixArray, seq: &Packed2, s: usize) -> HashSeedIndex {
        assert!((2..=31).contains(&s), "hash seed length {s} outside 2..=31");
        let mask = (1u64 << (2 * s)) - 1;
        let n = seq.len();
        // Pass 1: count distinct s-mers (groups are contiguous in SA order).
        let mut distinct = 0usize;
        let mut prev = EMPTY_KEY;
        for &pos in sa.positions() {
            let pos = pos as usize;
            if n - pos < s {
                continue; // suffix too short to own an s-mer
            }
            let key = seq.word_from(pos) & mask;
            if key != prev || distinct == 0 {
                distinct += 1;
                prev = key;
            }
        }
        let capacity = (distinct * 2).next_power_of_two().max(16);
        let shift = 64 - capacity.trailing_zeros();
        let mut idx = HashSeedIndex {
            s,
            shift,
            keys: vec![EMPTY_KEY; capacity],
            vals: vec![SaInterval { lo: 0, hi: 0 }; capacity],
            entries: 0,
        };
        // Pass 2: insert each group's [first, last+1) slot interval. A suffix
        // shorter than s that shares a group's prefix sorts strictly *before*
        // the group (it is a prefix of every member), so kept slots with equal
        // keys are contiguous as raw SA slots too — the interval is exact.
        let mut cur_key = EMPTY_KEY;
        let mut cur_lo = 0u32;
        let mut cur_n = 0u32;
        let mut started = false;
        for (slot, &pos) in sa.positions().iter().enumerate() {
            let pos = pos as usize;
            if n - pos < s {
                continue;
            }
            let key = seq.word_from(pos) & mask;
            let slot = slot as u32;
            if started && key == cur_key {
                debug_assert_eq!(slot, cur_lo + cur_n, "s-mer group not contiguous");
                cur_n += 1;
            } else {
                if started {
                    idx.insert(cur_key, SaInterval { lo: cur_lo, hi: cur_lo + cur_n });
                }
                cur_key = key;
                cur_lo = slot;
                cur_n = 1;
                started = true;
            }
        }
        if started {
            idx.insert(cur_key, SaInterval { lo: cur_lo, hi: cur_lo + cur_n });
        }
        debug_assert_eq!(idx.entries, distinct);
        idx
    }

    #[inline]
    fn home_slot(&self, key: u64) -> usize {
        (key.wrapping_mul(HASH_MUL) >> self.shift) as usize
    }

    fn insert(&mut self, key: u64, val: SaInterval) {
        let cap_mask = self.keys.len() - 1;
        let mut slot = self.home_slot(key);
        while self.keys[slot] != EMPTY_KEY {
            debug_assert_ne!(self.keys[slot], key, "duplicate s-mer group");
            slot = (slot + 1) & cap_mask;
        }
        self.keys[slot] = key;
        self.vals[slot] = val;
        self.entries += 1;
    }

    /// SA interval of suffixes starting with the `s`-mer `key` (LSB-first packed).
    /// An absent key returns the empty interval — by construction that means *no*
    /// genome position starts with this `s`-mer, so the caller's MMP is shorter
    /// than `s` and it falls through to the prefix-table layers.
    #[inline]
    pub fn lookup_value(&self, key: u64) -> SaInterval {
        let cap_mask = self.keys.len() - 1;
        let mut slot = self.home_slot(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                return self.vals[slot];
            }
            if k == EMPTY_KEY {
                return SaInterval { lo: 0, hi: 0 };
            }
            slot = (slot + 1) & cap_mask;
        }
    }

    /// The fixed seed length `s`.
    #[inline]
    pub fn seed_len(&self) -> usize {
        self.s
    }

    /// Number of distinct `s`-mers in the genome.
    #[inline]
    pub fn distinct_seeds(&self) -> usize {
        self.entries
    }

    /// Resident bytes (keys + interval values).
    pub fn byte_size(&self) -> usize {
        self.keys.len() * std::mem::size_of::<u64>()
            + self.vals.len() * std::mem::size_of::<SaInterval>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomics::DnaSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kmer_key(codes: &[u8]) -> u64 {
        codes.iter().enumerate().map(|(i, &c)| (c as u64) << (2 * i)).sum()
    }

    #[test]
    fn lookup_matches_sa_find_for_every_present_smer() {
        let mut rng = StdRng::seed_from_u64(7);
        let s_seq = DnaSeq::random(&mut rng, 3000);
        let packed = Packed2::from_codes(s_seq.codes());
        let sa = SuffixArray::build(s_seq.codes());
        for s in [4usize, 9, 14] {
            let h = HashSeedIndex::build(&sa, &packed, s);
            for start in 0..s_seq.len() - s {
                let pat = &s_seq.codes()[start..start + s];
                assert_eq!(
                    h.lookup_value(kmer_key(pat)),
                    sa.find(&packed, pat),
                    "s={s} start={start}"
                );
            }
        }
    }

    #[test]
    fn absent_smers_return_empty_meaning_mmp_shorter_than_s() {
        let mut rng = StdRng::seed_from_u64(8);
        let s_seq = DnaSeq::random(&mut rng, 500);
        let packed = Packed2::from_codes(s_seq.codes());
        let sa = SuffixArray::build(s_seq.codes());
        let s = 16; // 4^16 >> 500: almost every random 16-mer is absent
        let h = HashSeedIndex::build(&sa, &packed, s);
        let mut checked = 0;
        for _ in 0..200 {
            let probe = DnaSeq::random(&mut rng, s);
            let iv = h.lookup_value(kmer_key(probe.codes()));
            let found = sa.find(&packed, probe.codes());
            if iv.is_empty() {
                // Both empty; endpoints may differ (find stops mid-refinement).
                assert!(found.is_empty());
                checked += 1;
            } else {
                assert_eq!(iv, found);
            }
        }
        assert!(checked > 150, "expected mostly-absent probes, got {checked} empties");
    }

    #[test]
    fn short_suffixes_are_skipped_and_homopolymers_group() {
        let codes = vec![2u8; 40]; // GGGG…
        let packed = Packed2::from_codes(&codes);
        let sa = SuffixArray::build(&codes);
        let h = HashSeedIndex::build(&sa, &packed, 8);
        assert_eq!(h.distinct_seeds(), 1);
        let iv = h.lookup_value(kmer_key(&vec![2u8; 8]));
        assert_eq!(iv.size(), 33); // positions 0..=32 carry a full 8-mer
        assert_eq!(iv, sa.find(&packed, &vec![2u8; 8]));
    }

    #[test]
    fn build_is_deterministic_and_load_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        let s_seq = DnaSeq::random(&mut rng, 2048);
        let packed = Packed2::from_codes(s_seq.codes());
        let sa = SuffixArray::build(s_seq.codes());
        let a = HashSeedIndex::build(&sa, &packed, 12);
        let b = HashSeedIndex::build(&sa, &packed, 12);
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.vals, b.vals);
        assert!(a.distinct_seeds() * 2 <= a.keys.len(), "load factor above 0.5");
        assert!(a.byte_size() >= a.distinct_seeds() * 16);
    }
}
