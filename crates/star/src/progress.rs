//! `Log.progress.out` — the running statistics stream early stopping consumes.
//!
//! Real STAR appends a line to `Log.progress.out` every minute with the number of
//! reads processed so far, the mapping speed, and — crucially for the paper — the
//! *current percentage of mapped reads*. The paper's early-stopping optimization
//! tails this file and aborts the run when, after ≥10 % of reads, the mapped
//! percentage sits below 30 %.
//!
//! [`ProgressStats`] is the thread-safe counterpart: alignment workers bump atomic
//! counters and the run driver snapshots them between batches.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::align::MapClass;

/// Shared, thread-safe progress counters for one alignment run.
#[derive(Debug)]
pub struct ProgressStats {
    total_reads: u64,
    started: Instant,
    processed: AtomicU64,
    unique: AtomicU64,
    multi: AtomicU64,
    too_many: AtomicU64,
    unmapped: AtomicU64,
}

impl ProgressStats {
    /// New counters for a run over `total_reads` reads.
    pub fn new(total_reads: u64) -> ProgressStats {
        ProgressStats {
            total_reads,
            started: Instant::now(),
            processed: AtomicU64::new(0),
            unique: AtomicU64::new(0),
            multi: AtomicU64::new(0),
            too_many: AtomicU64::new(0),
            unmapped: AtomicU64::new(0),
        }
    }

    /// Counters seeded from a checkpoint: `processed`/class tallies start at the
    /// interrupted run's values so snapshots (and the monitor decisions made on
    /// them) see cumulative progress, not just the resumed tail.
    pub fn with_initial(
        total_reads: u64,
        processed: u64,
        unique: u64,
        multi: u64,
        too_many: u64,
        unmapped: u64,
    ) -> ProgressStats {
        debug_assert_eq!(processed, unique + multi + too_many + unmapped);
        ProgressStats {
            total_reads,
            started: Instant::now(),
            processed: AtomicU64::new(processed),
            unique: AtomicU64::new(unique),
            multi: AtomicU64::new(multi),
            too_many: AtomicU64::new(too_many),
            unmapped: AtomicU64::new(unmapped),
        }
    }

    /// Record one classified read. Relaxed ordering suffices: the counters are
    /// independent monotonic tallies read only via snapshots.
    pub fn record(&self, class: MapClass) {
        self.processed.fetch_add(1, Ordering::Relaxed);
        let counter = match class {
            MapClass::Unique => &self.unique,
            MapClass::Multi(_) => &self.multi,
            MapClass::TooMany(_) => &self.too_many,
            MapClass::Unmapped => &self.unmapped,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Total reads the run was given.
    pub fn total_reads(&self) -> u64 {
        self.total_reads
    }

    /// A consistent-enough snapshot for progress decisions (counters are monotonic;
    /// between-batch snapshots in the runner are exact).
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            total_reads: self.total_reads,
            processed: self.processed.load(Ordering::Relaxed),
            unique: self.unique.load(Ordering::Relaxed),
            multi: self.multi.load(Ordering::Relaxed),
            too_many: self.too_many.load(Ordering::Relaxed),
            unmapped: self.unmapped.load(Ordering::Relaxed),
            elapsed_secs: self.started.elapsed().as_secs_f64(),
        }
    }
}

/// A point-in-time view of run progress (one `Log.progress.out` line).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProgressSnapshot {
    /// Total reads in the input.
    pub total_reads: u64,
    /// Reads processed so far.
    pub processed: u64,
    /// Uniquely mapped so far.
    pub unique: u64,
    /// Multimapped (within the cap) so far.
    pub multi: u64,
    /// Mapped to too many loci so far.
    pub too_many: u64,
    /// Unmapped so far.
    pub unmapped: u64,
    /// Wall-clock seconds since the run started.
    pub elapsed_secs: f64,
}

impl ProgressSnapshot {
    /// Fraction of input processed (0 when the input is empty).
    pub fn processed_fraction(&self) -> f64 {
        if self.total_reads == 0 {
            0.0
        } else {
            self.processed as f64 / self.total_reads as f64
        }
    }

    /// Current mapped fraction among processed reads — STAR's "% of reads mapped"
    /// (unique + multi), the statistic early stopping thresholds on. 0 when nothing
    /// has been processed yet.
    pub fn mapped_fraction(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            (self.unique + self.multi) as f64 / self.processed as f64
        }
    }

    /// Mapping speed in reads/second (0 before the clock ticks).
    pub fn reads_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.processed as f64 / self.elapsed_secs
        }
    }

    /// Render as a `Log.progress.out`-style line.
    pub fn to_log_line(&self) -> String {
        format!(
            "{:>12.1}s {:>12} reads {:>10.0} reads/s   Mapped: {:>6.2}%   Unique: {:>6.2}%   Multi: {:>6.2}%",
            self.elapsed_secs,
            self.processed,
            self.reads_per_sec(),
            self.mapped_fraction() * 100.0,
            pct(self.unique, self.processed),
            pct(self.multi, self.processed),
        )
    }
}

fn pct(x: u64, of: u64) -> f64 {
    if of == 0 {
        0.0
    } else {
        x as f64 / of as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_classifications_into_buckets() {
        let p = ProgressStats::new(10);
        p.record(MapClass::Unique);
        p.record(MapClass::Unique);
        p.record(MapClass::Multi(3));
        p.record(MapClass::TooMany(99));
        p.record(MapClass::Unmapped);
        let s = p.snapshot();
        assert_eq!(s.processed, 5);
        assert_eq!(s.unique, 2);
        assert_eq!(s.multi, 1);
        assert_eq!(s.too_many, 1);
        assert_eq!(s.unmapped, 1);
        assert!((s.processed_fraction() - 0.5).abs() < 1e-12);
        assert!((s.mapped_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_has_zero_fractions() {
        let s = ProgressStats::new(0).snapshot();
        assert_eq!(s.processed_fraction(), 0.0);
        assert_eq!(s.mapped_fraction(), 0.0);
        assert_eq!(s.reads_per_sec(), 0.0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        use std::sync::Arc;
        let p = Arc::new(ProgressStats::new(8000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    p.record(if i % 2 == 0 { MapClass::Unique } else { MapClass::Unmapped });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = p.snapshot();
        assert_eq!(s.processed, 8000);
        assert_eq!(s.unique, 4000);
        assert_eq!(s.unmapped, 4000);
    }

    #[test]
    fn log_line_contains_mapped_percent() {
        let p = ProgressStats::new(4);
        p.record(MapClass::Unique);
        p.record(MapClass::Unmapped);
        let line = p.snapshot().to_log_line();
        assert!(line.contains("Mapped:  50.00%"), "{line}");
    }
}
