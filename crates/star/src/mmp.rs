//! Maximal Mappable Prefix (MMP) search — STAR's seed-discovery primitive.
//!
//! The MMP of a read position `p` is the longest read substring starting at `p` that
//! occurs anywhere in the genome (Dobin et al. 2013, Fig. 1). It is found by interval
//! refinement on the suffix array, accelerated by up to three O(1) starting layers,
//! deepest first: an optional SNAP-style [`HashSeedIndex`] (fixed `s`-mer hash), the
//! runtime-only deep prefix tables, and the serialized base prefix table. All layers
//! address buckets by the LSB-first packed k-mer value, which a packed query yields
//! with one [`Packed2::word_from`] and a mask — no per-base repacking. The search
//! stops at the first base that empties the interval; small intervals finish with
//! word-at-a-time direct extension (32 bases per compare).

use crate::genome::{common_prefix_len, Packed2};
use crate::hashseed::HashSeedIndex;
use crate::index::StarIndex;
use crate::prefix::PrefixTable;
use crate::sa::SaInterval;

/// Result of one MMP search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mmp {
    /// Start offset within the query pattern.
    pub start: usize,
    /// Matched prefix length (0 when even the first base is absent — impossible for
    /// ACGT queries on a non-empty genome, but kept total).
    pub len: usize,
    /// Suffix-array interval of all genome occurrences of the matched prefix.
    pub interval: SaInterval,
}

impl Mmp {
    /// Number of genome positions the matched prefix occurs at.
    pub fn occurrences(&self) -> u32 {
        self.interval.size()
    }
}

/// Once the live interval is at most this many suffixes, the search switches from
/// binary-search refinement (O(log |iv|) probes per base) to direct per-suffix prefix
/// extension (O(|iv| + remaining/32) contiguous compares). Same result, and the cost
/// becomes proportional to the candidate count — which is exactly the quantity a
/// scaffold-duplicated genome inflates.
const DIRECT_EXTEND_MAX_INTERVAL: u32 = 16;

/// Find the MMP of `pattern[from..]` against the index. Convenience wrapper that
/// packs the pattern; the hot path keeps reads packed and calls
/// [`mmp_search_packed`] directly.
pub fn mmp_search(index: &StarIndex, pattern: &[u8], from: usize) -> Mmp {
    mmp_search_with(index, &[], pattern, from)
}

/// [`mmp_search`] with optional deeper runtime-only prefix tables
/// ([`PrefixTable::deepen`], deepest first).
pub fn mmp_search_with(index: &StarIndex, deep: &[PrefixTable], pattern: &[u8], from: usize) -> Mmp {
    mmp_search_packed(index, deep, None, &Packed2::from_codes(pattern), from)
}

/// The full MMP search over a packed query.
///
/// Starting layers are tried deepest-first: `hash` (fixed `s`-mer bucket), each
/// table in `deep`, then the index's base prefix table; a layer is skipped when
/// fewer than its depth bases remain or its bucket is empty. Results are identical
/// whichever layer starts the search: a depth-`d` bucket *is* the interval that
/// refinement from the root reaches at depth `d` (and an empty bucket means the MMP
/// is shorter than `d`, which the shallower layers resolve exactly).
pub fn mmp_search_packed(
    index: &StarIndex,
    deep: &[PrefixTable],
    hash: Option<&HashSeedIndex>,
    q: &Packed2,
    from: usize,
) -> Mmp {
    let seq = index.genome().seq();
    let sa = index.sa();
    let remaining = q.len() - from;
    if remaining == 0 {
        return Mmp { start: from, len: 0, interval: SaInterval { lo: 0, hi: 0 } };
    }
    // One unaligned fetch covers every layer's probe: depths are ≤ 31 bases.
    let w = q.word_from(from);

    let mut iv = SaInterval { lo: 0, hi: 0 };
    let mut depth = 0;
    let mut hit = false;
    if let Some(h) = hash {
        let s = h.seed_len();
        if remaining >= s {
            let bucket = h.lookup_value(w & ((1u64 << (2 * s)) - 1));
            if !bucket.is_empty() {
                iv = bucket;
                depth = s;
                hit = true;
            }
        }
    }
    if !hit {
        for layer in deep {
            let d = layer.k();
            if remaining >= d {
                let bucket = layer.lookup_value((w & ((1u64 << (2 * d)) - 1)) as usize);
                if !bucket.is_empty() {
                    iv = bucket;
                    depth = d;
                    hit = true;
                    break;
                }
            }
        }
    }
    if !hit {
        let k = index.prefix().k();
        if remaining >= k {
            let bucket = index.prefix().lookup_value((w & ((1u64 << (2 * k)) - 1)) as usize);
            if !bucket.is_empty() {
                iv = bucket;
                depth = k;
                hit = true;
            }
        }
    }
    if !hit {
        // Either the query is shorter than every layer's depth, or its prefix is
        // absent: refine from the root to find the exact stopping point.
        iv = sa.full();
        depth = 0;
    }

    let mut best = Mmp { start: from, len: depth, interval: iv };
    while depth < remaining {
        if iv.size() <= DIRECT_EXTEND_MAX_INTERVAL {
            return direct_extend(seq, sa, q, from, depth, iv);
        }
        let next = sa.refine(seq, iv, depth, q.get(from + depth));
        if next.is_empty() {
            break;
        }
        iv = next;
        depth += 1;
        best = Mmp { start: from, len: depth, interval: iv };
    }
    // When a bucket path was taken, depth started positive with a non-empty
    // interval, so `best` is always consistent. When refinement from the root dies
    // at depth 0, report len 0 with an empty interval.
    if best.len == 0 {
        best.interval = SaInterval { lo: 0, hi: 0 };
    }
    best
}

/// Finish an MMP search by extending every suffix of the (small) interval directly
/// against the query, 32 bases per compare, and keeping the maximizers.
///
/// All suffixes in `iv` share `query[from..from+depth]`. The suffixes matching the
/// *longest* query prefix form a contiguous sub-interval (any suffix sorted between
/// two suffixes sharing a prefix also shares it), so tracking the first/last
/// maximizer reconstructs the exact interval binary refinement would have produced.
fn direct_extend(
    seq: &Packed2,
    sa: &crate::sa::SuffixArray,
    q: &Packed2,
    from: usize,
    depth: usize,
    iv: SaInterval,
) -> Mmp {
    debug_assert!(!iv.is_empty());
    let tail_len = q.len() - from - depth;
    let mut best_ext = 0usize;
    let mut best_lo = iv.lo;
    let mut best_hi = iv.lo;
    for slot in iv.lo..iv.hi {
        let pos = sa.suffix(slot) as usize + depth;
        let max = tail_len.min(seq.len().saturating_sub(pos));
        let ext = common_prefix_len(seq, pos, q, from + depth, max);
        match ext.cmp(&best_ext) {
            std::cmp::Ordering::Greater => {
                best_ext = ext;
                best_lo = slot;
                best_hi = slot + 1;
            }
            std::cmp::Ordering::Equal if best_ext > 0 => {
                debug_assert_eq!(best_hi, slot, "maximizers must be contiguous");
                best_hi = slot + 1;
            }
            _ => {}
        }
    }
    if best_ext == 0 {
        // No suffix continues the match: the MMP is exactly the shared prefix, and
        // every suffix of the interval carries it.
        if depth == 0 {
            return Mmp { start: from, len: 0, interval: SaInterval { lo: 0, hi: 0 } };
        }
        return Mmp { start: from, len: depth, interval: iv };
    }
    Mmp { start: from, len: depth + best_ext, interval: SaInterval { lo: best_lo, hi: best_hi } }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexParams, StarIndex};
    use genomics::{Annotation, Assembly, AssemblyKind, Contig, ContigKind, DnaSeq};

    fn index_of(seq: &str) -> StarIndex {
        let asm = Assembly {
            name: "T".into(),
            release: 1,
            kind: AssemblyKind::Toplevel,
            contigs: vec![Contig {
                name: "1".into(),
                kind: ContigKind::Chromosome,
                seq: seq.parse::<DnaSeq>().unwrap(),
            }],
        };
        StarIndex::build(&asm, &Annotation::default(), &IndexParams::default()).unwrap()
    }

    /// Reference MMP: longest prefix of `q` occurring in `text`.
    fn naive_mmp(text: &str, q: &str) -> usize {
        (0..=q.len()).rev().find(|&l| l == 0 || text.contains(&q[..l])).unwrap_or(0)
    }

    #[test]
    fn finds_full_match_for_genomic_substring() {
        let text = "ACGTACGGTTACGATCGGATCGATTACGGATC";
        let idx = index_of(text);
        let q: DnaSeq = text[5..25].parse().unwrap();
        let m = mmp_search(&idx, q.codes(), 0);
        assert_eq!(m.len, 20);
        assert!(m.occurrences() >= 1);
        let hit = idx.sa().suffix(m.interval.lo) as usize;
        assert_eq!(&text[hit..hit + 20], &text[5..25]);
    }

    #[test]
    fn stops_at_first_mismatch() {
        let text = "ACGTACGGTTACGATCGGATCGATTACGGATC";
        let idx = index_of(text);
        // 10 genomic bases then a divergent tail absent from the genome.
        let q: DnaSeq = format!("{}{}", &text[3..13], "CCCCCCCCCC").parse().unwrap();
        let m = mmp_search(&idx, q.codes(), 0);
        assert_eq!(m.len, naive_mmp(text, &q.to_string()));
        assert!(m.len >= 10);
    }

    #[test]
    fn matches_naive_mmp_on_random_queries() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let text_seq = DnaSeq::random(&mut rng, 3000);
        let text = text_seq.to_string();
        let idx = index_of(&text);
        for _ in 0..200 {
            let qlen = rng.gen_range(1..60);
            let q = DnaSeq::random(&mut rng, qlen);
            let m = mmp_search(&idx, q.codes(), 0);
            assert_eq!(m.len, naive_mmp(&text, &q.to_string()), "query {q}");
            if m.len > 0 {
                // Every reported occurrence really matches.
                for slot in m.interval.lo..m.interval.hi {
                    let pos = idx.sa().suffix(slot) as usize;
                    assert_eq!(&text[pos..pos + m.len], &q.to_string()[..m.len]);
                }
            }
        }
    }

    #[test]
    fn deep_table_never_changes_results() {
        use crate::prefix::PrefixTable;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1234);
        let text_seq = DnaSeq::random(&mut rng, 5000);
        let text = text_seq.to_string();
        let idx = index_of(&text);
        let codes = idx.genome().unpack();
        let deep = PrefixTable::deepen(idx.sa(), &codes, idx.prefix().k());
        assert!(!deep.is_empty(), "5kb genome supports a deeper table");
        assert!(deep.iter().all(|t| t.k() > idx.prefix().k()));
        for i in 0..500 {
            // Mix pure-random queries with genomic and near-genomic ones so both the
            // deep-hit and deep-miss fallback paths are exercised.
            let q = match i % 3 {
                0 => {
                    let qlen = rng.gen_range(1..80usize);
                    DnaSeq::random(&mut rng, qlen)
                }
                1 => {
                    let s = rng.gen_range(0..text.len() - 80);
                    text[s..s + rng.gen_range(1..80usize)].parse::<DnaSeq>().unwrap()
                }
                _ => {
                    let s = rng.gen_range(0..text.len() - 80);
                    let mut codes = text[s..s + 60].parse::<DnaSeq>().unwrap().codes().to_vec();
                    let flip = rng.gen_range(0..codes.len());
                    codes[flip] = (codes[flip] + rng.gen_range(1..4u8)) % 4;
                    DnaSeq::from_codes(codes)
                }
            };
            let plain = mmp_search(&idx, q.codes(), 0);
            let fast = mmp_search_with(&idx, &deep, q.codes(), 0);
            assert_eq!(plain, fast, "query {q}");
        }
    }

    #[test]
    fn hash_layer_never_changes_results() {
        use crate::hashseed::HashSeedIndex;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4321);
        let text_seq = DnaSeq::random(&mut rng, 5000);
        let text = text_seq.to_string();
        let idx = index_of(&text);
        for s in [10usize, 16, 24] {
            let hash = HashSeedIndex::build(idx.sa(), idx.genome().seq(), s);
            for i in 0..300 {
                let q = match i % 3 {
                    0 => {
                        let len = rng.gen_range(1..80usize);
                        DnaSeq::random(&mut rng, len)
                    }
                    1 => {
                        let st = rng.gen_range(0..text.len() - 80);
                        text[st..st + rng.gen_range(1..80usize)].parse::<DnaSeq>().unwrap()
                    }
                    _ => {
                        let st = rng.gen_range(0..text.len() - 80);
                        let mut codes =
                            text[st..st + 60].parse::<DnaSeq>().unwrap().codes().to_vec();
                        let flip = rng.gen_range(0..codes.len());
                        codes[flip] = (codes[flip] + rng.gen_range(1..4u8)) % 4;
                        DnaSeq::from_codes(codes)
                    }
                };
                let packed = Packed2::from_codes(q.codes());
                let plain = mmp_search(&idx, q.codes(), 0);
                let hashed = mmp_search_packed(&idx, &[], Some(&hash), &packed, 0);
                assert_eq!(plain, hashed, "s={s} query {q}");
            }
        }
    }

    #[test]
    fn respects_from_offset() {
        let text = "ACGTACGGTTACGATCGGATCGATTACGGATC";
        let idx = index_of(text);
        let q: DnaSeq = format!("CCCCC{}", &text[0..15]).parse().unwrap();
        let m = mmp_search(&idx, q.codes(), 5);
        assert_eq!(m.start, 5);
        assert_eq!(m.len, 15);
    }

    #[test]
    fn empty_query_yields_len_zero() {
        let idx = index_of("ACGTACGT");
        let q: DnaSeq = "ACGT".parse().unwrap();
        let m = mmp_search(&idx, q.codes(), 4);
        assert_eq!(m.len, 0);
        assert_eq!(m.occurrences(), 0);
    }

    #[test]
    fn counts_all_occurrences_of_repeats() {
        let unit = "ACGGTTCAGCATCGAAACCCTTTGGGA"; // 27bp unique-ish unit
        let text = unit.repeat(4);
        let idx = index_of(&text);
        let q: DnaSeq = unit.parse().unwrap();
        let m = mmp_search(&idx, q.codes(), 0);
        // The full query matches (it is a substring) and the first `len` bases occur
        // at least 4 times.
        assert_eq!(m.len, unit.len());
        assert_eq!(m.occurrences(), 4);
    }
}
