//! `Log.final.out` — end-of-run summary statistics.
//!
//! The genome-release experiment (§III-A) checks that mapping rates stay within 1 %
//! across indices; this summary is where that number comes from.

use crate::progress::ProgressSnapshot;
use std::fmt;

/// Final run summary, mirroring the fields of STAR's `Log.final.out` that the
/// reproduction uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FinalLog {
    /// Number of input reads.
    pub input_reads: u64,
    /// Uniquely mapped reads.
    pub unique: u64,
    /// Multimapped reads (within the cap).
    pub multi: u64,
    /// Reads mapped to too many loci.
    pub too_many: u64,
    /// Unmapped reads.
    pub unmapped: u64,
    /// Wall-clock seconds of the mapping run.
    pub elapsed_secs: f64,
}

impl FinalLog {
    /// Build from the final progress snapshot.
    pub fn from_snapshot(s: &ProgressSnapshot) -> FinalLog {
        FinalLog {
            input_reads: s.processed,
            unique: s.unique,
            multi: s.multi,
            too_many: s.too_many,
            unmapped: s.unmapped,
            elapsed_secs: s.elapsed_secs,
        }
    }

    /// Uniquely mapped %, of input reads.
    pub fn unique_pct(&self) -> f64 {
        pct(self.unique, self.input_reads)
    }

    /// Multimapped %, of input reads.
    pub fn multi_pct(&self) -> f64 {
        pct(self.multi, self.input_reads)
    }

    /// Overall mapped % (unique + multi) — the paper's "mapping rate".
    pub fn mapped_pct(&self) -> f64 {
        pct(self.unique + self.multi, self.input_reads)
    }

    /// Mapping speed in reads/second.
    pub fn reads_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.input_reads as f64 / self.elapsed_secs
        }
    }

    /// The deterministic rows of `Log.final.out`: everything except the
    /// wall-clock-dependent mapping-speed row. This is the text the
    /// checkpoint/resume differential proof compares byte-for-byte — two runs
    /// that aligned the same reads produce identical canonical text regardless
    /// of how long either took.
    pub fn canonical_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("                          Number of input reads |\t{}\n", self.input_reads));
        out.push_str(&format!("                   Uniquely mapped reads number |\t{}\n", self.unique));
        out.push_str(&format!("                        Uniquely mapped reads % |\t{:.2}%\n", self.unique_pct()));
        out.push_str(&format!("        Number of reads mapped to multiple loci |\t{}\n", self.multi));
        out.push_str(&format!("             % of reads mapped to multiple loci |\t{:.2}%\n", self.multi_pct()));
        out.push_str(&format!("        Number of reads mapped to too many loci |\t{}\n", self.too_many));
        out.push_str(&format!("             % of reads mapped to too many loci |\t{:.2}%\n", pct(self.too_many, self.input_reads)));
        out.push_str(&format!("                         Number of unmapped reads |\t{}\n", self.unmapped));
        out.push_str(&format!("                              % of unmapped reads |\t{:.2}%\n", pct(self.unmapped, self.input_reads)));
        out.push_str(&format!("                                 Overall mapped % |\t{:.2}%\n", self.mapped_pct()));
        out
    }
}

fn pct(x: u64, of: u64) -> f64 {
    if of == 0 {
        0.0
    } else {
        x as f64 / of as f64 * 100.0
    }
}

impl fmt::Display for FinalLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.canonical_text())?;
        write!(f, "                           Mapping speed, reads/s |\t{:.0}", self.reads_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> FinalLog {
        FinalLog { input_reads: 1000, unique: 800, multi: 100, too_many: 40, unmapped: 60, elapsed_secs: 2.0 }
    }

    #[test]
    fn percentages_are_of_input_reads() {
        let l = log();
        assert!((l.unique_pct() - 80.0).abs() < 1e-12);
        assert!((l.multi_pct() - 10.0).abs() < 1e-12);
        assert!((l.mapped_pct() - 90.0).abs() < 1e-12);
        assert!((l.reads_per_sec() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn zero_inputs_do_not_divide_by_zero() {
        let l = FinalLog { input_reads: 0, unique: 0, multi: 0, too_many: 0, unmapped: 0, elapsed_secs: 0.0 };
        assert_eq!(l.mapped_pct(), 0.0);
        assert_eq!(l.reads_per_sec(), 0.0);
    }

    #[test]
    fn display_contains_star_style_rows() {
        let text = log().to_string();
        assert!(text.contains("Number of input reads |\t1000"));
        assert!(text.contains("Uniquely mapped reads % |\t80.00%"));
        assert!(text.contains("Overall mapped % |\t90.00%"));
    }

    #[test]
    fn from_snapshot_copies_fields() {
        let s = ProgressSnapshot {
            total_reads: 10,
            processed: 10,
            unique: 7,
            multi: 1,
            too_many: 1,
            unmapped: 1,
            elapsed_secs: 1.5,
        };
        let l = FinalLog::from_snapshot(&s);
        assert_eq!(l.input_reads, 10);
        assert_eq!(l.unique, 7);
        assert!((l.elapsed_secs - 1.5).abs() < 1e-12);
    }
}
