//! Error type for index construction and alignment runs.

use std::fmt;

/// Errors from index building, (de)serialization, or run configuration.
#[derive(Debug)]
pub enum StarError {
    /// The assembly/annotation given to the index builder is unusable.
    InvalidInput(String),
    /// Alignment/run parameters are inconsistent.
    InvalidParams(String),
    /// A serialized index blob is corrupt or from an incompatible version.
    CorruptIndex(String),
    /// An underlying genomics-layer error.
    Genomics(genomics::GenomicsError),
    /// An I/O error while reading/writing an index.
    Io(std::io::Error),
}

impl fmt::Display for StarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StarError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            StarError::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            StarError::CorruptIndex(m) => write!(f, "corrupt index: {m}"),
            StarError::Genomics(e) => write!(f, "genomics error: {e}"),
            StarError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for StarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StarError::Genomics(e) => Some(e),
            StarError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<genomics::GenomicsError> for StarError {
    fn from(e: genomics::GenomicsError) -> Self {
        StarError::Genomics(e)
    }
}

impl From<std::io::Error> for StarError {
    fn from(e: std::io::Error) -> Self {
        StarError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = StarError::CorruptIndex("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        assert!(std::error::Error::source(&e).is_none());
        let e: StarError = std::io::Error::new(std::io::ErrorKind::Other, "x").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
