//! Paired-end alignment.
//!
//! STAR aligns read pairs as one fragment: candidate alignments of both mates are
//! enumerated independently, then *paired* — same contig, opposite orientations (FR),
//! mates facing each other within the insert-size window — and the pair score is the
//! sum of the mate scores. Classification (unique/multi/too-many/unmapped) applies to
//! the *pair*; reads whose mates cannot be properly paired count as unmapped
//! (`--outFilterMultimapNmax`-style accounting on fragments, the unit the paper's
//! mapping-rate statistic uses for paired libraries).

use crate::align::{Aligner, AlignmentRecord, MapClass, PhaseWork};
use crate::extend::WindowAlignment;
use crate::scratch::{with_thread_scratch, AlignScratch};
use genomics::FastqRecord;

/// Insert-size acceptance window for proper pairs.
#[derive(Clone, Copy, Debug)]
pub struct PairParams {
    /// Minimum outer distance (fragment length) of a proper pair.
    pub min_insert: u64,
    /// Maximum outer distance of a proper pair.
    pub max_insert: u64,
}

impl Default for PairParams {
    fn default() -> Self {
        PairParams { min_insert: 50, max_insert: 1_200 }
    }
}

/// Outcome of aligning one read pair.
#[derive(Clone, Debug)]
pub struct PairOutcome {
    /// Fragment-level classification.
    pub class: MapClass,
    /// Primary alignment of mate 1 (when the pair mapped).
    pub rec1: Option<AlignmentRecord>,
    /// Primary alignment of mate 2.
    pub rec2: Option<AlignmentRecord>,
    /// Outer fragment length of the primary pair.
    pub insert_size: Option<u64>,
    /// Candidate pairings examined (work measure).
    pub pairs_examined: u32,
    /// Per-phase alignment work for both mates combined.
    pub work: PhaseWork,
}

impl PairOutcome {
    /// Does the fragment count as mapped?
    pub fn is_mapped(&self) -> bool {
        self.class.is_mapped()
    }

    fn unmapped(pairs_examined: u32, work: PhaseWork) -> PairOutcome {
        PairOutcome {
            class: MapClass::Unmapped,
            rec1: None,
            rec2: None,
            insert_size: None,
            pairs_examined,
            work,
        }
    }
}

/// One scored candidate pairing (pooled in [`AlignScratch`]).
#[derive(Debug)]
pub(crate) struct CandidatePair {
    pub(crate) rc1: bool,
    pub(crate) i1: usize,
    pub(crate) i2: usize,
    pub(crate) score: i32,
    pub(crate) insert: u64,
}

impl<'i> Aligner<'i> {
    /// Align a read pair (FR orientation).
    pub fn align_pair(&self, r1: &FastqRecord, r2: &FastqRecord) -> PairOutcome {
        self.align_pair_with(r1, r2, &PairParams::default())
    }

    /// Align a read pair with explicit insert-size bounds.
    pub fn align_pair_with(&self, r1: &FastqRecord, r2: &FastqRecord, pp: &PairParams) -> PairOutcome {
        let mut out =
            with_thread_scratch(|scratch| self.align_pair_scratch(r1, r2, pp, scratch, true));
        if let Some(rec) = &mut out.rec1 {
            rec.read_id = r1.id.clone();
        }
        if let Some(rec) = &mut out.rec2 {
            rec.read_id = r2.id.clone();
        }
        out
    }

    /// Align a read pair without cloning ids into the records (the run driver
    /// attaches ids only when records are kept). `materialize: false` skips
    /// building records entirely.
    pub(crate) fn align_pair_lean(
        &self,
        r1: &FastqRecord,
        r2: &FastqRecord,
        pp: &PairParams,
        materialize: bool,
    ) -> PairOutcome {
        with_thread_scratch(|scratch| self.align_pair_scratch(r1, r2, pp, scratch, materialize))
    }

    /// Pair alignment through caller-provided scratch buffers.
    fn align_pair_scratch(
        &self,
        r1: &FastqRecord,
        r2: &FastqRecord,
        pp: &PairParams,
        scratch: &mut AlignScratch,
        materialize: bool,
    ) -> PairOutcome {
        let genome = self.index().genome();
        let AlignScratch { core, cands, cands2, pairs } = scratch;
        let mut work = self.candidates_into(&r1.seq, core, cands);
        let w2 = self.candidates_into(&r2.seq, core, cands2);
        work.add(&w2);
        if cands.is_empty() || cands2.is_empty() {
            return PairOutcome::unmapped(0, work);
        }

        // Enumerate proper pairings: opposite orientation, same contig, facing
        // inward, insert within bounds.
        pairs.clear();
        for (i1, (rc1, wa1)) in cands.iter().enumerate() {
            for (i2, (rc2, wa2)) in cands2.iter().enumerate() {
                if rc1 == rc2 {
                    continue; // FR libraries: mates land on opposite strands
                }
                let contig1 = genome.contig_index_of(wa1.gstart);
                let contig2 = genome.contig_index_of(wa2.gstart);
                if contig1 != contig2 {
                    continue;
                }
                // The forward-strand mate must start before (or at) the reverse one;
                // the outer distance is the fragment length.
                let (fwd, rev) = if *rc1 { (wa2, wa1) } else { (wa1, wa2) };
                let fwd_start = fwd.gstart;
                let rev_end = rev.gstart + aligned_genome_span(rev);
                if rev_end <= fwd_start {
                    continue; // facing outward
                }
                let insert = rev_end - fwd_start;
                if insert < pp.min_insert || insert > pp.max_insert {
                    continue;
                }
                pairs.push(CandidatePair {
                    rc1: *rc1,
                    i1,
                    i2,
                    score: wa1.score + wa2.score,
                    insert,
                });
            }
        }
        let pairs_examined = pairs.len() as u32;
        if pairs.is_empty() {
            return PairOutcome::unmapped(0, work);
        }

        let best_score = pairs.iter().map(|p| p.score).max().expect("non-empty");
        let n_hits = pairs
            .iter()
            .filter(|p| p.score + self.params().multimap_score_range >= best_score)
            .count() as u32;
        let best = pairs
            .iter()
            .max_by_key(|p| (p.score, std::cmp::Reverse(p.insert)))
            .expect("non-empty");

        let (rc1, wa1) = cands.get(best.i1);
        let (_, wa2) = cands2.get(best.i2);
        // Both mates must pass the per-read filters.
        if !self.passes_filters(wa1, r1.seq.len()) || !self.passes_filters(wa2, r2.seq.len()) {
            return PairOutcome::unmapped(pairs_examined, work);
        }
        let class = if n_hits == 1 {
            MapClass::Unique
        } else if n_hits as usize <= self.params().out_filter_multimap_nmax {
            MapClass::Multi(n_hits)
        } else {
            MapClass::TooMany(n_hits)
        };
        let _ = best.rc1;
        let (rec1, rec2) = if materialize {
            (
                Some(self.record_for(*rc1, wa1, n_hits)),
                Some(self.record_for(!*rc1, wa2, n_hits)),
            )
        } else {
            (None, None)
        };
        PairOutcome {
            class,
            rec1,
            rec2,
            insert_size: Some(best.insert),
            pairs_examined,
            work,
        }
    }
}

/// Genomic span covered by a window alignment (M + N bases).
fn aligned_genome_span(wa: &WindowAlignment) -> u64 {
    wa.cigar
        .iter()
        .map(|op| match op {
            crate::align::CigarOp::M(n) | crate::align::CigarOp::N(n) => *n as u64,
            crate::align::CigarOp::S(_) => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexParams, StarIndex};
    use crate::AlignParams;
    use genomics::annotation::AnnotationParams;
    use genomics::simulate::ReadOrigin;
    use genomics::{
        Annotation, Assembly, EnsemblGenerator, EnsemblParams, LibraryType, ReadSimulator,
        Release, SimulatorParams,
    };

    fn setup() -> (Assembly, Annotation, StarIndex) {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = g.generate(Release::R111);
        let ann = Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap();
        let idx = StarIndex::build(&asm, &ann, &IndexParams::default()).unwrap();
        (asm, ann, idx)
    }

    #[test]
    fn genomic_pairs_align_properly_with_correct_insert() {
        let (asm, ann, idx) = setup();
        let aligner = Aligner::new(&idx, AlignParams::default());
        let mut params = SimulatorParams::for_library(LibraryType::BulkPolyA);
        params.exonic_fraction = 0.0;
        params.genomic_fraction = 1.0;
        params.error_rate = 0.0;
        let mut sim = ReadSimulator::new(&asm, &ann, params, 77).unwrap();
        let pairs = sim.simulate_pairs(150, "GP");
        let mut mapped = 0;
        let mut insert_ok = 0;
        for pair in &pairs {
            let out = aligner.align_pair(&pair.r1, &pair.r2);
            if out.is_mapped() {
                mapped += 1;
                let ReadOrigin::Genomic { contig, pos } = &pair.origin else { unreachable!() };
                let rec1 = out.rec1.as_ref().unwrap();
                let rec2 = out.rec2.as_ref().unwrap();
                assert_eq!(&*rec1.contig, contig.as_str());
                assert_eq!(&*rec2.contig, contig.as_str());
                assert!(rec1.reverse != rec2.reverse, "FR orientation");
                // Fragment start recovered (the forward mate's position).
                let fwd_pos = if rec1.reverse { rec2.pos } else { rec1.pos };
                assert!((fwd_pos as i64 - *pos as i64).unsigned_abs() <= 5);
                if out.insert_size.unwrap().abs_diff(pair.fragment_len as u64) <= 10 {
                    insert_ok += 1;
                }
            }
        }
        assert!(mapped as f64 / pairs.len() as f64 > 0.9, "mapped {mapped}/{}", pairs.len());
        assert!(insert_ok as f64 / mapped as f64 > 0.9, "insert accuracy {insert_ok}/{mapped}");
    }

    #[test]
    fn transcript_pairs_align_with_splices_allowed() {
        let (asm, ann, idx) = setup();
        let aligner = Aligner::new(&idx, AlignParams::default());
        let mut params = SimulatorParams::for_library(LibraryType::BulkPolyA);
        params.exonic_fraction = 1.0;
        params.genomic_fraction = 0.0;
        // Wide insert window: spliced fragments span introns on the genome.
        let pp = PairParams { min_insert: 50, max_insert: 6_000 };
        let mut sim = ReadSimulator::new(&asm, &ann, params, 78).unwrap();
        let pairs = sim.simulate_pairs(200, "TP");
        let mapped = pairs
            .iter()
            .filter(|p| aligner.align_pair_with(&p.r1, &p.r2, &pp).is_mapped())
            .count();
        assert!(mapped as f64 / pairs.len() as f64 > 0.8, "mapped {mapped}/{}", pairs.len());
    }

    #[test]
    fn junk_pairs_are_unmapped() {
        let (asm, ann, idx) = setup();
        let aligner = Aligner::new(&idx, AlignParams::default());
        let mut params = SimulatorParams::for_library(LibraryType::SingleCell3Prime);
        params.exonic_fraction = 0.0;
        params.genomic_fraction = 0.0;
        let mut sim = ReadSimulator::new(&asm, &ann, params, 79).unwrap();
        for pair in sim.simulate_pairs(60, "JP") {
            assert!(!aligner.align_pair(&pair.r1, &pair.r2).is_mapped());
        }
    }

    #[test]
    fn mates_on_different_contigs_do_not_pair() {
        let (asm, _, idx) = setup();
        let aligner = Aligner::new(&idx, AlignParams::default());
        let c1 = asm.contig("1").unwrap();
        let c2 = asm.contig("2").unwrap();
        let r1 = FastqRecord::with_uniform_quality("x/1".into(), c1.seq.subseq(500, 600), 35);
        let r2 = FastqRecord::with_uniform_quality(
            "x/2".into(),
            c2.seq.subseq(500, 600).reverse_complement(),
            35,
        );
        let out = aligner.align_pair(&r1, &r2);
        assert!(!out.is_mapped(), "cross-contig mates are not a proper pair");
    }

    #[test]
    fn same_strand_mates_do_not_pair() {
        let (asm, _, idx) = setup();
        let aligner = Aligner::new(&idx, AlignParams::default());
        let c1 = asm.contig("1").unwrap();
        // Both mates forward: violates FR.
        let r1 = FastqRecord::with_uniform_quality("x/1".into(), c1.seq.subseq(500, 600), 35);
        let r2 = FastqRecord::with_uniform_quality("x/2".into(), c1.seq.subseq(700, 800), 35);
        assert!(!aligner.align_pair(&r1, &r2).is_mapped());
    }

    #[test]
    fn out_of_range_insert_is_rejected() {
        let (asm, _, idx) = setup();
        let aligner = Aligner::new(&idx, AlignParams::default());
        let c1 = asm.contig("1").unwrap();
        // 5 kb apart: beyond the default 1.2 kb insert cap.
        let r1 = FastqRecord::with_uniform_quality("x/1".into(), c1.seq.subseq(500, 600), 35);
        let r2 = FastqRecord::with_uniform_quality(
            "x/2".into(),
            c1.seq.subseq(5_500, 5_600).reverse_complement(),
            35,
        );
        assert!(!aligner.align_pair(&r1, &r2).is_mapped());
        // But an explicit wider window accepts it.
        let wide = PairParams { min_insert: 50, max_insert: 10_000 };
        assert!(aligner.align_pair_with(&r1, &r2, &wide).is_mapped());
    }

    #[test]
    fn pair_resolves_multimapping_that_single_ends_cannot() {
        // Mate 1 lands in a duplicated region (multi as a single read); mate 2 is
        // unique. The pair constraint disambiguates the fragment.
        let (asm, _, _) = setup();
        let mut contigs = asm.contigs.clone();
        // Duplicate a 600bp window of chromosome 1 onto a new scaffold.
        let chr1 = asm.contig("1").unwrap();
        contigs.push(genomics::Contig {
            name: "DUP1".into(),
            kind: genomics::ContigKind::UnplacedScaffold,
            seq: chr1.seq.subseq(1_000, 1_600),
        });
        let asm2 = Assembly { contigs, ..asm.clone() };
        let idx2 = StarIndex::build(&asm2, &Annotation::default(), &IndexParams::default()).unwrap();
        let aligner = Aligner::new(&idx2, AlignParams::default());

        // Mate 1 inside the duplicated window; mate 2 outside it (unique), 250bp
        // fragment starting at 900: r1 = [900,1000) fwd unique-ish... choose r1 in
        // dup region [1100,1200), r2 rc at [1250,1350) which is also in dup... use
        // fragment [1100, 1750): r2 at [1650,1750) OUTSIDE the duplicated window.
        let r1 = FastqRecord::with_uniform_quality("x/1".into(), chr1.seq.subseq(1_100, 1_200), 35);
        let single = aligner.align_read(&r1);
        assert!(
            matches!(single.class, MapClass::Multi(_)),
            "premise: mate 1 alone is multimapping, got {:?}",
            single.class
        );
        let r2 = FastqRecord::with_uniform_quality(
            "x/2".into(),
            chr1.seq.subseq(1_650, 1_750).reverse_complement(),
            35,
        );
        let out = aligner.align_pair(&r1, &r2);
        assert_eq!(out.class, MapClass::Unique, "pairing must disambiguate");
        assert_eq!(&*out.rec1.unwrap().contig, "1");
    }

    #[test]
    fn empty_reads_are_unmapped() {
        let (_, _, idx) = setup();
        let aligner = Aligner::new(&idx, AlignParams::default());
        let empty = FastqRecord::with_uniform_quality("e/1".into(), genomics::DnaSeq::new(), 35);
        let out = aligner.align_pair(&empty, &empty);
        assert!(!out.is_mapped());
        assert_eq!(out.pairs_examined, 0);
    }
}
