//! Splice-junction output collection (STAR's `SJ.out.tab`).
//!
//! While mapping, STAR tallies every splice junction its alignments used and writes
//! `SJ.out.tab`: one row per junction with its motif, annotation status, supporting
//! read counts and maximum spliced overhang. The same table seeds the second pass of
//! `--twopassMode Basic` — novel, well-supported junctions are inserted into the
//! sjdb and the reads are re-aligned ([`crate::runner::Runner::run_two_pass`]).

use std::collections::HashMap;
use std::sync::Arc;

use crate::align::{AlignmentRecord, CigarOp, MapClass};
use crate::sjdb::SpliceClass;

/// Accumulated statistics for one junction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JunctionStats {
    /// Uniquely-mapping reads crossing the junction.
    pub unique_reads: u64,
    /// Multimapping reads crossing the junction.
    pub multi_reads: u64,
    /// Maximum spliced alignment overhang (min of the M runs flanking the N op).
    pub max_overhang: u32,
    /// Junction classification (annotated / canonical / non-canonical).
    pub class: SpliceClass,
}

impl JunctionStats {
    fn update(&mut self, unique: bool, overhang: u32, class: SpliceClass) {
        if unique {
            self.unique_reads += 1;
        } else {
            self.multi_reads += 1;
        }
        self.max_overhang = self.max_overhang.max(overhang);
        self.class = class;
    }
}

/// One output row: contig-local junction plus stats.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JunctionRow {
    /// Contig name.
    pub contig: String,
    /// First intronic base, 0-based contig-local (printed 1-based).
    pub intron_start: u64,
    /// One past the last intronic base.
    pub intron_end: u64,
    /// Accumulated stats.
    pub stats: JunctionStats,
}

/// Collects junction usage across a run.
#[derive(Debug, Default)]
pub struct JunctionCollector {
    table: HashMap<(Arc<str>, u64, u64), JunctionStats>,
}

impl JunctionCollector {
    /// An empty collector.
    pub fn new() -> JunctionCollector {
        JunctionCollector::default()
    }

    /// Record a mapped read's junctions (unmapped/too-many reads contribute nothing,
    /// like STAR).
    pub fn record(&mut self, class: MapClass, record: Option<&AlignmentRecord>) {
        if !class.is_mapped() {
            return;
        }
        let Some(rec) = record else { return };
        if rec.junctions.is_empty() {
            return;
        }
        let unique = matches!(class, MapClass::Unique);
        let overhangs = junction_overhangs(&rec.cigar);
        for (i, &(start, end, jclass)) in rec.junctions.iter().enumerate() {
            let overhang = overhangs.get(i).copied().unwrap_or(0);
            self.table
                .entry((rec.contig.clone(), start, end))
                .or_default()
                .update(unique, overhang, jclass);
        }
    }

    /// Merge previously-finished rows back in (checkpoint resume): counts add,
    /// overhangs take the max, and the class follows the merged rows — the same
    /// combination [`JunctionStats::update`] applies read by read, so a resumed
    /// run finishes with the table an uninterrupted run would have produced.
    pub fn absorb_rows(&mut self, rows: &[JunctionRow]) {
        for row in rows {
            let key: (Arc<str>, u64, u64) =
                (Arc::from(row.contig.as_str()), row.intron_start, row.intron_end);
            let stats = self.table.entry(key).or_default();
            stats.unique_reads += row.stats.unique_reads;
            stats.multi_reads += row.stats.multi_reads;
            stats.max_overhang = stats.max_overhang.max(row.stats.max_overhang);
            stats.class = row.stats.class;
        }
    }

    /// Number of distinct junctions observed.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no junction has been observed.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Finish into sorted rows (contig, start, end).
    pub fn finish(self) -> Vec<JunctionRow> {
        let mut rows: Vec<JunctionRow> = self
            .table
            .into_iter()
            .map(|((contig, intron_start, intron_end), stats)| JunctionRow {
                contig: String::from(&*contig),
                intron_start,
                intron_end,
                stats,
            })
            .collect();
        rows.sort_by(|a, b| {
            (&a.contig, a.intron_start, a.intron_end).cmp(&(&b.contig, b.intron_start, b.intron_end))
        });
        rows
    }
}

/// Per-junction overhang: the shorter of the two M runs flanking each N op.
fn junction_overhangs(cigar: &[CigarOp]) -> Vec<u32> {
    let mut overhangs = Vec::new();
    // Aligned run lengths between N ops.
    let mut m_runs: Vec<u32> = vec![0];
    for op in cigar {
        match op {
            CigarOp::M(n) => *m_runs.last_mut().expect("non-empty") += n,
            CigarOp::N(_) => m_runs.push(0),
            CigarOp::S(_) => {}
        }
    }
    for w in m_runs.windows(2) {
        overhangs.push(w[0].min(w[1]));
    }
    overhangs
}

/// Render rows in SJ.out.tab format: contig, 1-based intron start, 1-based intron
/// end (inclusive), strand (0 undefined, kept 0 in the substitution-only model),
/// motif code (0 non-canonical, 1 GT/AG-class canonical, 20 annotated marker column
/// folded into column 6 like STAR's annotated flag), unique reads, multi reads,
/// max overhang.
pub fn to_sj_tab(rows: &[JunctionRow]) -> String {
    let mut out = String::new();
    for row in rows {
        let motif = match row.stats.class {
            SpliceClass::NonCanonical => 0,
            SpliceClass::Canonical | SpliceClass::Annotated => 1,
        };
        let annotated = u8::from(row.stats.class == SpliceClass::Annotated);
        out.push_str(&format!(
            "{}\t{}\t{}\t0\t{}\t{}\t{}\t{}\t{}\n",
            row.contig,
            row.intron_start + 1,
            row.intron_end, // end is exclusive 0-based == inclusive 1-based
            motif,
            annotated,
            row.stats.unique_reads,
            row.stats.multi_reads,
            row.stats.max_overhang,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(contig: &str, junctions: Vec<(u64, u64, SpliceClass)>, cigar: Vec<CigarOp>) -> AlignmentRecord {
        AlignmentRecord {
            read_id: "r".into(),
            contig: contig.into(),
            pos: 0,
            reverse: false,
            cigar,
            score: 90,
            mismatches: 0,
            n_hits: 1,
            mapq: 255,
            junctions,
        }
    }

    #[test]
    fn collects_unique_and_multi_separately() {
        let mut c = JunctionCollector::new();
        let rec = record(
            "1",
            vec![(100, 400, SpliceClass::Annotated)],
            vec![CigarOp::M(40), CigarOp::N(300), CigarOp::M(60)],
        );
        c.record(MapClass::Unique, Some(&rec));
        c.record(MapClass::Unique, Some(&rec));
        c.record(MapClass::Multi(3), Some(&rec));
        c.record(MapClass::Unmapped, None);
        c.record(MapClass::TooMany(50), Some(&rec));
        let rows = c.finish();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].stats.unique_reads, 2);
        assert_eq!(rows[0].stats.multi_reads, 1);
        assert_eq!(rows[0].stats.max_overhang, 40);
        assert_eq!(rows[0].stats.class, SpliceClass::Annotated);
    }

    #[test]
    fn overhang_is_min_of_flanking_runs_per_junction() {
        // 10M 100N 50M 200N 5M: overhangs 10 and 5.
        let cigar = vec![
            CigarOp::S(3),
            CigarOp::M(10),
            CigarOp::N(100),
            CigarOp::M(50),
            CigarOp::N(200),
            CigarOp::M(5),
        ];
        assert_eq!(junction_overhangs(&cigar), vec![10, 5]);
        assert_eq!(junction_overhangs(&[CigarOp::M(100)]), Vec::<u32>::new());
    }

    #[test]
    fn rows_sort_by_contig_and_position() {
        let mut c = JunctionCollector::new();
        for (contig, s, e) in [("2", 50u64, 80u64), ("1", 300, 400), ("1", 100, 200)] {
            let rec = record(
                contig,
                vec![(s, e, SpliceClass::Canonical)],
                vec![CigarOp::M(50), CigarOp::N((e - s) as u32), CigarOp::M(50)],
            );
            c.record(MapClass::Unique, Some(&rec));
        }
        let rows = c.finish();
        let keys: Vec<(&str, u64)> = rows.iter().map(|r| (r.contig.as_str(), r.intron_start)).collect();
        assert_eq!(keys, vec![("1", 100), ("1", 300), ("2", 50)]);
    }

    #[test]
    fn sj_tab_is_one_based_with_flags() {
        let mut c = JunctionCollector::new();
        let rec = record(
            "1",
            vec![(99, 400, SpliceClass::Annotated)],
            vec![CigarOp::M(30), CigarOp::N(301), CigarOp::M(70)],
        );
        c.record(MapClass::Unique, Some(&rec));
        let tab = to_sj_tab(&c.finish());
        assert_eq!(tab.trim_end(), "1\t100\t400\t0\t1\t1\t1\t0\t30");
    }

    #[test]
    fn spliceless_reads_contribute_nothing() {
        let mut c = JunctionCollector::new();
        let rec = record("1", vec![], vec![CigarOp::M(100)]);
        c.record(MapClass::Unique, Some(&rec));
        assert!(c.is_empty());
    }
}
