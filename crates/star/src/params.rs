//! Alignment parameters (the subset of STAR's `--outFilter*` / seed options that the
//! reproduction exercises).

use crate::StarError;
use serde::{Deserialize, Serialize};

/// Per-read alignment parameters.
///
/// Field names keep STAR's vocabulary so the mapping to the real tool is obvious.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AlignParams {
    /// Minimum seed (MMP) length to be usable as an anchor.
    pub min_seed_len: usize,
    /// Maximum suffix-array interval size for a seed to be enumerated
    /// (`--winAnchorMultimapNmax` analog): more repetitive hits are skipped.
    pub anchor_multimap_nmax: u32,
    /// Maximum reported alignments; beyond this a read counts as
    /// "mapped to too many loci" (`--outFilterMultimapNmax`).
    pub out_filter_multimap_nmax: usize,
    /// Candidate alignments within this score of the best are counted as
    /// multimapping hits (`--outFilterMultimapScoreRange`).
    pub multimap_score_range: i32,
    /// Minimum fraction of read bases matched for a mapped call
    /// (`--outFilterMatchNminOverLread`, STAR default 0.66).
    pub min_matched_over_read_len: f64,
    /// Maximum mismatches as a fraction of read length
    /// (`--outFilterMismatchNoverLmax`).
    pub max_mismatch_over_read_len: f64,
    /// Maximum intron length considered when stitching seeds (`--alignIntronMax`).
    pub max_intron_len: u64,
    /// Mismatch penalty in the alignment score (match = +1).
    pub mismatch_penalty: i32,
    /// Score penalty for an annotated splice junction (`--scoreGapATAC`-family; 0 in
    /// STAR when the junction is in the sjdb).
    pub annotated_splice_penalty: i32,
    /// Score penalty for a canonical (GT-AG / CT-AC) novel junction.
    pub canonical_splice_penalty: i32,
    /// Score penalty for a non-canonical novel junction (`--scoreGapNoncan`).
    pub noncanonical_splice_penalty: i32,
    /// Hard cap on seeds collected per read direction (guards pathological reads).
    pub max_seeds_per_read: usize,
    /// Seed through a SNAP-style fixed-length hash table
    /// ([`crate::hashseed::HashSeedIndex`]) before the prefix-table layers. Pure
    /// speed/memory trade: alignments are identical either way (the table entry
    /// *is* the interval suffix-array refinement would reach at the same depth).
    /// The table is built lazily on first use and cached on the index.
    #[serde(default)]
    pub use_hash_seed: bool,
    /// Fixed seed length `s` of the hash-seeding table (SNAP's seed size). Larger
    /// `s` skips more refinement rounds per probe but stores more distinct seeds.
    /// Only read when [`AlignParams::use_hash_seed`] is set.
    #[serde(default = "default_hash_seed_len")]
    pub hash_seed_len: usize,
    /// Measure wall-clock nanoseconds per alignment phase (seed/stitch/extend)
    /// into [`crate::align::PhaseWork`]'s `*_nanos` fields. Off by default: the
    /// measurement reads a monotonic clock, so it is machine-dependent and NOT
    /// deterministic — modeled-time runs and digests must leave it off. Unit
    /// counts are recorded either way.
    pub measure_phase_nanos: bool,
}

impl Default for AlignParams {
    fn default() -> Self {
        AlignParams {
            min_seed_len: 18,
            anchor_multimap_nmax: 50,
            out_filter_multimap_nmax: 10,
            multimap_score_range: 1,
            min_matched_over_read_len: 0.66,
            max_mismatch_over_read_len: 0.10,
            max_intron_len: 5_000,
            mismatch_penalty: 1,
            annotated_splice_penalty: 0,
            canonical_splice_penalty: 1,
            noncanonical_splice_penalty: 8,
            max_seeds_per_read: 200,
            use_hash_seed: false,
            hash_seed_len: default_hash_seed_len(),
            measure_phase_nanos: false,
        }
    }
}

fn default_hash_seed_len() -> usize {
    16
}

impl AlignParams {
    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), StarError> {
        if self.min_seed_len < 8 {
            return Err(StarError::InvalidParams("min_seed_len < 8 floods the seed search".into()));
        }
        if self.anchor_multimap_nmax == 0 || self.out_filter_multimap_nmax == 0 {
            return Err(StarError::InvalidParams("multimap caps must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.min_matched_over_read_len)
            || !(0.0..=1.0).contains(&self.max_mismatch_over_read_len)
        {
            return Err(StarError::InvalidParams("filter fractions must be in [0,1]".into()));
        }
        if self.max_seeds_per_read == 0 {
            return Err(StarError::InvalidParams("max_seeds_per_read must be positive".into()));
        }
        if self.use_hash_seed && !(8..=31).contains(&self.hash_seed_len) {
            return Err(StarError::InvalidParams(format!(
                "hash_seed_len {} outside 8..=31",
                self.hash_seed_len
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        AlignParams::default().validate().unwrap();
    }

    #[test]
    fn bad_values_rejected() {
        let mut p = AlignParams::default();
        p.min_seed_len = 2;
        assert!(p.validate().is_err());
        let mut p = AlignParams::default();
        p.out_filter_multimap_nmax = 0;
        assert!(p.validate().is_err());
        let mut p = AlignParams::default();
        p.min_matched_over_read_len = 1.5;
        assert!(p.validate().is_err());
        let mut p = AlignParams::default();
        p.max_seeds_per_read = 0;
        assert!(p.validate().is_err());
        let mut p = AlignParams::default();
        p.use_hash_seed = true;
        p.hash_seed_len = 40;
        assert!(p.validate().is_err());
        p.hash_seed_len = 16;
        assert!(p.validate().is_ok());
    }
}
