//! Chain extension and scoring: turn a seed chain into a full-read alignment.
//!
//! Three steps, matching STAR's extension stage under our substitution-only model:
//!
//! 1. **Gap filling** between consecutive seeds — equal read/genome gaps become
//!    mismatch runs; larger genome gaps become introns, with the splice point placed
//!    at the split of the read gap that minimizes mismatches, then classified
//!    (annotated / canonical GT-AG / non-canonical) for its score penalty.
//! 2. **End extension** — outward from the first/last seed, keeping the extension
//!    prefix that maximizes local score (match +1, mismatch −penalty); the rest is
//!    soft-clipped.
//! 3. **Scoring** — matched bases minus mismatch and splice penalties.
//!
//! The production path ([`extend_chain_into`]) is bit-parallel over the 2-bit packed
//! read and genome: end extensions process mismatch runs via 32-base
//! [`mismatch_mask`] words (the best prefix always ends a match run, because score
//! strictly increases inside one), and gap/splice mismatch counting is popcount over
//! the same masks. The original per-base loop is kept verbatim as
//! [`extend_chain_scalar`], the differential oracle the property suites pin the
//! bit-parallel path against — both must produce bit-equal scores and CIGARs.

use crate::align::CigarOp;
use crate::genome::{count_mismatches, mismatch_mask, Packed2, PackedGenome, BASES_PER_WORD};
use crate::params::AlignParams;
use crate::sjdb::{SpliceClass, SpliceJunctionDb};
use crate::stitch::Chain;

/// A scored candidate alignment within one genomic window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowAlignment {
    /// Global genome position where the aligned (non-clipped) region starts.
    pub gstart: u64,
    /// CIGAR-lite operations covering the whole read (S/M/N).
    pub cigar: Vec<CigarOp>,
    /// Alignment score (match +1, mismatch −p, splice penalties).
    pub score: i32,
    /// Read bases aligned to the genome (M bases).
    pub aligned: u32,
    /// Mismatches among the aligned bases.
    pub mismatches: u32,
    /// Introns used: (intron_start, intron_end, class) in global coordinates.
    pub junctions: Vec<(u64, u64, SpliceClass)>,
}

impl WindowAlignment {
    /// An empty alignment slot, for pooling.
    pub(crate) fn empty() -> WindowAlignment {
        WindowAlignment {
            gstart: 0,
            cigar: Vec::new(),
            score: 0,
            aligned: 0,
            mismatches: 0,
            junctions: Vec::new(),
        }
    }

    /// Reset to empty, retaining the CIGAR/junction vector capacities.
    pub(crate) fn reset(&mut self) {
        self.gstart = 0;
        self.cigar.clear();
        self.score = 0;
        self.aligned = 0;
        self.mismatches = 0;
        self.junctions.clear();
    }

    /// Read bases matching the genome exactly.
    pub fn matched(&self) -> u32 {
        self.aligned - self.mismatches
    }

    /// Soft-clipped bases (left + right).
    pub fn clipped(&self) -> u32 {
        self.cigar
            .iter()
            .filter_map(|op| if let CigarOp::S(n) = op { Some(*n) } else { None })
            .sum()
    }
}

/// Extend `chain` over `read_codes`, producing the scored alignment.
///
/// Returns `None` for chains that violate the substitution-only invariants (callers
/// filter these; they can only arise from pathological seed sets). Convenience
/// wrapper that packs the read; the hot path keeps reads packed and calls
/// [`extend_chain_into`] with a pooled slot.
pub fn extend_chain(
    chain: &Chain,
    read_codes: &[u8],
    genome: &PackedGenome,
    sjdb: &SpliceJunctionDb,
    params: &AlignParams,
) -> Option<WindowAlignment> {
    let mut out = WindowAlignment::empty();
    extend_chain_into(chain, &Packed2::from_codes(read_codes), genome, sjdb, params, &mut out)
        .then_some(out)
}

/// Best score-maximal extension scanning *forward*: read bases `rstart..rstart+room`
/// against genome `gstart..gstart+room`. Returns `(best_ext, best_mm)` — the scalar
/// loop's first-argmax prefix and its mismatch count.
///
/// Bit-parallel run processing: within a run of matches the score strictly
/// increases, so the running best only ever lands on a run end; walking the
/// mismatch mask run by run reproduces the per-base loop bit-exactly (for the
/// non-negative mismatch penalties the parameter validation admits).
fn best_ext_fwd(
    read: &Packed2,
    rstart: usize,
    seq: &Packed2,
    gstart: usize,
    room: usize,
    penalty: i32,
) -> (usize, u32) {
    debug_assert!(penalty >= 0, "negative mismatch penalty breaks run-end argmax");
    let mut score = 0i32;
    let mut best_score = 0i32;
    let mut mm = 0u32;
    let mut best_mm = 0u32;
    let mut best_ext = 0usize;
    let mut done = 0usize; // bases fully processed so far
    let mut prev_n = 0usize; // processed count at the last run boundary
    while done < room {
        let block = (room - done).min(BASES_PER_WORD);
        let mut x = mismatch_mask(read.word_from(rstart + done), seq.word_from(gstart + done));
        if block < BASES_PER_WORD {
            x &= (1u64 << (block << 1)) - 1;
        }
        while x != 0 {
            let lane = (x.trailing_zeros() >> 1) as usize;
            let n_mm = done + lane + 1; // processed count after this mismatch base
            let run = n_mm - 1 - prev_n;
            if run > 0 {
                score += run as i32;
                if score > best_score {
                    best_score = score;
                    best_ext = prev_n + run;
                    best_mm = mm;
                }
            }
            score -= penalty;
            mm += 1;
            prev_n = n_mm;
            x &= x - 1;
        }
        done += block;
        let run = done - prev_n;
        if run > 0 {
            score += run as i32;
            if score > best_score {
                best_score = score;
                best_ext = prev_n + run;
                best_mm = mm;
            }
            prev_n = done;
        }
    }
    (best_ext, best_mm)
}

/// [`best_ext_fwd`] scanning *backward*: extension `i` compares read `rpos - i`
/// against genome `gpos - i`, for `i` in `1..=room`.
fn best_ext_back(
    read: &Packed2,
    rpos: usize,
    seq: &Packed2,
    gpos: usize,
    room: usize,
    penalty: i32,
) -> (usize, u32) {
    debug_assert!(penalty >= 0, "negative mismatch penalty breaks run-end argmax");
    let mut score = 0i32;
    let mut best_score = 0i32;
    let mut mm = 0u32;
    let mut best_mm = 0u32;
    let mut best_ext = 0usize;
    let mut done = 0usize;
    while done < room {
        let block = (room - done).min(BASES_PER_WORD);
        // Bases i = done+1 ..= done+block live in the word starting at
        // rpos - done - block; lane L holds i = done + block - L, so the *highest*
        // set mask bit is the *next* mismatch in scan order.
        let a = read.word_from(rpos - done - block);
        let b = seq.word_from(gpos - done - block);
        let mut x = mismatch_mask(a, b);
        if block < BASES_PER_WORD {
            x &= (1u64 << (block << 1)) - 1;
        }
        let mut prev_i = done;
        while x != 0 {
            let p = 63 - x.leading_zeros();
            let lane = (p >> 1) as usize;
            let i_mm = done + block - lane;
            let run = i_mm - 1 - prev_i;
            if run > 0 {
                score += run as i32;
                if score > best_score {
                    best_score = score;
                    best_ext = prev_i + run;
                    best_mm = mm;
                }
            }
            score -= penalty;
            mm += 1;
            prev_i = i_mm;
            x ^= 1u64 << p;
        }
        done += block;
        let run = done - prev_i;
        if run > 0 {
            score += run as i32;
            if score > best_score {
                best_score = score;
                best_ext = prev_i + run;
                best_mm = mm;
            }
        }
    }
    (best_ext, best_mm)
}

/// Extend `chain` into a caller-provided (typically pooled) alignment slot. `out`
/// must be reset; on `false` its contents are unspecified. Allocation-free except
/// for CIGAR/junction growth beyond `out`'s retained capacity. Bit-identical to
/// [`extend_chain_scalar`] by construction (and by the property suites).
pub(crate) fn extend_chain_into(
    chain: &Chain,
    read: &Packed2,
    genome: &PackedGenome,
    sjdb: &SpliceJunctionDb,
    params: &AlignParams,
    out: &mut WindowAlignment,
) -> bool {
    let seeds = &chain.seeds;
    if seeds.is_empty() {
        return false;
    }
    let seq = genome.seq();
    let read_len = read.len();

    let mut aligned = 0u32;
    let mut mismatches = 0u32;
    let mut splice_penalty = 0i32;
    // Length of the M run accumulating toward the next cigar push. Signed because a
    // splice split may shift into the flanking seeds (see `best_split`); it is
    // always positive at push time.
    let mut m_run: i64;

    // --- Left end extension ---------------------------------------------------
    let first = &seeds[0];
    let left_room = (first.gpos as usize).min(first.read_pos as usize);
    // Walk outward while in the same contig; keep the score-maximal prefix.
    let contig_start = genome.contig_of(first.gpos).start;
    let left_room = left_room.min((first.gpos - contig_start) as usize);
    let (best_ext, best_mm) = best_ext_back(
        read,
        first.read_pos as usize,
        seq,
        first.gpos as usize,
        left_room,
        params.mismatch_penalty,
    );
    mismatches += best_mm;
    let gstart = first.gpos - best_ext as u64;
    let left_clip = first.read_pos as usize - best_ext;
    if left_clip > 0 {
        out.cigar.push(CigarOp::S(left_clip as u32));
    }
    m_run = best_ext as i64;
    aligned += best_ext as u32;

    // --- Seeds and inner gaps ---------------------------------------------------
    m_run += first.len as i64;
    aligned += first.len;
    for w in seeds.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let read_gap = (b.read_pos - a.read_end()) as usize;
        let genome_gap = (b.gpos - a.gend()) as usize;
        if genome_gap < read_gap {
            return false; // would need an insertion; not representable
        }
        if genome_gap == read_gap {
            // Mismatch run: one popcount pass over the gap.
            mismatches +=
                count_mismatches(read, a.read_end() as usize, seq, a.gend() as usize, read_gap);
            aligned += read_gap as u32;
            m_run += read_gap as i64;
        } else {
            // Intron: place the splice at the read-gap split minimizing mismatches;
            // ties resolve toward annotated, then canonical junctions (STAR's
            // sjdb-guided splice placement — boundary bases repeated on both sides
            // of an intron otherwise make the junction position ambiguous).
            let intron_len = genome_gap - read_gap;
            if intron_len as u64 > params.max_intron_len {
                return false;
            }
            let (split, mm, class) =
                best_split(read, seq, genome, sjdb, a, b, read_gap, intron_len, m_run - 1);
            mismatches += mm;
            aligned += read_gap as u32;
            m_run += split;
            let intron_start = (a.gend() as i64 + split) as u64;
            let intron_end = intron_start + intron_len as u64;
            splice_penalty += match class {
                SpliceClass::Annotated => params.annotated_splice_penalty,
                SpliceClass::Canonical => params.canonical_splice_penalty,
                SpliceClass::NonCanonical => params.noncanonical_splice_penalty,
            };
            out.junctions.push((intron_start, intron_end, class));
            out.cigar.push(CigarOp::M(m_run as u32));
            out.cigar.push(CigarOp::N(intron_len as u32));
            m_run = read_gap as i64 - split;
        }
        m_run += b.len as i64;
        aligned += b.len;
    }

    // --- Right end extension ------------------------------------------------------
    let last = seeds.last().expect("non-empty");
    let contig_end = genome.contig_of(last.gend().saturating_sub(1).max(last.gpos)).end();
    let right_room = (read_len - last.read_end() as usize)
        .min((contig_end - last.gend()) as usize)
        .min(seq.len() - last.gend() as usize);
    let (best_ext_r, best_mm_r) = best_ext_fwd(
        read,
        last.read_end() as usize,
        seq,
        last.gend() as usize,
        right_room,
        params.mismatch_penalty,
    );
    mismatches += best_mm_r;
    m_run += best_ext_r as i64;
    aligned += best_ext_r as u32;
    if m_run > 0 {
        out.cigar.push(CigarOp::M(m_run as u32));
    }
    let right_clip = read_len - last.read_end() as usize - best_ext_r;
    if right_clip > 0 {
        out.cigar.push(CigarOp::S(right_clip as u32));
    }

    let matched = aligned - mismatches;
    out.gstart = gstart;
    out.aligned = aligned;
    out.mismatches = mismatches;
    out.score = matched as i32 - (mismatches as i32) * params.mismatch_penalty - splice_penalty;
    true
}

/// Bound on how far a splice split may shift into the flanking seeds.
const MAX_SJ_SHIFT: i64 = 8;

/// Choose where to split the `read_gap` bases around an intron between seeds `a` and
/// `b`: `split` bases align after `a`, the rest before `b`. Minimizes mismatches;
/// ties resolve toward the split whose junction is annotated, then canonical —
/// mirroring STAR's sjdb-guided splice placement.
///
/// `split` may be negative or exceed `read_gap`: when the bases flanking an intron
/// repeat across it, the maximal exact seeds overshoot the true junction and the
/// annotated split lies *inside* a seed, so candidates up to [`MAX_SJ_SHIFT`] bases
/// into either seed are also scored (capped by `max_left_shift`, the M run
/// accumulated left of the gap). Unshifted candidates are scored first, so a shifted
/// split only wins by strictly better (mismatches, class). Returns (split,
/// mismatches over the whole search window, junction class); window bases inside the
/// seeds match exactly under their original placement, so the mismatch count remains
/// directly comparable with the gap-only search. Each candidate's window mismatches
/// are two popcount segment counts (before/after the junction).
#[allow(clippy::too_many_arguments)]
fn best_split(
    read: &Packed2,
    seq: &Packed2,
    genome: &PackedGenome,
    sjdb: &SpliceJunctionDb,
    a: &crate::seed::Seed,
    b: &crate::seed::Seed,
    read_gap: usize,
    intron_len: usize,
    max_left_shift: i64,
) -> (i64, u32, SpliceClass) {
    let class_rank = |c: SpliceClass| match c {
        SpliceClass::Annotated => 0u8,
        SpliceClass::Canonical => 1,
        SpliceClass::NonCanonical => 2,
    };
    let shift_a = MAX_SJ_SHIFT.min(max_left_shift).min(intron_len as i64).max(0);
    let shift_b = MAX_SJ_SHIFT.min(b.len as i64 - 1).min(intron_len as i64).max(0);
    // Mismatches are counted over the same read window for every candidate: the gap
    // plus the shiftable margins of both seeds.
    let win_lo = a.read_end() as i64 - shift_a;
    let win_hi = b.read_pos as i64 + shift_b; // exclusive
    let left_off = a.gend() as i64 - a.read_end() as i64;
    let right_off = b.gpos as i64 - b.read_pos as i64;
    let mut best: Option<(i64, u32, SpliceClass)> = None;
    // Candidates are generated in place of the old order vector: unshifted splits
    // first, then the ±k shifted ones — the order matters because a later
    // candidate only wins by being strictly better.
    {
        let mut consider = |split: i64| {
            // The junction always lies inside [win_lo, win_hi] for the candidate
            // range generated below, so both segment lengths are non-negative.
            let junction = a.read_end() as i64 + split;
            let left_len = (junction - win_lo) as usize;
            let right_len = (win_hi - junction) as usize;
            let mm = count_mismatches(
                read,
                win_lo as usize,
                seq,
                (win_lo + left_off) as usize,
                left_len,
            ) + count_mismatches(
                read,
                junction as usize,
                seq,
                (junction + right_off) as usize,
                right_len,
            );
            let intron_start = (a.gend() as i64 + split) as u64;
            let class = sjdb.classify(genome, intron_start, intron_start + intron_len as u64);
            let better = match best {
                None => true,
                Some((_, best_mm, best_class)) => {
                    (mm, class_rank(class)) < (best_mm, class_rank(best_class))
                }
            };
            if better {
                best = Some((split, mm, class));
            }
        };
        for split in 0..=read_gap as i64 {
            consider(split);
        }
        for k in 1..=MAX_SJ_SHIFT {
            if k <= shift_a {
                consider(-k);
            }
            if k <= shift_b {
                consider(read_gap as i64 + k);
            }
        }
    }
    best.expect("split 0 always evaluated")
}

/// The original per-base extension loop, frozen verbatim as the differential
/// oracle for [`extend_chain_into`]'s bit-parallel path. Property tests assert
/// bit-equal [`WindowAlignment`]s (scores, CIGARs, junctions) between the two on
/// random and adversarial inputs. Not used by the production pipeline.
pub fn extend_chain_scalar(
    chain: &Chain,
    read_codes: &[u8],
    genome: &PackedGenome,
    sjdb: &SpliceJunctionDb,
    params: &AlignParams,
) -> Option<WindowAlignment> {
    let seeds = &chain.seeds;
    if seeds.is_empty() {
        return None;
    }
    let mut out = WindowAlignment::empty();
    let read_len = read_codes.len();

    let mut aligned = 0u32;
    let mut mismatches = 0u32;
    let mut splice_penalty = 0i32;
    let mut m_run: i64;

    // --- Left end extension ---------------------------------------------------
    let first = &seeds[0];
    let left_room = (first.gpos as usize).min(first.read_pos as usize);
    let contig_start = genome.contig_of(first.gpos).start;
    let left_room = left_room.min((first.gpos - contig_start) as usize);
    let mut best_ext = 0usize;
    {
        let mut score = 0i32;
        let mut best_score = 0i32;
        let mut mm = 0u32;
        let mut best_mm = 0u32;
        for i in 1..=left_room {
            let r = read_codes[first.read_pos as usize - i];
            let g = genome.code(first.gpos as usize - i);
            if r == g {
                score += 1;
            } else {
                score -= params.mismatch_penalty;
                mm += 1;
            }
            if score > best_score {
                best_score = score;
                best_ext = i;
                best_mm = mm;
            }
        }
        mismatches += best_mm;
    }
    let gstart = first.gpos - best_ext as u64;
    let left_clip = first.read_pos as usize - best_ext;
    if left_clip > 0 {
        out.cigar.push(CigarOp::S(left_clip as u32));
    }
    m_run = best_ext as i64;
    aligned += best_ext as u32;

    // --- Seeds and inner gaps ---------------------------------------------------
    m_run += first.len as i64;
    aligned += first.len;
    for w in seeds.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let read_gap = (b.read_pos - a.read_end()) as usize;
        let genome_gap = (b.gpos - a.gend()) as usize;
        if genome_gap < read_gap {
            return None;
        }
        if genome_gap == read_gap {
            for i in 0..read_gap {
                let r = read_codes[a.read_end() as usize + i];
                let g = genome.code(a.gend() as usize + i);
                if r != g {
                    mismatches += 1;
                }
            }
            aligned += read_gap as u32;
            m_run += read_gap as i64;
        } else {
            let intron_len = genome_gap - read_gap;
            if intron_len as u64 > params.max_intron_len {
                return None;
            }
            let (split, mm, class) = best_split_scalar(
                read_codes, genome, sjdb, a, b, read_gap, intron_len, m_run - 1,
            );
            mismatches += mm;
            aligned += read_gap as u32;
            m_run += split;
            let intron_start = (a.gend() as i64 + split) as u64;
            let intron_end = intron_start + intron_len as u64;
            splice_penalty += match class {
                SpliceClass::Annotated => params.annotated_splice_penalty,
                SpliceClass::Canonical => params.canonical_splice_penalty,
                SpliceClass::NonCanonical => params.noncanonical_splice_penalty,
            };
            out.junctions.push((intron_start, intron_end, class));
            out.cigar.push(CigarOp::M(m_run as u32));
            out.cigar.push(CigarOp::N(intron_len as u32));
            m_run = read_gap as i64 - split;
        }
        m_run += b.len as i64;
        aligned += b.len;
    }

    // --- Right end extension ------------------------------------------------------
    let last = seeds.last().expect("non-empty");
    let contig_end = genome.contig_of(last.gend().saturating_sub(1).max(last.gpos)).end();
    let right_room = (read_len - last.read_end() as usize)
        .min((contig_end - last.gend()) as usize)
        .min(genome.len() - last.gend() as usize);
    let mut best_ext_r = 0usize;
    {
        let mut score = 0i32;
        let mut best_score = 0i32;
        let mut mm = 0u32;
        let mut best_mm = 0u32;
        for i in 0..right_room {
            let r = read_codes[last.read_end() as usize + i];
            let g = genome.code(last.gend() as usize + i);
            if r == g {
                score += 1;
            } else {
                score -= params.mismatch_penalty;
                mm += 1;
            }
            if score > best_score {
                best_score = score;
                best_ext_r = i + 1;
                best_mm = mm;
            }
        }
        mismatches += best_mm;
    }
    m_run += best_ext_r as i64;
    aligned += best_ext_r as u32;
    if m_run > 0 {
        out.cigar.push(CigarOp::M(m_run as u32));
    }
    let right_clip = read_len - last.read_end() as usize - best_ext_r;
    if right_clip > 0 {
        out.cigar.push(CigarOp::S(right_clip as u32));
    }

    let matched = aligned - mismatches;
    out.gstart = gstart;
    out.aligned = aligned;
    out.mismatches = mismatches;
    out.score = matched as i32 - (mismatches as i32) * params.mismatch_penalty - splice_penalty;
    Some(out)
}

/// Per-base splice-split search, the oracle half of [`best_split`].
#[allow(clippy::too_many_arguments)]
fn best_split_scalar(
    read_codes: &[u8],
    genome: &PackedGenome,
    sjdb: &SpliceJunctionDb,
    a: &crate::seed::Seed,
    b: &crate::seed::Seed,
    read_gap: usize,
    intron_len: usize,
    max_left_shift: i64,
) -> (i64, u32, SpliceClass) {
    let class_rank = |c: SpliceClass| match c {
        SpliceClass::Annotated => 0u8,
        SpliceClass::Canonical => 1,
        SpliceClass::NonCanonical => 2,
    };
    let shift_a = MAX_SJ_SHIFT.min(max_left_shift).min(intron_len as i64).max(0);
    let shift_b = MAX_SJ_SHIFT.min(b.len as i64 - 1).min(intron_len as i64).max(0);
    let win_lo = a.read_end() as i64 - shift_a;
    let win_hi = b.read_pos as i64 + shift_b; // exclusive
    let left_off = a.gend() as i64 - a.read_end() as i64;
    let right_off = b.gpos as i64 - b.read_pos as i64;
    let mut best: Option<(i64, u32, SpliceClass)> = None;
    {
        let mut consider = |split: i64| {
            let junction = a.read_end() as i64 + split;
            let mut mm = 0u32;
            for x in win_lo..win_hi {
                let off = if x < junction { left_off } else { right_off };
                if read_codes[x as usize] != genome.code((x + off) as usize) {
                    mm += 1;
                }
            }
            let intron_start = (a.gend() as i64 + split) as u64;
            let class = sjdb.classify(genome, intron_start, intron_start + intron_len as u64);
            let better = match best {
                None => true,
                Some((_, best_mm, best_class)) => {
                    (mm, class_rank(class)) < (best_mm, class_rank(best_class))
                }
            };
            if better {
                best = Some((split, mm, class));
            }
        };
        for split in 0..=read_gap as i64 {
            consider(split);
        }
        for k in 1..=MAX_SJ_SHIFT {
            if k <= shift_a {
                consider(-k);
            }
            if k <= shift_b {
                consider(read_gap as i64 + k);
            }
        }
    }
    best.expect("split 0 always evaluated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexParams, StarIndex};
    use crate::seed::collect_seeds;
    use crate::stitch::best_chains;
    use genomics::annotation::{Annotation, Exon, Gene, Strand};
    use genomics::{Assembly, AssemblyKind, Contig, ContigKind, DnaSeq};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn index_of(text: &str, ann: Annotation) -> StarIndex {
        let asm = Assembly {
            name: "T".into(),
            release: 1,
            kind: AssemblyKind::Toplevel,
            contigs: vec![Contig {
                name: "1".into(),
                kind: ContigKind::Chromosome,
                seq: text.parse::<DnaSeq>().unwrap(),
            }],
        };
        StarIndex::build(&asm, &ann, &IndexParams::default()).unwrap()
    }

    fn align_one(idx: &StarIndex, read: &DnaSeq, params: &AlignParams) -> WindowAlignment {
        let seeds = collect_seeds(idx, read.codes(), params);
        let chains = best_chains(&seeds, read.len(), params);
        chains
            .iter()
            .filter_map(|c| extend_chain(c, read.codes(), idx.genome(), idx.sjdb(), params))
            .max_by_key(|wa| wa.score)
            .expect("alignment exists")
    }

    fn random_text(seed: u64, len: usize) -> String {
        DnaSeq::random(&mut StdRng::seed_from_u64(seed), len).to_string()
    }

    #[test]
    fn perfect_read_scores_full_length() {
        let text = random_text(1, 2000);
        let idx = index_of(&text, Annotation::default());
        let read: DnaSeq = text[700..800].parse().unwrap();
        let wa = align_one(&idx, &read, &AlignParams::default());
        assert_eq!(wa.gstart, 700);
        assert_eq!(wa.score, 100);
        assert_eq!(wa.aligned, 100);
        assert_eq!(wa.mismatches, 0);
        assert_eq!(wa.cigar, vec![CigarOp::M(100)]);
        assert!(wa.junctions.is_empty());
    }

    #[test]
    fn inner_mismatch_is_bridged_and_counted() {
        let text = random_text(2, 2000);
        let idx = index_of(&text, Annotation::default());
        let mut codes: Vec<u8> = text[700..800].parse::<DnaSeq>().unwrap().codes().to_vec();
        codes[40] = (codes[40] + 2) % 4;
        let read = DnaSeq::from_codes(codes);
        let wa = align_one(&idx, &read, &AlignParams::default());
        assert_eq!(wa.gstart, 700);
        assert_eq!(wa.aligned, 100);
        assert_eq!(wa.mismatches, 1);
        assert_eq!(wa.score, 99 - 1);
        assert_eq!(wa.cigar, vec![CigarOp::M(100)]);
    }

    #[test]
    fn end_mismatches_extend_not_clip_when_profitable() {
        let text = random_text(3, 2000);
        let idx = index_of(&text, Annotation::default());
        let mut codes: Vec<u8> = text[700..800].parse::<DnaSeq>().unwrap().codes().to_vec();
        // Mismatch near the right end but with a matching tail after it: extension
        // through the mismatch is profitable.
        codes[95] = (codes[95] + 1) % 4;
        let read = DnaSeq::from_codes(codes);
        let wa = align_one(&idx, &read, &AlignParams::default());
        assert_eq!(wa.aligned, 100, "should extend through the single mismatch");
        assert_eq!(wa.mismatches, 1);
    }

    #[test]
    fn divergent_tail_is_soft_clipped() {
        let text = random_text(4, 2000);
        let idx = index_of(&text, Annotation::default());
        // 80 genomic bases + 20 divergent bases.
        let tail = random_text(999, 20);
        let read: DnaSeq = format!("{}{}", &text[700..780], tail).parse().unwrap();
        let wa = align_one(&idx, &read, &AlignParams::default());
        assert!(wa.clipped() >= 15, "divergent tail should clip, cigar {:?}", wa.cigar);
        assert!(wa.aligned >= 80);
        assert!(matches!(wa.cigar.last(), Some(CigarOp::S(_))));
    }

    #[test]
    fn spliced_read_gets_n_op_and_annotated_class() {
        let text = random_text(5, 4000);
        // Gene with intron [1000, 1400).
        let gene = Gene {
            id: "G".into(),
            contig: "1".into(),
            strand: Strand::Forward,
            exons: vec![Exon { start: 900, end: 1000 }, Exon { start: 1400, end: 1500 }],
        };
        let ann = Annotation { genes: vec![gene.clone()] };
        let idx = index_of(&text, ann);
        // Read spanning the junction: 50 bases of exon1 end + 50 of exon2 start.
        let read: DnaSeq =
            format!("{}{}", &text[950..1000], &text[1400..1450]).parse().unwrap();
        let wa = align_one(&idx, &read, &AlignParams::default());
        assert_eq!(wa.gstart, 950);
        assert_eq!(wa.aligned, 100);
        assert_eq!(wa.mismatches, 0);
        assert_eq!(wa.cigar, vec![CigarOp::M(50), CigarOp::N(400), CigarOp::M(50)]);
        assert_eq!(wa.junctions.len(), 1);
        assert_eq!(wa.junctions[0].0, 1000);
        assert_eq!(wa.junctions[0].1, 1400);
        assert_eq!(wa.junctions[0].2, SpliceClass::Annotated);
        // Annotated junction: no penalty.
        assert_eq!(wa.score, 100);
    }

    #[test]
    fn novel_noncanonical_junction_pays_penalty() {
        let text = random_text(6, 4000);
        let idx = index_of(&text, Annotation::default());
        let read: DnaSeq =
            format!("{}{}", &text[950..1000], &text[1400..1450]).parse().unwrap();
        let params = AlignParams::default();
        let wa = align_one(&idx, &read, &params);
        assert_eq!(wa.junctions.len(), 1);
        // Random genome: junction motif is almost surely non-canonical here.
        let expected_penalty = match wa.junctions[0].2 {
            SpliceClass::NonCanonical => params.noncanonical_splice_penalty,
            SpliceClass::Canonical => params.canonical_splice_penalty,
            SpliceClass::Annotated => 0,
        };
        assert_eq!(wa.score, 100 - expected_penalty);
    }

    #[test]
    fn mismatch_at_splice_gap_is_placed_optimally() {
        let text = random_text(7, 4000);
        let gene = Gene {
            id: "G".into(),
            contig: "1".into(),
            strand: Strand::Forward,
            exons: vec![Exon { start: 900, end: 1000 }, Exon { start: 1400, end: 1500 }],
        };
        let idx = index_of(&text, Annotation { genes: vec![gene] });
        // Junction-spanning read with a mismatch exactly at the last exon1 base.
        let mut codes: Vec<u8> =
            format!("{}{}", &text[950..1000], &text[1400..1450]).parse::<DnaSeq>().unwrap().codes().to_vec();
        codes[49] = (codes[49] + 1) % 4;
        let read = DnaSeq::from_codes(codes);
        let wa = align_one(&idx, &read, &AlignParams::default());
        assert_eq!(wa.aligned, 100);
        assert_eq!(wa.mismatches, 1);
        assert_eq!(wa.junctions.len(), 1);
    }

    #[test]
    fn extension_respects_contig_start_boundary() {
        // Read hangs off the left edge of the contig: must clip, not underflow.
        let text = random_text(8, 1000);
        let idx = index_of(&text, Annotation::default());
        let read: DnaSeq = format!("CCCCC{}", &text[0..95]).parse().unwrap();
        let seeds = collect_seeds(&idx, read.codes(), &AlignParams::default());
        let chains = best_chains(&seeds, read.len(), &AlignParams::default());
        let wa = chains
            .iter()
            .filter_map(|c| {
                extend_chain(c, read.codes(), idx.genome(), idx.sjdb(), &AlignParams::default())
            })
            .max_by_key(|w| w.score)
            .unwrap();
        assert_eq!(wa.gstart, 0);
        assert!(matches!(wa.cigar.first(), Some(CigarOp::S(n)) if *n >= 5));
    }

    #[test]
    fn cigar_spans_whole_read() {
        let text = random_text(9, 2000);
        let idx = index_of(&text, Annotation::default());
        for read_src in [&text[100..200], &text[1900..2000]] {
            let read: DnaSeq = read_src.parse().unwrap();
            let wa = align_one(&idx, &read, &AlignParams::default());
            let total: u32 = wa
                .cigar
                .iter()
                .map(|op| match op {
                    CigarOp::M(n) | CigarOp::S(n) => *n,
                    CigarOp::N(_) => 0,
                })
                .sum();
            assert_eq!(total, 100, "cigar {:?}", wa.cigar);
        }
    }

    #[test]
    fn bit_parallel_matches_scalar_oracle_on_random_chains() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(2024);
        let text = random_text(77, 6000);
        let gene = Gene {
            id: "G".into(),
            contig: "1".into(),
            strand: Strand::Forward,
            exons: vec![Exon { start: 1000, end: 1200 }, Exon { start: 1700, end: 1900 }],
        };
        let idx = index_of(&text, Annotation { genes: vec![gene] });
        let params = AlignParams::default();
        for trial in 0..400 {
            // Reads of several shapes: genomic, mutated, spliced, edge-hanging.
            let codes: Vec<u8> = match trial % 4 {
                0 => {
                    let s = rng.gen_range(0..text.len() - 120);
                    text[s..s + 100].parse::<DnaSeq>().unwrap().codes().to_vec()
                }
                1 => {
                    let s = rng.gen_range(0..text.len() - 120);
                    let mut c = text[s..s + 100].parse::<DnaSeq>().unwrap().codes().to_vec();
                    for _ in 0..rng.gen_range(1..8) {
                        let i = rng.gen_range(0..c.len());
                        c[i] = (c[i] + rng.gen_range(1..4u8)) % 4;
                    }
                    c
                }
                2 => {
                    let cut = rng.gen_range(20..80usize);
                    let mut c =
                        text[1200 - cut..1200].parse::<DnaSeq>().unwrap().codes().to_vec();
                    c.extend(
                        text[1700..1700 + (100 - cut)].parse::<DnaSeq>().unwrap().codes(),
                    );
                    c
                }
                _ => {
                    let s = rng.gen_range(0..30usize);
                    text[s..s + 100].parse::<DnaSeq>().unwrap().codes().to_vec()
                }
            };
            let seeds = collect_seeds(&idx, &codes, &params);
            let chains = best_chains(&seeds, codes.len(), &params);
            let packed = Packed2::from_codes(&codes);
            for chain in &chains {
                let scalar = extend_chain_scalar(chain, &codes, idx.genome(), idx.sjdb(), &params);
                let mut fast = WindowAlignment::empty();
                let ok = extend_chain_into(
                    chain, &packed, idx.genome(), idx.sjdb(), &params, &mut fast,
                );
                assert_eq!(ok, scalar.is_some(), "trial {trial}");
                if let Some(s) = scalar {
                    assert_eq!(fast, s, "trial {trial}");
                }
            }
        }
    }
}
