//! Splice-junction database (STAR's `sjdb` built from `--sjdbGTFfile`).
//!
//! Junctions come from the annotation: for every pair of adjacent exons the intron
//! `[donor, acceptor)` in contig-local coordinates is recorded. During stitching, a
//! gap that matches an annotated junction is spliced with zero penalty; novel gaps pay
//! the canonical/non-canonical penalty depending on their motif.

use std::collections::HashSet;

use crate::genome::PackedGenome;
use genomics::{Annotation, Base};

/// A splice junction: intron half-open range in *global* genome coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Junction {
    /// First intronic base (global coordinate).
    pub intron_start: u64,
    /// One past the last intronic base (global coordinate).
    pub intron_end: u64,
}

/// Classification of a candidate splice by motif / annotation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SpliceClass {
    /// Present in the annotated junction database.
    Annotated,
    /// GT..AG (or CT..AC on the opposite strand) motif.
    Canonical,
    /// Anything else (the conservative default for an unclassified candidate).
    #[default]
    NonCanonical,
}

/// The junction database.
#[derive(Clone, Debug, Default)]
pub struct SpliceJunctionDb {
    junctions: HashSet<Junction>,
}

impl SpliceJunctionDb {
    /// An empty database (alignment without annotation).
    pub fn empty() -> SpliceJunctionDb {
        SpliceJunctionDb::default()
    }

    /// Build from an annotation: one junction per adjacent exon pair of every gene
    /// whose contig is present in `genome`. Genes on absent contigs are skipped (the
    /// annotation may describe the toplevel assembly while the genome is primary).
    pub fn from_annotation(annotation: &Annotation, genome: &PackedGenome) -> SpliceJunctionDb {
        let mut junctions = HashSet::new();
        for gene in &annotation.genes {
            let Some(span) = genome.span_by_name(&gene.contig) else { continue };
            for pair in gene.exons.windows(2) {
                let intron_start = span.start + pair[0].end as u64;
                let intron_end = span.start + pair[1].start as u64;
                if intron_end > intron_start && intron_end <= span.end() {
                    junctions.insert(Junction { intron_start, intron_end });
                }
            }
        }
        SpliceJunctionDb { junctions }
    }

    /// Rebuild from serialized parts.
    pub(crate) fn from_raw(pairs: Vec<(u64, u64)>) -> SpliceJunctionDb {
        SpliceJunctionDb {
            junctions: pairs
                .into_iter()
                .map(|(s, e)| Junction { intron_start: s, intron_end: e })
                .collect(),
        }
    }

    /// All junctions in sorted order (for serialization / inspection).
    pub fn sorted(&self) -> Vec<Junction> {
        let mut v: Vec<Junction> = self.junctions.iter().copied().collect();
        v.sort_by_key(|j| (j.intron_start, j.intron_end));
        v
    }

    /// Number of junctions.
    pub fn len(&self) -> usize {
        self.junctions.len()
    }

    /// True when no junctions are stored.
    pub fn is_empty(&self) -> bool {
        self.junctions.is_empty()
    }

    /// Insert a junction (used by two-pass mode to admit well-supported novel
    /// junctions discovered in the first pass).
    pub fn insert(&mut self, intron_start: u64, intron_end: u64) {
        assert!(intron_end > intron_start, "degenerate junction");
        self.junctions.insert(Junction { intron_start, intron_end });
    }

    /// Is this exact intron annotated?
    #[inline]
    pub fn contains(&self, intron_start: u64, intron_end: u64) -> bool {
        self.junctions.contains(&Junction { intron_start, intron_end })
    }

    /// Classify a candidate intron: annotated beats motif; motif is checked on both
    /// strands (GT..AG forward, CT..AC reverse-strand genes seen on the forward
    /// genome).
    pub fn classify(&self, genome: &PackedGenome, intron_start: u64, intron_end: u64) -> SpliceClass {
        if self.contains(intron_start, intron_end) {
            return SpliceClass::Annotated;
        }
        if intron_end - intron_start >= 4 {
            let s = intron_start as usize;
            let e = intron_end as usize;
            let d0 = genome.code(s);
            let d1 = genome.code(s + 1);
            let a0 = genome.code(e - 2);
            let a1 = genome.code(e - 1);
            let (g, t, a, c) = (Base::G.code(), Base::T.code(), Base::A.code(), Base::C.code());
            let gt_ag = d0 == g && d1 == t && a0 == a && a1 == g;
            let ct_ac = d0 == c && d1 == t && a0 == a && a1 == c;
            if gt_ag || ct_ac {
                return SpliceClass::Canonical;
            }
        }
        SpliceClass::NonCanonical
    }

    /// Bytes this database occupies (16 per junction), for index-size accounting.
    pub fn byte_size(&self) -> usize {
        self.junctions.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomics::annotation::{Exon, Gene, Strand};
    use genomics::{Assembly, AssemblyKind, Contig, ContigKind, DnaSeq};

    fn genome_with(seq: &str) -> PackedGenome {
        let asm = Assembly {
            name: "T".into(),
            release: 1,
            kind: AssemblyKind::Toplevel,
            contigs: vec![Contig {
                name: "1".into(),
                kind: ContigKind::Chromosome,
                seq: seq.parse::<DnaSeq>().unwrap(),
            }],
        };
        PackedGenome::from_assembly(&asm).unwrap()
    }

    fn gene(exons: Vec<Exon>) -> Gene {
        Gene { id: "G1".into(), contig: "1".into(), strand: Strand::Forward, exons }
    }

    #[test]
    fn builds_junctions_from_adjacent_exons() {
        let g = genome_with(&"ACGT".repeat(30));
        let ann = Annotation {
            genes: vec![gene(vec![
                Exon { start: 0, end: 10 },
                Exon { start: 30, end: 40 },
                Exon { start: 60, end: 70 },
            ])],
        };
        let db = SpliceJunctionDb::from_annotation(&ann, &g);
        assert_eq!(db.len(), 2);
        assert!(db.contains(10, 30));
        assert!(db.contains(40, 60));
        assert!(!db.contains(10, 31));
    }

    #[test]
    fn genes_on_missing_contigs_are_skipped() {
        let g = genome_with(&"ACGT".repeat(10));
        let mut gene2 = gene(vec![Exon { start: 0, end: 5 }, Exon { start: 10, end: 15 }]);
        gene2.contig = "77".into();
        let ann = Annotation { genes: vec![gene2] };
        let db = SpliceJunctionDb::from_annotation(&ann, &g);
        assert!(db.is_empty());
    }

    #[test]
    fn classify_annotated_beats_motif() {
        let g = genome_with(&"A".repeat(100));
        let ann = Annotation {
            genes: vec![gene(vec![Exon { start: 0, end: 10 }, Exon { start: 50, end: 60 }])],
        };
        let db = SpliceJunctionDb::from_annotation(&ann, &g);
        assert_eq!(db.classify(&g, 10, 50), SpliceClass::Annotated);
        // Same genome, unannotated intron over A-runs: non-canonical.
        assert_eq!(db.classify(&g, 20, 40), SpliceClass::NonCanonical);
    }

    #[test]
    fn classify_detects_gt_ag_and_ct_ac() {
        // Intron [4, 12): donor GT at 4..6, acceptor AG at 10..12.
        let g = genome_with("AAAAGTAAAAAGAAAA");
        let db = SpliceJunctionDb::empty();
        assert_eq!(db.classify(&g, 4, 12), SpliceClass::Canonical);
        // CT..AC variant.
        let g2 = genome_with("AAAACTAAAAACAAAA");
        assert_eq!(db.classify(&g2, 4, 12), SpliceClass::Canonical);
        // Too-short intron is non-canonical by definition.
        assert_eq!(db.classify(&g, 4, 6), SpliceClass::NonCanonical);
    }

    #[test]
    fn sorted_and_byte_size() {
        let g = genome_with(&"ACGT".repeat(30));
        let ann = Annotation {
            genes: vec![gene(vec![
                Exon { start: 0, end: 10 },
                Exon { start: 30, end: 40 },
                Exon { start: 60, end: 70 },
            ])],
        };
        let db = SpliceJunctionDb::from_annotation(&ann, &g);
        let sorted = db.sorted();
        assert_eq!(sorted.len(), 2);
        assert!(sorted[0].intron_start < sorted[1].intron_start);
        assert_eq!(db.byte_size(), 32);
        let back = SpliceJunctionDb::from_raw(sorted.iter().map(|j| (j.intron_start, j.intron_end)).collect());
        assert_eq!(back.sorted(), sorted);
    }
}
