//! The genome index: packed genome + suffix array + prefix table + sjdb.
//!
//! This is the artifact whose size the paper's §III-A compares across Ensembl
//! releases (85 GiB on release 108 vs 29.5 GiB on release 111): [`IndexStats`] gives
//! byte-accurate component sizes, and [`StarIndex::serialize`]/[`StarIndex::deserialize`]
//! provide the on-disk form whose download-and-load cost the cloud model charges at
//! instance initialization.

use crate::genome::{ContigSpan, Packed2, PackedGenome};
use crate::hashseed::HashSeedIndex;
use crate::prefix::PrefixTable;
use crate::sa::SuffixArray;
use crate::sjdb::SpliceJunctionDb;
use crate::StarError;
use genomics::{Annotation, Assembly};
use serde::{Deserialize, Serialize};

/// Parameters for index construction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IndexParams {
    /// Prefix-table depth; `None` selects automatically from the genome length
    /// (STAR's `--genomeSAindexNbases` default formula).
    pub sa_index_nbases: Option<usize>,
    /// Upper bound for the automatic prefix depth.
    pub sa_index_nbases_cap: usize,
}

impl Default for IndexParams {
    fn default() -> Self {
        IndexParams { sa_index_nbases: None, sa_index_nbases_cap: 11 }
    }
}

/// Byte-accurate sizes of the index components.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexStats {
    /// 2-bit packed genome bytes (STAR `Genome` file).
    pub genome_bytes: usize,
    /// Suffix-array bytes (STAR `SA` file) — the dominant component.
    pub sa_bytes: usize,
    /// Prefix lookup table bytes (STAR `SAindex` file).
    pub prefix_bytes: usize,
    /// Splice-junction database bytes (STAR `sjdb*` files).
    pub sjdb_bytes: usize,
    /// Genome length in bases.
    pub genome_len: usize,
    /// Number of contigs.
    pub n_contigs: usize,
}

impl IndexStats {
    /// Total index size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.genome_bytes + self.sa_bytes + self.prefix_bytes + self.sjdb_bytes
    }
}

/// The complete alignment index for one assembly.
#[derive(Clone, Debug)]
pub struct StarIndex {
    genome: PackedGenome,
    sa: SuffixArray,
    prefix: PrefixTable,
    sjdb: SpliceJunctionDb,
    /// Deeper runtime-only prefix tables for the seed hot path, built lazily on
    /// first use and cached for the index's lifetime. Not part of the on-disk
    /// format ([`StarIndex::serialize`] skips it) and excluded from [`IndexStats`].
    deep: std::sync::OnceLock<Vec<PrefixTable>>,
    /// SNAP-style hash seeding table ([`crate::AlignParams::use_hash_seed`]),
    /// built lazily for one seed length and cached. Runtime-only, like `deep`.
    hash: std::sync::OnceLock<HashSeedIndex>,
    /// Assembly name recorded for provenance (e.g. `"GRCh38-sim"`).
    pub assembly_name: String,
    /// Ensembl release the source assembly came from.
    pub release: u32,
}

impl StarIndex {
    /// Build an index from an assembly and annotation ("genomeGenerate" mode).
    pub fn build(
        assembly: &Assembly,
        annotation: &Annotation,
        params: &IndexParams,
    ) -> Result<StarIndex, StarError> {
        let genome = PackedGenome::from_assembly(assembly)?;
        // Construction works on a transient byte-per-base copy (SA-IS wants byte
        // access); only the 2-bit packing stays resident.
        let codes = genome.unpack();
        let sa = SuffixArray::build(&codes);
        let k = params
            .sa_index_nbases
            .unwrap_or_else(|| PrefixTable::auto_k(genome.len(), params.sa_index_nbases_cap));
        if k > 13 {
            return Err(StarError::InvalidParams(format!("sa_index_nbases {k} > 13")));
        }
        let prefix = PrefixTable::build(&sa, &codes, k);
        let sjdb = SpliceJunctionDb::from_annotation(annotation, &genome);
        Ok(StarIndex {
            genome,
            sa,
            prefix,
            sjdb,
            deep: std::sync::OnceLock::new(),
            hash: std::sync::OnceLock::new(),
            assembly_name: assembly.name.clone(),
            release: assembly.release,
        })
    }

    /// The packed genome.
    pub fn genome(&self) -> &PackedGenome {
        &self.genome
    }

    /// The suffix array.
    pub fn sa(&self) -> &SuffixArray {
        &self.sa
    }

    /// The prefix lookup table.
    pub fn prefix(&self) -> &PrefixTable {
        &self.prefix
    }

    /// The splice-junction database.
    pub fn sjdb(&self) -> &SpliceJunctionDb {
        &self.sjdb
    }

    /// Deeper runtime-only prefix tables for the seed hot path (deepest first;
    /// empty when the genome is too small to warrant one). Built on first call and
    /// cached, so sharing one index across runs pays the construction cost once.
    /// Search results are identical with or without them ([`PrefixTable::deepen`]).
    pub fn deep_prefix(&self) -> &[PrefixTable] {
        self.deep
            .get_or_init(|| PrefixTable::deepen(&self.sa, &self.genome.unpack(), self.prefix.k()))
    }

    /// The SNAP-style hash seeding table for seed length `s`, built on first call
    /// and cached for the index's lifetime. One table per index: every aligner
    /// sharing the index must request the same `s` (enforced by assertion) — in
    /// practice the length comes from one [`crate::AlignParams`] per run. Like the
    /// deep prefix tables it is runtime-only and changes no search result
    /// ([`HashSeedIndex`] module docs give the argument).
    pub fn hash_seed(&self, s: usize) -> &HashSeedIndex {
        let h = self.hash.get_or_init(|| HashSeedIndex::build(&self.sa, self.genome.seq(), s));
        assert_eq!(h.seed_len(), s, "index hash-seed table already built for another length");
        h
    }

    /// Clone this index with additional sjdb junctions (global coordinates) — the
    /// second-pass index of `--twopassMode Basic`.
    pub fn with_extra_junctions(&self, junctions: impl IntoIterator<Item = (u64, u64)>) -> StarIndex {
        let mut out = self.clone();
        for (s, e) in junctions {
            out.sjdb.insert(s, e);
        }
        out
    }

    /// Component sizes (the paper's index-size comparison).
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            genome_bytes: self.genome.packed_byte_size(),
            sa_bytes: self.sa.byte_size(),
            prefix_bytes: self.prefix.byte_size(),
            sjdb_bytes: self.sjdb.byte_size(),
            genome_len: self.genome.len(),
            n_contigs: self.genome.spans().len(),
        }
    }

    /// Serialize to a self-describing little-endian binary blob.
    ///
    /// Layout: magic, version, header lengths, then the 2-bit packed genome words
    /// (version 2 stores the packed form directly — 4× smaller on disk than the
    /// old byte-per-base blob, and deserialization is a straight word copy), span
    /// table, SA, prefix table, sjdb.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.genome.len() * 5 + 1024);
        out.extend_from_slice(MAGIC);
        push_u32(&mut out, VERSION);
        push_str(&mut out, &self.assembly_name);
        push_u32(&mut out, self.release);
        // Genome: 2-bit packed words.
        push_u64(&mut out, self.genome.len() as u64);
        for &w in self.genome.seq().words() {
            push_u64(&mut out, w);
        }
        // Span table.
        push_u32(&mut out, self.genome.spans().len() as u32);
        for s in self.genome.spans() {
            push_str(&mut out, &s.name);
            push_u32(&mut out, contig_kind_code(s.kind));
            push_u64(&mut out, s.start);
            push_u64(&mut out, s.len);
        }
        // Suffix array.
        push_u64(&mut out, self.sa.len() as u64);
        for &p in self.sa.positions() {
            push_u32(&mut out, p);
        }
        // Prefix table.
        let (starts, ends, k) = self.prefix.raw();
        push_u32(&mut out, k as u32);
        for &v in starts {
            push_u32(&mut out, v);
        }
        for &v in ends {
            push_u32(&mut out, v);
        }
        // Sjdb.
        let js = self.sjdb.sorted();
        push_u64(&mut out, js.len() as u64);
        for j in js {
            push_u64(&mut out, j.intron_start);
            push_u64(&mut out, j.intron_end);
        }
        out
    }

    /// Deserialize a blob produced by [`StarIndex::serialize`], with structural
    /// validation of every component.
    pub fn deserialize(bytes: &[u8]) -> Result<StarIndex, StarError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(StarError::CorruptIndex("bad magic".into()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(StarError::CorruptIndex(format!("unsupported version {version}")));
        }
        let assembly_name = r.string()?;
        let release = r.u32()?;
        let glen = r.u64()? as usize;
        let n_words = glen.div_ceil(crate::genome::BASES_PER_WORD);
        // Guard the allocation: the words must actually fit in the blob.
        if n_words.checked_mul(8).is_none_or(|b| b > r.remaining()) {
            return Err(StarError::CorruptIndex(format!("genome length {glen} implausible")));
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(r.u64()?);
        }
        let seq = Packed2::from_words(words, glen)?;
        let n_spans = r.u32()? as usize;
        let mut spans = Vec::with_capacity(n_spans);
        for _ in 0..n_spans {
            let name = r.string()?;
            let kind = contig_kind_from_code(r.u32()?)?;
            let start = r.u64()?;
            let len = r.u64()?;
            spans.push(ContigSpan { name, kind, start, len });
        }
        let genome = PackedGenome::from_parts(seq, spans)?;
        let sa_len = r.u64()? as usize;
        let mut sa_raw = Vec::with_capacity(sa_len);
        for _ in 0..sa_len {
            sa_raw.push(r.u32()?);
        }
        let sa = SuffixArray::from_raw(sa_raw, genome.len())?;
        let k = r.u32()? as usize;
        if k == 0 || k > 13 {
            return Err(StarError::CorruptIndex(format!("prefix depth {k}")));
        }
        let buckets = 1usize << (2 * k);
        let mut starts = Vec::with_capacity(buckets);
        for _ in 0..buckets {
            starts.push(r.u32()?);
        }
        let mut ends = Vec::with_capacity(buckets);
        for _ in 0..buckets {
            ends.push(r.u32()?);
        }
        let prefix = PrefixTable::from_raw(starts, ends, k, sa.len())?;
        let n_j = r.u64()? as usize;
        let mut pairs = Vec::with_capacity(n_j);
        for _ in 0..n_j {
            let s = r.u64()?;
            let e = r.u64()?;
            if e <= s || e > genome.len() as u64 {
                return Err(StarError::CorruptIndex(format!("junction {s}..{e} out of range")));
            }
            pairs.push((s, e));
        }
        if r.pos != bytes.len() {
            return Err(StarError::CorruptIndex(format!("{} trailing bytes", bytes.len() - r.pos)));
        }
        Ok(StarIndex {
            genome,
            sa,
            prefix,
            sjdb: SpliceJunctionDb::from_raw(pairs),
            deep: std::sync::OnceLock::new(),
            hash: std::sync::OnceLock::new(),
            assembly_name,
            release,
        })
    }
}

const MAGIC: &[u8] = b"STARIDX\0";
/// Version 2: the genome section holds 2-bit packed words, not byte-per-base
/// codes, and the prefix table's bucket order follows LSB-first k-mer values.
const VERSION: u32 = 2;

fn contig_kind_code(kind: genomics::ContigKind) -> u32 {
    match kind {
        genomics::ContigKind::Chromosome => 0,
        genomics::ContigKind::UnlocalizedScaffold => 1,
        genomics::ContigKind::UnplacedScaffold => 2,
    }
}

fn contig_kind_from_code(code: u32) -> Result<genomics::ContigKind, StarError> {
    match code {
        0 => Ok(genomics::ContigKind::Chromosome),
        1 => Ok(genomics::ContigKind::UnlocalizedScaffold),
        2 => Ok(genomics::ContigKind::UnplacedScaffold),
        _ => Err(StarError::CorruptIndex(format!("contig kind code {code}"))),
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StarError> {
        if self.pos + n > self.bytes.len() {
            return Err(StarError::CorruptIndex("unexpected end of blob".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, StarError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, StarError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> Result<String, StarError> {
        let n = self.u32()? as usize;
        if n > 1 << 20 {
            return Err(StarError::CorruptIndex("string length implausible".into()));
        }
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| StarError::CorruptIndex("non-utf8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomics::annotation::AnnotationParams;
    use genomics::{EnsemblGenerator, EnsemblParams, Release};

    fn small_index() -> StarIndex {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = g.generate(Release::R111);
        let ann = Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap();
        StarIndex::build(&asm, &ann, &IndexParams::default()).unwrap()
    }

    #[test]
    fn build_produces_consistent_components() {
        let idx = small_index();
        assert_eq!(idx.sa().len(), idx.genome().len());
        assert!(idx.prefix().k() >= 4);
        assert!(!idx.sjdb().is_empty(), "annotation has multi-exon genes");
        assert_eq!(idx.release, 111);
    }

    #[test]
    fn stats_reflect_component_sizes() {
        let idx = small_index();
        let st = idx.stats();
        assert_eq!(st.genome_len, idx.genome().len());
        assert_eq!(st.sa_bytes, idx.genome().len() * 4);
        assert!(st.total_bytes() > st.sa_bytes);
        assert_eq!(
            st.total_bytes(),
            st.genome_bytes + st.sa_bytes + st.prefix_bytes + st.sjdb_bytes
        );
    }

    #[test]
    fn index_size_scales_with_release() {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let ann_params = AnnotationParams::default();
        let mut totals = Vec::new();
        for r in [Release::R108, Release::R111] {
            let asm = g.generate(r);
            let ann = Annotation::simulate(&asm, &g, &ann_params).unwrap();
            let idx = StarIndex::build(&asm, &ann, &IndexParams::default()).unwrap();
            totals.push(idx.stats().total_bytes());
        }
        let ratio = totals[0] as f64 / totals[1] as f64;
        assert!(ratio > 2.0, "r108 index must be much larger, ratio {ratio}");
    }

    #[test]
    fn serialize_round_trips() {
        let idx = small_index();
        let blob = idx.serialize();
        let back = StarIndex::deserialize(&blob).unwrap();
        assert_eq!(back.genome().seq(), idx.genome().seq());
        assert_eq!(back.genome().spans(), idx.genome().spans());
        assert_eq!(back.sa().positions(), idx.sa().positions());
        assert_eq!(back.prefix(), idx.prefix());
        assert_eq!(back.sjdb().sorted(), idx.sjdb().sorted());
        assert_eq!(back.assembly_name, idx.assembly_name);
        assert_eq!(back.release, idx.release);
    }

    #[test]
    fn deserialize_rejects_corruption() {
        let idx = small_index();
        let blob = idx.serialize();
        // Bad magic.
        let mut b = blob.clone();
        b[0] ^= 0xFF;
        assert!(StarIndex::deserialize(&b).is_err());
        // Truncated.
        assert!(StarIndex::deserialize(&blob[..blob.len() / 2]).is_err());
        // Trailing garbage.
        let mut b = blob.clone();
        b.push(0);
        assert!(StarIndex::deserialize(&b).is_err());
        // Implausible genome length (the u64 right after
        // magic+version+name+release): word reads run off the end of the blob.
        let hdr = MAGIC.len() + 4 + 4 + idx.assembly_name.len() + 4;
        let mut b = blob.clone();
        b[hdr..hdr + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(StarIndex::deserialize(&b).is_err());
        // Non-zero padding bits in the last genome word (packed-form invariant).
        let glen = idx.genome().len();
        let pad = glen % crate::genome::BASES_PER_WORD;
        if pad != 0 {
            let n_words = glen.div_ceil(crate::genome::BASES_PER_WORD);
            let mut b = blob;
            b[hdr + 8 + n_words * 8 - 1] ^= 0x80; // bit 63 of the last word
            assert!(StarIndex::deserialize(&b).is_err());
        }
    }
}
