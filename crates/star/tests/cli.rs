//! End-to-end test of the `star-sim` CLI binary: simulate → genomeGenerate →
//! alignReads, then validate every output file.

use std::path::Path;
use std::process::Command;

fn star_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_star-sim"))
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn full_cli_workflow_produces_all_star_outputs() {
    let dir = std::env::temp_dir().join(format!("star-sim-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let demo = dir.join("demo");
    let p = |name: &str| demo.join(name).to_string_lossy().into_owned();

    // 1. simulate
    let out = run_ok(star_sim().args(["simulate", "--outDir", demo.to_str().unwrap(), "--reads", "4000"]));
    assert!(out.contains("simulated release-111 assembly"));
    for f in ["genome.fa", "annotation.gtf", "reads.fastq"] {
        assert!(demo.join(f).exists(), "{f} missing");
    }

    // 2. genomeGenerate
    let index_dir = p("index");
    let out = run_ok(star_sim().args([
        "genomeGenerate",
        "--genomeFastaFiles",
        &p("genome.fa"),
        "--sjdbGTFfile",
        &p("annotation.gtf"),
        "--genomeDir",
        &index_dir,
    ]));
    assert!(out.contains("genomeGenerate:"));
    assert!(Path::new(&index_dir).join("index.star").exists());

    // 3. alignReads with quant + junctions
    let prefix = p("out_");
    let out = run_ok(star_sim().args([
        "alignReads",
        "--genomeDir",
        &index_dir,
        "--readFilesIn",
        &p("reads.fastq"),
        "--sjdbGTFfile",
        &p("annotation.gtf"),
        "--outFileNamePrefix",
        &prefix,
        "--runThreadN",
        "2",
        "--quantMode",
        "GeneCounts",
    ]));
    assert!(out.contains("Uniquely mapped reads %"));

    // Validate outputs.
    let sam = std::fs::read_to_string(format!("{prefix}Aligned.out.sam")).unwrap();
    assert!(sam.starts_with("@HD\tVN:1.6"));
    let records = sam.lines().filter(|l| !l.starts_with('@')).count();
    assert_eq!(records, 4000, "one SAM record per input read");
    // Mapped majority with NH tags.
    let mapped = sam.lines().filter(|l| !l.starts_with('@') && l.contains("NH:i:")).count();
    assert!(mapped as f64 / 4000.0 > 0.85, "mapped {mapped}/4000");

    let final_log = std::fs::read_to_string(format!("{prefix}Log.final.out")).unwrap();
    assert!(final_log.contains("Number of input reads |\t4000"));

    let progress = std::fs::read_to_string(format!("{prefix}Log.progress.out")).unwrap();
    assert!(progress.lines().count() >= 2, "progress file has batch lines");
    assert!(progress.contains("Mapped:"));

    let counts = std::fs::read_to_string(format!("{prefix}ReadsPerGene.out.tab")).unwrap();
    assert!(counts.starts_with("N_unmapped\t"));
    assert!(counts.lines().count() > 4, "gene rows follow the header rows");

    let sj = std::fs::read_to_string(format!("{prefix}SJ.out.tab")).unwrap();
    assert!(!sj.is_empty(), "bulk reads cross junctions");
    assert!(sj.lines().all(|l| l.split('\t').count() == 9));

    // 4. paired-end input via comma-separated mate files (reuse the single file as
    // both mates reverse-complemented is wrong; instead just split the reads file in
    // two halves as fake mates to exercise the plumbing — pairing quality is covered
    // by unit tests, here we check the CLI path and SAM pairing format).
    {
        let fastq = std::fs::read_to_string(p("reads.fastq")).unwrap();
        let lines: Vec<&str> = fastq.lines().collect();
        let half = (lines.len() / 8) * 4; // first half of the records
        std::fs::write(p("r1.fastq"), lines[..half].join("\n") + "\n").unwrap();
        std::fs::write(p("r2.fastq"), lines[..half].join("\n") + "\n").unwrap();
        let out = run_ok(star_sim().args([
            "alignReads",
            "--genomeDir",
            &index_dir,
            "--readFilesIn",
            &format!("{},{}", p("r1.fastq"), p("r2.fastq")),
            "--outFileNamePrefix",
            &p("paired_"),
            "--runThreadN",
            "2",
        ]));
        assert!(out.contains("Number of input reads"));
        let sam = std::fs::read_to_string(p("paired_Aligned.out.sam")).unwrap();
        let body: Vec<&str> = sam.lines().filter(|l| !l.starts_with('@')).collect();
        assert_eq!(body.len(), half / 4 * 2, "two SAM records per pair");
        // Every record carries the paired flag.
        for line in &body {
            let flag: u16 = line.split('\t').nth(1).unwrap().parse().unwrap();
            assert!(flag & 0x1 != 0, "paired flag missing: {line}");
        }
    }

    // 5. two-pass mode also works.
    let out = run_ok(star_sim().args([
        "alignReads",
        "--genomeDir",
        &index_dir,
        "--readFilesIn",
        &p("reads.fastq"),
        "--outFileNamePrefix",
        &p("twopass_"),
        "--runThreadN",
        "2",
        "--twopassMode",
        "Basic",
    ]));
    assert!(out.contains("twopassMode Basic:"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_rejects_bad_usage() {
    // No mode.
    let out = star_sim().output().unwrap();
    assert!(!out.status.success());
    // Unknown mode.
    let out = star_sim().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    // Missing required flag.
    let out = star_sim().args(["genomeGenerate", "--genomeDir", "/tmp/x"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("genomeFastaFiles"));
    // Flag without value.
    let out = star_sim().args(["simulate", "--outDir"]).output().unwrap();
    assert!(!out.status.success());
}
