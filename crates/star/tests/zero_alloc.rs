//! Steady-state allocation test for the per-read alignment hot path.
//!
//! A counting global allocator wraps the system allocator; after a warm-up pass
//! grows the scratch buffers to their steady-state capacity, re-aligning the same
//! reads must perform zero heap allocations. This is the property the pooled
//! [`star_aligner::AlignScratch`] exists to provide — any regression that
//! reintroduces a per-read `Vec`/`String` allocation fails this test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use genomics::annotation::AnnotationParams;
use genomics::{Annotation, EnsemblGenerator, EnsemblParams, LibraryType, ReadSimulator, Release, SimulatorParams};
use star_aligner::align::Aligner;
use star_aligner::index::{IndexParams, StarIndex};
use star_aligner::{AlignParams, AlignScratch};

struct CountingAlloc;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_alignment_allocates_nothing() {
    // Build everything (index, reads, scratch) before tracking starts.
    let generator = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
    let assembly = generator.generate(Release::R111);
    let annotation = Annotation::simulate(&assembly, &generator, &AnnotationParams::default()).unwrap();
    let index = StarIndex::build(&assembly, &annotation, &IndexParams::default()).unwrap();
    let aligner = Aligner::new(&index, AlignParams::default());
    let mut sim = ReadSimulator::new(
        &assembly,
        &annotation,
        SimulatorParams::for_library(LibraryType::BulkPolyA),
        33,
    )
    .unwrap();
    let reads: Vec<_> = sim.simulate(300, "ZA").into_iter().map(|r| r.fastq.seq).collect();

    let mut scratch = AlignScratch::new();
    // Warm-up: two passes so every pooled buffer reaches its high-water capacity.
    let mut warm_mapped = 0usize;
    for _ in 0..2 {
        warm_mapped = reads
            .iter()
            .filter(|seq| aligner.align_seq_with(seq, &mut scratch, false).is_mapped())
            .count();
    }
    assert!(warm_mapped > 200, "premise: most bulk reads map ({warm_mapped}/300)");

    // Steady state: the same workload must not touch the allocator.
    ALLOC_CALLS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    let mapped = reads
        .iter()
        .filter(|seq| aligner.align_seq_with(seq, &mut scratch, false).is_mapped())
        .count();
    TRACKING.store(false, Ordering::SeqCst);
    let allocs = ALLOC_CALLS.load(Ordering::SeqCst);

    assert_eq!(mapped, warm_mapped, "tracked pass must reproduce the warm-up results");
    assert_eq!(allocs, 0, "steady-state alignment of 300 reads performed {allocs} heap allocations");
}
