//! Transcriptome k-mer index with equivalence classes (kallisto's T-DBG, flattened).
//!
//! Every k-mer occurring in any annotated transcript maps to the *set* of transcripts
//! containing it; identical sets are deduplicated into numbered equivalence classes.
//! K-mers are stored canonically (the lexicographic minimum of a k-mer and its
//! reverse complement), so reads from either strand look up the same entries.

use genomics::{Annotation, Assembly, DnaSeq, GenomicsError};
use std::collections::HashMap;

/// Index construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct PseudoIndexParams {
    /// k-mer length (kallisto default 31; must be ≤ 31 to fit 2 bits/base in u64).
    pub k: usize,
}

impl Default for PseudoIndexParams {
    fn default() -> Self {
        PseudoIndexParams { k: 31 }
    }
}

/// Metadata for one indexed transcript.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TranscriptMeta {
    /// The gene this transcript belongs to (one transcript per gene in our model).
    pub gene_id: String,
    /// Mature transcript length.
    pub len: usize,
}

/// The pseudoalignment index.
#[derive(Debug)]
pub struct PseudoIndex {
    k: usize,
    transcripts: Vec<TranscriptMeta>,
    /// canonical k-mer → equivalence-class id.
    kmers: HashMap<u64, u32>,
    /// Equivalence classes: sorted transcript-id lists, deduplicated.
    classes: Vec<Vec<u32>>,
}

impl PseudoIndex {
    /// Build from an assembly + annotation (transcripts = spliced gene sequences).
    pub fn build(
        assembly: &Assembly,
        annotation: &Annotation,
        params: &PseudoIndexParams,
    ) -> Result<PseudoIndex, GenomicsError> {
        let k = params.k;
        assert!((4..=31).contains(&k), "k must be in 4..=31");
        // First pass: k-mer → sorted set of transcript ids (as a Vec kept sorted).
        let mut raw: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut transcripts = Vec::new();
        for gene in &annotation.genes {
            let t = gene.transcript(assembly)?;
            if t.len() < k {
                continue;
            }
            let tid = transcripts.len() as u32;
            transcripts.push(TranscriptMeta { gene_id: gene.id.clone(), len: t.len() });
            for kmer in canonical_kmers(&t, k) {
                let entry = raw.entry(kmer).or_default();
                if entry.last() != Some(&tid) {
                    entry.push(tid);
                }
            }
        }
        // Second pass: dedupe transcript sets into classes.
        let mut class_ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut classes: Vec<Vec<u32>> = Vec::new();
        let mut kmers = HashMap::with_capacity(raw.len());
        for (kmer, set) in raw {
            let next = classes.len() as u32;
            let id = *class_ids.entry(set.clone()).or_insert_with(|| {
                classes.push(set);
                next
            });
            kmers.insert(kmer, id);
        }
        Ok(PseudoIndex { k, transcripts, kmers, classes })
    }

    /// The k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of indexed transcripts.
    pub fn n_transcripts(&self) -> usize {
        self.transcripts.len()
    }

    /// Transcript metadata by id.
    pub fn transcript(&self, tid: u32) -> &TranscriptMeta {
        &self.transcripts[tid as usize]
    }

    /// Number of distinct k-mers.
    pub fn n_kmers(&self) -> usize {
        self.kmers.len()
    }

    /// Number of equivalence classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The transcript set of an equivalence class.
    pub fn class(&self, id: u32) -> &[u32] {
        &self.classes[id as usize]
    }

    /// Look up a canonical k-mer's equivalence class.
    pub fn lookup(&self, canonical_kmer: u64) -> Option<u32> {
        self.kmers.get(&canonical_kmer).copied()
    }

    /// Approximate memory footprint in bytes (for comparisons against the
    /// suffix-array index: pseudoalignment's memory pitch).
    pub fn byte_size(&self) -> usize {
        self.kmers.len() * (8 + 4)
            + self.classes.iter().map(|c| c.len() * 4 + 24).sum::<usize>()
            + self.transcripts.len() * 32
    }
}

/// 2-bit encode `seq[i..i+k]` (A=0 C=1 G=2 T=3, high bits first).
fn encode_kmer(seq: &DnaSeq, i: usize, k: usize) -> u64 {
    let mut v = 0u64;
    for j in 0..k {
        v = (v << 2) | seq.codes()[i + j] as u64;
    }
    v
}

/// Reverse-complement of a 2-bit-encoded k-mer.
fn revcomp_kmer(kmer: u64, k: usize) -> u64 {
    let mut v = 0u64;
    let mut x = kmer;
    for _ in 0..k {
        v = (v << 2) | (3 - (x & 0b11));
        x >>= 2;
    }
    v
}

/// Canonical form: min(kmer, revcomp).
pub(crate) fn canonical(kmer: u64, k: usize) -> u64 {
    kmer.min(revcomp_kmer(kmer, k))
}

/// Iterator over the canonical k-mers of a sequence (rolling encoding).
pub(crate) fn canonical_kmers(seq: &DnaSeq, k: usize) -> impl Iterator<Item = u64> + '_ {
    let mask = if k == 32 { u64::MAX } else { (1u64 << (2 * k)) - 1 };
    let mut rolling = if seq.len() >= k { encode_kmer(seq, 0, k) } else { 0 };
    let mut first = true;
    (0..seq.len().saturating_sub(k - 1)).map(move |i| {
        if first {
            first = false;
        } else {
            rolling = ((rolling << 2) | seq.codes()[i + k - 1] as u64) & mask;
        }
        canonical(rolling, k)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomics::annotation::AnnotationParams;
    use genomics::{EnsemblGenerator, EnsemblParams, Release};

    fn setup() -> (Assembly, Annotation) {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = g.generate(Release::R111);
        let ann = Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap();
        (asm, ann)
    }

    #[test]
    fn kmer_encoding_round_trips_revcomp() {
        let seq: DnaSeq = "ACGTACGTACGTACGTACGTACGTACGTACG".parse().unwrap(); // 31 bases
        let fwd = encode_kmer(&seq, 0, 31);
        let rc_seq = seq.reverse_complement();
        let rc = encode_kmer(&rc_seq, 0, 31);
        assert_eq!(revcomp_kmer(fwd, 31), rc);
        assert_eq!(revcomp_kmer(revcomp_kmer(fwd, 31), 31), fwd);
        assert_eq!(canonical(fwd, 31), canonical(rc, 31), "strands share the canonical form");
    }

    #[test]
    fn rolling_kmers_match_direct_encoding() {
        let seq: DnaSeq = "ACGTTGCATGCATGCAATCGGCTA".parse().unwrap();
        let k = 7;
        let rolled: Vec<u64> = canonical_kmers(&seq, k).collect();
        let direct: Vec<u64> =
            (0..=seq.len() - k).map(|i| canonical(encode_kmer(&seq, i, k), k)).collect();
        assert_eq!(rolled, direct);
        assert_eq!(rolled.len(), seq.len() - k + 1);
    }

    #[test]
    fn index_contains_every_transcript_kmer() {
        let (asm, ann) = setup();
        let params = PseudoIndexParams { k: 21 };
        let idx = PseudoIndex::build(&asm, &ann, &params).unwrap();
        assert!(idx.n_transcripts() > 0);
        assert!(idx.n_kmers() > 0);
        // Every k-mer of every transcript resolves to a class containing it.
        for (tid, gene) in ann.genes.iter().enumerate().take(5) {
            let t = gene.transcript(&asm).unwrap();
            if t.len() < idx.k() {
                continue;
            }
            for kmer in canonical_kmers(&t, idx.k()) {
                let class = idx.lookup(kmer).expect("transcript k-mer indexed");
                assert!(
                    idx.class(class).contains(&(tid as u32)),
                    "class must contain its source transcript"
                );
            }
        }
    }

    #[test]
    fn classes_are_deduplicated() {
        let (asm, ann) = setup();
        let idx = PseudoIndex::build(&asm, &ann, &PseudoIndexParams { k: 21 }).unwrap();
        assert!(idx.n_classes() <= idx.n_kmers());
        // Most transcript sequence is unique → singleton classes dominate.
        let singletons = (0..idx.n_classes()).filter(|&c| idx.class(c as u32).len() == 1).count();
        assert!(singletons * 2 > idx.n_classes(), "{singletons}/{}", idx.n_classes());
    }

    #[test]
    fn short_transcripts_are_skipped() {
        let (asm, mut ann) = setup();
        // A gene with a tiny exon: transcript shorter than k.
        ann.genes.truncate(1);
        ann.genes[0].exons = vec![genomics::Exon { start: 0, end: 10 }];
        let idx = PseudoIndex::build(&asm, &ann, &PseudoIndexParams { k: 21 }).unwrap();
        assert_eq!(idx.n_transcripts(), 0);
        assert_eq!(idx.n_kmers(), 0);
    }

    #[test]
    fn byte_size_is_plausible() {
        let (asm, ann) = setup();
        let idx = PseudoIndex::build(&asm, &ann, &PseudoIndexParams { k: 21 }).unwrap();
        assert!(idx.byte_size() >= idx.n_kmers() * 12);
    }
}
