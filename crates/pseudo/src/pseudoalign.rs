//! Per-read pseudoalignment: intersect equivalence classes along the read.
//!
//! kallisto's model: a read is compatible with the transcripts whose k-mer sets
//! cover it. We walk the read's canonical k-mers, look each up, and intersect the
//! classes (skipping absent k-mers up to an error budget). A read pseudoaligns when
//! the final intersection is non-empty and enough of its k-mers were found.

use crate::index::{canonical_kmers, PseudoIndex};
use genomics::DnaSeq;

/// Pseudoalignment parameters.
#[derive(Clone, Copy, Debug)]
pub struct PseudoParams {
    /// Minimum fraction of the read's k-mers that must be present in the index.
    pub min_kmer_fraction: f64,
}

impl Default for PseudoParams {
    fn default() -> Self {
        PseudoParams { min_kmer_fraction: 0.5 }
    }
}

/// Result of pseudoaligning one read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PseudoOutcome {
    /// Transcript ids compatible with the read (empty = unmapped).
    pub compatible: Vec<u32>,
    /// k-mers of the read found in the index.
    pub kmers_hit: u32,
    /// Total k-mers in the read.
    pub kmers_total: u32,
}

impl PseudoOutcome {
    /// Did the read pseudoalign?
    pub fn is_mapped(&self) -> bool {
        !self.compatible.is_empty()
    }
}

/// The pseudoaligner, borrowing its index.
pub struct PseudoAligner<'i> {
    index: &'i PseudoIndex,
    params: PseudoParams,
}

impl<'i> PseudoAligner<'i> {
    /// Create a pseudoaligner.
    pub fn new(index: &'i PseudoIndex, params: PseudoParams) -> PseudoAligner<'i> {
        assert!(
            (0.0..=1.0).contains(&params.min_kmer_fraction),
            "min_kmer_fraction must be in [0,1]"
        );
        PseudoAligner { index, params }
    }

    /// The index in use.
    pub fn index(&self) -> &'i PseudoIndex {
        self.index
    }

    /// Pseudoalign one read.
    pub fn pseudoalign(&self, read: &DnaSeq) -> PseudoOutcome {
        let k = self.index.k();
        if read.len() < k {
            return PseudoOutcome { compatible: Vec::new(), kmers_hit: 0, kmers_total: 0 };
        }
        let mut total = 0u32;
        let mut hit = 0u32;
        let mut intersection: Option<Vec<u32>> = None;
        for kmer in canonical_kmers(read, k) {
            total += 1;
            let Some(class) = self.index.lookup(kmer) else { continue };
            hit += 1;
            let set = self.index.class(class);
            intersection = Some(match intersection {
                None => set.to_vec(),
                Some(cur) => intersect_sorted(&cur, set),
            });
            // An empty intersection can never recover (kallisto stops here too).
            if intersection.as_ref().is_some_and(Vec::is_empty) {
                break;
            }
        }
        let enough = total > 0 && hit as f64 / total as f64 >= self.params.min_kmer_fraction;
        PseudoOutcome {
            compatible: if enough { intersection.unwrap_or_default() } else { Vec::new() },
            kmers_hit: hit,
            kmers_total: total,
        }
    }
}

/// Intersection of two sorted, deduplicated u32 slices.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::PseudoIndexParams;
    use genomics::annotation::AnnotationParams;
    use genomics::{Annotation, Assembly, EnsemblGenerator, EnsemblParams, Release};

    fn setup() -> (Assembly, Annotation, PseudoIndex) {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = g.generate(Release::R111);
        let ann = Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap();
        let idx = PseudoIndex::build(&asm, &ann, &PseudoIndexParams { k: 21 }).unwrap();
        (asm, ann, idx)
    }

    #[test]
    fn transcript_reads_pseudoalign_to_their_transcript() {
        let (asm, ann, idx) = setup();
        let aligner = PseudoAligner::new(&idx, PseudoParams::default());
        let mut checked = 0;
        for (tid, gene) in ann.genes.iter().enumerate() {
            let t = gene.transcript(&asm).unwrap();
            if t.len() < 120 {
                continue;
            }
            let read = t.subseq(10, 110);
            let out = aligner.pseudoalign(&read);
            assert!(out.is_mapped(), "read from {} must pseudoalign", gene.id);
            assert!(
                out.compatible.contains(&(tid as u32)),
                "compatible set must include the source transcript"
            );
            checked += 1;
        }
        assert!(checked >= 5, "need transcripts to test: {checked}");
    }

    #[test]
    fn reverse_strand_reads_pseudoalign_too() {
        let (asm, ann, idx) = setup();
        let aligner = PseudoAligner::new(&idx, PseudoParams::default());
        let gene = ann.genes.iter().find(|g| g.transcript_len() >= 120).unwrap();
        let t = gene.transcript(&asm).unwrap();
        let read = t.subseq(0, 100).reverse_complement();
        assert!(aligner.pseudoalign(&read).is_mapped());
    }

    #[test]
    fn junk_reads_do_not_pseudoalign() {
        let (_, _, idx) = setup();
        let aligner = PseudoAligner::new(&idx, PseudoParams::default());
        for junk in [
            DnaSeq::from_codes(vec![0; 100]),
            DnaSeq::random(&mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1), 100),
        ] {
            let out = aligner.pseudoalign(&junk);
            assert!(!out.is_mapped(), "junk pseudoaligned: {junk:?}");
        }
    }

    #[test]
    fn intergenic_genomic_reads_do_not_pseudoalign() {
        // The pseudoaligner only knows the transcriptome: intronic/intergenic
        // sequence is invisible (the key behavioural difference vs STAR).
        let (asm, ann, idx) = setup();
        let aligner = PseudoAligner::new(&idx, PseudoParams::default());
        let chrom = asm.contig("1").unwrap();
        // Find a window no gene overlaps.
        let mut pos = None;
        'outer: for start in (0..chrom.len() - 100).step_by(500) {
            for gene in &ann.genes {
                if gene.contig != "1" {
                    continue;
                }
                let (gs, ge) = gene.span();
                if start + 100 > gs && start < ge {
                    continue 'outer;
                }
            }
            pos = Some(start);
            break;
        }
        let start = pos.expect("an intergenic window exists");
        let out = aligner.pseudoalign(&chrom.seq.subseq(start, start + 100));
        assert!(!out.is_mapped(), "intergenic read must not pseudoalign");
    }

    #[test]
    fn short_reads_are_unmapped() {
        let (_, _, idx) = setup();
        let aligner = PseudoAligner::new(&idx, PseudoParams::default());
        let out = aligner.pseudoalign(&"ACGT".parse().unwrap());
        assert!(!out.is_mapped());
        assert_eq!(out.kmers_total, 0);
    }

    #[test]
    fn intersect_sorted_is_correct() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[3, 4, 5, 8]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1, 2]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[2, 4], &[1, 3]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[9], &[9]), vec![9]);
    }

    #[test]
    fn errors_reduce_hits_but_reads_still_map() {
        let (asm, ann, idx) = setup();
        let aligner = PseudoAligner::new(&idx, PseudoParams::default());
        let gene = ann.genes.iter().find(|g| g.transcript_len() >= 120).unwrap();
        let t = gene.transcript(&asm).unwrap();
        let mut codes = t.subseq(0, 100).codes().to_vec();
        codes[50] = (codes[50] + 1) % 4; // one substitution kills k consecutive k-mers
        let out = aligner.pseudoalign(&DnaSeq::from_codes(codes));
        assert!(out.kmers_hit < out.kmers_total);
        assert!(out.is_mapped(), "one error must not unmap a read");
    }
}
