//! Batched pseudoalignment run driver with an *optional* progress stream.
//!
//! The paper's closing observation is that early stopping needs the running mapping
//! rate, which "e.g. Salmon does not" report. This runner makes that concrete:
//!
//! * `report_progress: false` (stock-Salmon mode) — the run exposes no interim
//!   statistics; any [`RunMonitor`] passed in is **never consulted**, so the paper's
//!   early-stopping policy cannot act and a hopeless run goes to completion.
//! * `report_progress: true` (the paper's recommendation) — the runner maintains the
//!   same [`ProgressStats`] as the STAR runner and consults the monitor between
//!   batches; the unchanged `EarlyStopPolicy` works immediately.

use crate::pseudoalign::{PseudoAligner, PseudoOutcome, PseudoParams};
use crate::quant::EqClassCounts;
use crate::PseudoIndex;
use genomics::FastqRecord;
use rayon::prelude::*;
use star_aligner::align::MapClass;
use star_aligner::progress::{ProgressSnapshot, ProgressStats};
use star_aligner::runner::{MonitorVerdict, RunMonitor, RunStatus};
use star_aligner::StarError;
use std::time::Instant;

/// Run configuration.
#[derive(Clone, Debug)]
pub struct PseudoRunConfig {
    /// Worker threads.
    pub threads: usize,
    /// Reads per batch.
    pub batch_size: usize,
    /// Emit interim progress and consult monitors (the paper's proposed feature;
    /// `false` reproduces stock Salmon).
    pub report_progress: bool,
}

impl Default for PseudoRunConfig {
    fn default() -> Self {
        PseudoRunConfig { threads: 4, batch_size: 2_000, report_progress: true }
    }
}

/// Everything a pseudoalignment run produces.
#[derive(Debug)]
pub struct PseudoRunOutput {
    /// Completion status (early-stopped only possible with progress reporting).
    pub status: RunStatus,
    /// Final counters.
    pub final_snapshot: ProgressSnapshot,
    /// Batch-boundary snapshots — EMPTY in stock-Salmon mode (there is no progress
    /// file to tail).
    pub history: Vec<ProgressSnapshot>,
    /// Equivalence-class counts for quantification.
    pub counts: EqClassCounts,
    /// Wall-clock seconds.
    pub wall_secs: f64,
}

impl PseudoRunOutput {
    /// Overall pseudoalignment rate in `[0,1]`.
    pub fn mapped_fraction(&self) -> f64 {
        self.final_snapshot.mapped_fraction()
    }
}

/// The run driver.
pub struct PseudoRunner<'i> {
    aligner: PseudoAligner<'i>,
    config: PseudoRunConfig,
    pool: rayon::ThreadPool,
}

impl<'i> PseudoRunner<'i> {
    /// Create a runner with its own thread pool.
    pub fn new(
        index: &'i PseudoIndex,
        params: PseudoParams,
        config: PseudoRunConfig,
    ) -> Result<PseudoRunner<'i>, StarError> {
        if config.threads == 0 || config.batch_size == 0 {
            return Err(StarError::InvalidParams("threads and batch_size must be positive".into()));
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(config.threads)
            .build()
            .map_err(|e| StarError::InvalidParams(format!("thread pool: {e}")))?;
        Ok(PseudoRunner { aligner: PseudoAligner::new(index, params), config, pool })
    }

    /// Pseudoalign all reads. `monitor` is only consulted when `report_progress` is
    /// enabled — passing one in stock-Salmon mode is accepted and silently useless,
    /// which is precisely the point the paper makes.
    pub fn run(
        &self,
        reads: &[FastqRecord],
        monitor: Option<&dyn RunMonitor>,
    ) -> Result<PseudoRunOutput, StarError> {
        let started = Instant::now();
        let progress = ProgressStats::new(reads.len() as u64);
        let mut counts = EqClassCounts::new();
        let mut history = Vec::new();
        let mut status = RunStatus::Completed;

        'batches: for batch in reads.chunks(self.config.batch_size) {
            let outcomes: Vec<PseudoOutcome> = self.pool.install(|| {
                batch.par_iter().map(|r| self.aligner.pseudoalign(&r.seq)).collect()
            });
            for out in &outcomes {
                // Pseudoalignment has no unique/multi split at the alignment level;
                // classify singleton-compatible reads as unique for the statistics.
                let class = match out.compatible.len() {
                    0 => MapClass::Unmapped,
                    1 => MapClass::Unique,
                    n => MapClass::Multi(n as u32),
                };
                progress.record(class);
                counts.record(&out.compatible);
            }
            if self.config.report_progress {
                let snap = progress.snapshot();
                history.push(snap);
                if let Some(m) = monitor {
                    if m.on_progress(&snap) == MonitorVerdict::Abort {
                        status = RunStatus::EarlyStopped { processed_reads: snap.processed };
                        break 'batches;
                    }
                }
            }
        }
        Ok(PseudoRunOutput {
            status,
            final_snapshot: progress.snapshot(),
            history,
            counts,
            wall_secs: started.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::PseudoIndexParams;
    use genomics::annotation::AnnotationParams;
    use genomics::{
        Annotation, EnsemblGenerator, EnsemblParams, LibraryType, ReadSimulator, Release,
        SimulatorParams,
    };

    fn setup() -> (PseudoIndex, Vec<FastqRecord>, Vec<FastqRecord>) {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = g.generate(Release::R111);
        let ann = Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap();
        let idx = PseudoIndex::build(&asm, &ann, &PseudoIndexParams { k: 21 }).unwrap();
        let bulk: Vec<FastqRecord> =
            ReadSimulator::new(&asm, &ann, SimulatorParams::for_library(LibraryType::BulkPolyA), 3)
                .unwrap()
                .simulate(2_000, "PB")
                .into_iter()
                .map(|r| r.fastq)
                .collect();
        let sc: Vec<FastqRecord> = ReadSimulator::new(
            &asm,
            &ann,
            SimulatorParams::for_library(LibraryType::SingleCell3Prime),
            4,
        )
        .unwrap()
        .simulate(2_000, "PS")
        .into_iter()
        .map(|r| r.fastq)
        .collect();
        (idx, bulk, sc)
    }

    #[test]
    fn bulk_reads_pseudoalign_at_high_rate() {
        let (idx, bulk, _) = setup();
        let runner =
            PseudoRunner::new(&idx, crate::pseudoalign::PseudoParams::default(), PseudoRunConfig::default())
                .unwrap();
        let out = runner.run(&bulk, None).unwrap();
        assert_eq!(out.status, RunStatus::Completed);
        // The pseudoaligner only sees exonic reads (~82% of bulk libraries), so its
        // rate sits below STAR's but well above the 30% threshold.
        assert!(out.mapped_fraction() > 0.6, "rate {}", out.mapped_fraction());
        assert!(out.counts.mapped() > 0);
    }

    #[test]
    fn single_cell_reads_pseudoalign_below_threshold() {
        let (idx, _, sc) = setup();
        let runner =
            PseudoRunner::new(&idx, crate::pseudoalign::PseudoParams::default(), PseudoRunConfig::default())
                .unwrap();
        let out = runner.run(&sc, None).unwrap();
        assert!(out.mapped_fraction() < 0.30, "rate {}", out.mapped_fraction());
    }

    #[test]
    fn early_stopping_works_only_with_progress_reporting() {
        let (idx, _, sc) = setup();
        // The paper's policy as a closure monitor.
        let monitor = |s: &ProgressSnapshot| {
            if s.processed_fraction() >= 0.10 && s.processed >= 200 && s.mapped_fraction() < 0.30 {
                MonitorVerdict::Abort
            } else {
                MonitorVerdict::Continue
            }
        };

        // With progress (the paper's proposal): aborts early.
        let cfg = PseudoRunConfig { batch_size: 100, report_progress: true, ..PseudoRunConfig::default() };
        let runner = PseudoRunner::new(&idx, crate::pseudoalign::PseudoParams::default(), cfg).unwrap();
        let out = runner.run(&sc, Some(&monitor)).unwrap();
        assert!(
            matches!(out.status, RunStatus::EarlyStopped { .. }),
            "progress-enabled pseudoaligner must early-stop"
        );
        assert!(out.final_snapshot.processed < sc.len() as u64);
        assert!(!out.history.is_empty());

        // Stock Salmon mode: same monitor, never consulted — runs to completion.
        let cfg =
            PseudoRunConfig { batch_size: 100, report_progress: false, ..PseudoRunConfig::default() };
        let runner = PseudoRunner::new(&idx, crate::pseudoalign::PseudoParams::default(), cfg).unwrap();
        let out = runner.run(&sc, Some(&monitor)).unwrap();
        assert_eq!(out.status, RunStatus::Completed, "no progress stream → no early stopping");
        assert_eq!(out.final_snapshot.processed, sc.len() as u64);
        assert!(out.history.is_empty(), "stock mode has no Log.progress.out to tail");
    }

    #[test]
    fn quantification_runs_on_the_collected_counts() {
        let (idx, bulk, _) = setup();
        let runner =
            PseudoRunner::new(&idx, crate::pseudoalign::PseudoParams::default(), PseudoRunConfig::default())
                .unwrap();
        let out = runner.run(&bulk, None).unwrap();
        let lengths: Vec<usize> =
            (0..idx.n_transcripts() as u32).map(|t| idx.transcript(t).len).collect();
        let alpha = crate::quant::em_abundances(&out.counts, &lengths, 200, 1e-6);
        let total: f64 = alpha.iter().sum();
        assert!((total - out.counts.mapped() as f64).abs() < 1e-3, "mass conserved: {total}");
        assert!(alpha.iter().any(|&a| a > 0.0));
    }

    #[test]
    fn invalid_config_rejected() {
        let (idx, _, _) = setup();
        let cfg = PseudoRunConfig { threads: 0, ..PseudoRunConfig::default() };
        assert!(PseudoRunner::new(&idx, crate::pseudoalign::PseudoParams::default(), cfg).is_err());
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let (idx, bulk, _) = setup();
        let mut rates = Vec::new();
        for threads in [1, 4] {
            let cfg = PseudoRunConfig { threads, ..PseudoRunConfig::default() };
            let runner =
                PseudoRunner::new(&idx, crate::pseudoalign::PseudoParams::default(), cfg).unwrap();
            let out = runner.run(&bulk, None).unwrap();
            rates.push((out.final_snapshot.unique, out.final_snapshot.multi, out.counts.mapped()));
        }
        assert_eq!(rates[0], rates[1]);
    }
}
