//! A kallisto/Salmon-style transcriptome **pseudoaligner** — the paper's future work.
//!
//! The paper closes §III-B with: *"Early stopping optimization we proposed notably
//! increases the pipeline throughput, which suggests that other (pseudo)aligners
//! should also provide the current mapping rate value (e.g. Salmon does not).
//! Further research will measure applicability of those findings for other
//! aligners."* This crate carries out that study:
//!
//! * [`index`] — a transcriptome k-mer index: every k-mer of every annotated
//!   transcript maps to an *equivalence class* (the set of transcripts containing
//!   it), kallisto's core data structure.
//! * [`pseudoalign`] — per-read pseudoalignment: intersect the equivalence classes of
//!   the read's k-mers; a read is "pseudoaligned" when enough k-mers agree on a
//!   non-empty transcript set.
//! * [`quant`] — equivalence-class counting plus EM abundance estimation (the
//!   kallisto/Salmon quantification step).
//! * [`runner`] — a batched run driver with an **optional** progress stream. With
//!   `report_progress: false` the tool behaves like stock Salmon — no interim
//!   mapping rate, so the paper's early stopping has nothing to hook into. With
//!   `report_progress: true` it emits the same [`star_aligner::ProgressSnapshot`]s
//!   as the STAR runner and the unchanged
//!   [`atlas_pipeline`-style monitors](star_aligner::runner::RunMonitor) work as-is.
//!
//! The `pseudo-early-stop` experiment in `atlas-bench` quantifies the difference.

pub mod index;
pub mod pseudoalign;
pub mod quant;
pub mod runner;

pub use index::{PseudoIndex, PseudoIndexParams};
pub use pseudoalign::{PseudoAligner, PseudoOutcome};
pub use quant::{em_abundances, EqClassCounts};
pub use runner::{PseudoRunConfig, PseudoRunOutput, PseudoRunner};
