//! Equivalence-class counting and EM abundance estimation (the kallisto/Salmon
//! quantification step).
//!
//! Pseudoalignment yields, per read, a compatible transcript set; quantification
//! tallies reads per distinct set and runs the standard EM: each class's count is
//! fractionally assigned to its transcripts proportionally to current abundance ÷
//! effective length, iterated to convergence.

use std::collections::HashMap;

/// Read counts per compatible-transcript set.
#[derive(Clone, Debug, Default)]
pub struct EqClassCounts {
    /// (sorted transcript set) → reads.
    counts: HashMap<Vec<u32>, u64>,
    /// Reads with an empty compatible set.
    pub unmapped: u64,
}

impl EqClassCounts {
    /// An empty tally.
    pub fn new() -> EqClassCounts {
        EqClassCounts::default()
    }

    /// Record one read's compatible set (empty = unmapped).
    pub fn record(&mut self, compatible: &[u32]) {
        if compatible.is_empty() {
            self.unmapped += 1;
        } else {
            *self.counts.entry(compatible.to_vec()).or_default() += 1;
        }
    }

    /// Total pseudoaligned reads.
    pub fn mapped(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct classes observed.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Iterate over (set, count).
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_slice(), v))
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: EqClassCounts) {
        self.unmapped += other.unmapped;
        for (set, n) in other.counts {
            *self.counts.entry(set).or_default() += n;
        }
    }
}

/// EM abundance estimation.
///
/// `lengths[t]` is transcript `t`'s (effective) length; returns per-transcript
/// expected read counts summing to the mapped total. Deterministic: uniform
/// initialization, fixed iteration cap, L1 convergence threshold.
pub fn em_abundances(counts: &EqClassCounts, lengths: &[usize], max_iters: usize, tol: f64) -> Vec<f64> {
    let n = lengths.len();
    if n == 0 {
        return Vec::new();
    }
    let total_mapped = counts.mapped() as f64;
    let mut alpha = vec![total_mapped / n as f64; n];
    if total_mapped == 0.0 {
        return vec![0.0; n];
    }
    let eff_len: Vec<f64> = lengths.iter().map(|&l| (l.max(1)) as f64).collect();
    for _ in 0..max_iters {
        let mut next = vec![0.0f64; n];
        for (set, reads) in counts.iter() {
            // Responsibility of transcript t for this class ∝ alpha_t / eff_len_t.
            let denom: f64 = set.iter().map(|&t| alpha[t as usize] / eff_len[t as usize]).sum();
            if denom <= 0.0 {
                // Degenerate: split uniformly.
                for &t in set {
                    next[t as usize] += reads as f64 / set.len() as f64;
                }
                continue;
            }
            for &t in set {
                let w = (alpha[t as usize] / eff_len[t as usize]) / denom;
                next[t as usize] += reads as f64 * w;
            }
        }
        let delta: f64 = alpha.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        alpha = next;
        if delta < tol {
            break;
        }
    }
    alpha
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_tally_and_merge() {
        let mut c = EqClassCounts::new();
        c.record(&[0]);
        c.record(&[0]);
        c.record(&[0, 1]);
        c.record(&[]);
        assert_eq!(c.mapped(), 3);
        assert_eq!(c.unmapped, 1);
        assert_eq!(c.n_classes(), 2);
        let mut d = EqClassCounts::new();
        d.record(&[0, 1]);
        d.record(&[]);
        c.merge(d);
        assert_eq!(c.mapped(), 4);
        assert_eq!(c.unmapped, 2);
        assert_eq!(c.n_classes(), 2, "same set merges into one class");
    }

    #[test]
    fn em_resolves_unique_evidence() {
        // Transcript 0 has 90 unique reads, transcript 1 has 10; a shared class of
        // 100 reads should split ~90/10 after EM.
        let mut c = EqClassCounts::new();
        for _ in 0..90 {
            c.record(&[0]);
        }
        for _ in 0..10 {
            c.record(&[1]);
        }
        for _ in 0..100 {
            c.record(&[0, 1]);
        }
        let alpha = em_abundances(&c, &[1000, 1000], 500, 1e-9);
        assert!((alpha[0] + alpha[1] - 200.0).abs() < 1e-6, "mass conserved");
        assert!(alpha[0] > 170.0, "shared reads follow unique evidence: {alpha:?}");
        assert!(alpha[1] < 30.0);
    }

    #[test]
    fn em_accounts_for_length_bias() {
        // Equal shared counts over transcripts of length 100 and 1000: the short one
        // is more densely covered per base, so EM gives it a higher rate share but
        // total counts split by alpha/len weighting from a uniform start.
        let mut c = EqClassCounts::new();
        for _ in 0..100 {
            c.record(&[0, 1]);
        }
        let alpha = em_abundances(&c, &[100, 1000], 500, 1e-9);
        assert!((alpha[0] + alpha[1] - 100.0).abs() < 1e-6);
        assert!(alpha[0] > alpha[1], "shorter transcript takes the larger share: {alpha:?}");
    }

    #[test]
    fn em_handles_empty_and_unmapped_only() {
        let c = EqClassCounts::new();
        assert_eq!(em_abundances(&c, &[100, 200], 10, 1e-9), vec![0.0, 0.0]);
        assert!(em_abundances(&c, &[], 10, 1e-9).is_empty());
        let mut only_unmapped = EqClassCounts::new();
        only_unmapped.record(&[]);
        assert_eq!(em_abundances(&only_unmapped, &[100], 10, 1e-9), vec![0.0]);
    }

    #[test]
    fn em_is_deterministic() {
        let mut c = EqClassCounts::new();
        for i in 0..50u32 {
            c.record(&[i % 3]);
            c.record(&[0, 1, 2]);
        }
        let a = em_abundances(&c, &[500, 600, 700], 200, 1e-9);
        let b = em_abundances(&c, &[500, 600, 700], 200, 1e-9);
        assert_eq!(a, b);
    }
}
