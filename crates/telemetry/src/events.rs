//! The structured event log.
//!
//! Events are `(sim-time, kind, fields)` records serialized as NDJSON — one JSON
//! object per line, `t` and `kind` first, then kind-specific fields in a fixed
//! per-kind order. Emission order is the simulator's deterministic event order, so
//! a fixed-seed campaign's NDJSON dump is byte-identical across runs.

use crate::json::JsonValue;

/// One structured event.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Simulated seconds since campaign start.
    pub at_secs: f64,
    /// Event kind, snake_case (`fault_injected`, `retry`, `spot_interruption`, ...).
    pub kind: String,
    /// Kind-specific fields, serialized in this order.
    pub fields: Vec<(String, JsonValue)>,
}

impl EventRecord {
    /// Serialize as one NDJSON line (no trailing newline).
    pub fn ndjson_line(&self) -> String {
        let mut fields =
            vec![("t".to_string(), JsonValue::from(self.at_secs)), ("kind".to_string(), JsonValue::from(self.kind.as_str()))];
        fields.extend(self.fields.iter().cloned());
        JsonValue::Obj(fields).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_puts_time_and_kind_first() {
        let e = EventRecord {
            at_secs: 12.5,
            kind: "retry".into(),
            fields: vec![
                ("op".to_string(), JsonValue::from("s3_get")),
                ("attempt".to_string(), JsonValue::from(2u64)),
            ],
        };
        assert_eq!(e.ndjson_line(), "{\"t\":12.5,\"kind\":\"retry\",\"op\":\"s3_get\",\"attempt\":2}");
    }
}
