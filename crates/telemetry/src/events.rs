//! The structured event log.
//!
//! Events are `(sim-time, kind, fields)` records serialized as NDJSON — one JSON
//! object per line, `t` and `kind` first, then kind-specific fields in a fixed
//! per-kind order. Emission order is the simulator's deterministic event order, so
//! a fixed-seed campaign's NDJSON dump is byte-identical across runs.

use crate::json::JsonValue;

/// One structured event.
///
/// Kinds and field names are schema constants (`&'static str`), not data: every
/// emitter names them with literals, and the hot path (progress streaming emits
/// thousands of records per campaign) must not allocate a `String` per key.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Simulated seconds since campaign start.
    pub at_secs: f64,
    /// Event kind, snake_case (`fault_injected`, `retry`, `spot_interruption`, ...).
    pub kind: &'static str,
    /// Kind-specific fields, serialized in this order.
    pub fields: Vec<(&'static str, JsonValue)>,
}

impl EventRecord {
    /// Serialize as one NDJSON line (no trailing newline).
    pub fn ndjson_line(&self) -> String {
        let mut out = String::new();
        self.write_ndjson_into(&mut out);
        out
    }

    /// Stream the NDJSON line into `out` (no trailing newline). Campaign logs
    /// run to thousands of lines; writing bytes directly — instead of building
    /// a `JsonValue` object per line — keeps the export cheap enough for the
    /// observer-overhead budget.
    pub fn write_ndjson_into(&self, out: &mut String) {
        out.push_str("{\"t\":");
        crate::json::write_f64(self.at_secs, out);
        out.push_str(",\"kind\":");
        crate::json::escape_into(self.kind, out);
        for (k, v) in &self.fields {
            out.push(',');
            crate::json::escape_into(k, out);
            out.push(':');
            v.write_into(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_puts_time_and_kind_first() {
        let e = EventRecord {
            at_secs: 12.5,
            kind: "retry".into(),
            fields: vec![
                ("op", JsonValue::from("s3_get")),
                ("attempt", JsonValue::from(2u64)),
            ],
        };
        assert_eq!(e.ndjson_line(), "{\"t\":12.5,\"kind\":\"retry\",\"op\":\"s3_get\",\"attempt\":2}");
    }
}
