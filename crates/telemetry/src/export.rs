//! Standard-format exporters over recorded telemetry: Chrome/Perfetto trace-event
//! JSON for the span tree and OpenMetrics text exposition for the metrics
//! registry, plus a collapsed-stack (flamegraph) fold of the span tree.
//!
//! Everything here is a pure function of already-recorded data — exporting cannot
//! perturb a campaign — and every byte is deterministic: timestamps are simulated
//! seconds converted to integer microseconds, floats go through
//! [`crate::json::write_f64`], and iteration orders are either emission order
//! (spans, events) or sorted-name order (metrics). A fixed-seed campaign therefore
//! exports byte-identical documents on every run, which is what lets CI pin them
//! as goldens.

use crate::events::EventRecord;
use crate::json::{escape_into, fmt_f64, JsonValue};
use crate::metrics::MetricsRegistry;
use crate::recorder::Recorder;
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Simulated seconds → integer trace microseconds.
fn micros(secs: f64) -> i64 {
    (secs * 1e6).round() as i64
}

/// The process id a span renders under: the `instance` attribute of the nearest
/// enclosing `instance` span (the instances of the simulated fleet map to Perfetto
/// processes), or 0 for campaign-level spans.
fn span_pids(spans: &[SpanRecord]) -> Vec<u64> {
    let index: BTreeMap<u64, usize> =
        spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut pids = vec![0u64; spans.len()];
    for (i, span) in spans.iter().enumerate() {
        let mut cur = Some(span);
        while let Some(s) = cur {
            if s.name == "instance" {
                if let Some(pid) = s.attr("instance").and_then(|v| v.parse::<u64>().ok()) {
                    pids[i] = pid;
                }
                break;
            }
            cur = index.get(&s.parent).map(|&j| &spans[j]);
        }
    }
    pids
}

/// Export spans and events as a Chrome/Perfetto trace-event JSON document
/// (`chrome://tracing`, <https://ui.perfetto.dev>, `speedscope` all load it).
///
/// * Every closed span becomes a complete (`"ph":"X"`) event; `ts`/`dur` are
///   integer microseconds of simulated time. Spans still open at export render
///   with `dur` 0.
/// * `pid` is the simulated instance (campaign-level spans use pid 0), `tid` is
///   the instance's worker (one per instance today, so always 0); process-name
///   metadata events label each pid.
/// * Span attributes ride along in `args`.
/// * Every event-log record becomes an instant (`"ph":"i"`) event, scoped to its
///   instance's process when it names one, global otherwise.
pub fn perfetto_trace(spans: &[SpanRecord], events: &[EventRecord]) -> String {
    let pids = span_pids(spans);
    // Streamed straight into the output buffer: a campaign renders hundreds of
    // KB of trace JSON inside `summarize`, and materializing the equivalent
    // `JsonValue` tree first costs an allocation per key — enough to blow the
    // observer-overhead budget the `bench_compare --overhead` gates enforce.
    // Bytes are identical to what the tree render produced: strings go through
    // `escape_into`, field values through `JsonValue::write_into`.
    let mut out = String::with_capacity(176 * (spans.len() + events.len()) + 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    macro_rules! sep {
        () => {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };
    }

    // Process metadata: pid 0 is the campaign; instance pids label themselves,
    // in first-seen (emission) order.
    let mut seen: Vec<u64> = vec![0];
    for (i, s) in spans.iter().enumerate() {
        if s.name == "instance" && !seen.contains(&pids[i]) {
            seen.push(pids[i]);
        }
    }
    for &pid in &seen {
        sep!();
        let _ = write!(out, "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":");
        if pid == 0 {
            out.push_str("\"campaign\"");
        } else {
            let _ = write!(out, "\"instance {pid}\"");
        }
        out.push_str("}}");
    }

    for (i, s) in spans.iter().enumerate() {
        sep!();
        out.push_str("{\"name\":");
        escape_into(&s.name, &mut out);
        let _ = write!(
            out,
            ",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":0,\"args\":{{",
            micros(s.start_secs),
            micros(s.duration_secs()),
            pids[i]
        );
        for (j, (k, v)) in s.attrs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            escape_into(k, &mut out);
            out.push(':');
            escape_into(v, &mut out);
        }
        out.push_str("}}");
    }

    for e in events {
        sep!();
        // SLO budget samples render as counter (`"ph":"C"`) events — one counter
        // track per objective showing the remaining error budget over time.
        if e.kind == "slo_budget" {
            let slo = e
                .fields
                .iter()
                .find(|(k, _)| *k == "slo")
                .map(|(_, v)| match v {
                    JsonValue::Str(s) => s.clone(),
                    other => other.render(),
                })
                .unwrap_or_default();
            out.push_str("{\"name\":");
            escape_into(&format!("slo_budget:{slo}"), &mut out);
            let _ = write!(
                out,
                ",\"cat\":\"slo\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":0,\"args\":{{\"remaining\":",
                micros(e.at_secs)
            );
            match e.fields.iter().find(|(k, _)| *k == "remaining") {
                Some((_, v)) => v.write_into(&mut out),
                None => out.push('0'),
            }
            out.push_str("}}");
            continue;
        }
        let pid = e
            .fields
            .iter()
            .find(|(k, _)| *k == "instance")
            .and_then(|(_, v)| match v {
                JsonValue::UInt(n) => Some(*n),
                JsonValue::Int(n) if *n >= 0 => Some(*n as u64),
                _ => None,
            });
        out.push_str("{\"name\":");
        escape_into(e.kind, &mut out);
        let _ = write!(
            out,
            ",\"cat\":\"event\",\"ph\":\"i\",\"ts\":{},\"s\":\"{}\",\"pid\":{},\"tid\":0,\"args\":{{",
            micros(e.at_secs),
            if pid.is_some() { "p" } else { "g" },
            pid.unwrap_or(0)
        );
        for (j, (k, v)) in e.fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            escape_into(k, &mut out);
            out.push(':');
            v.write_into(&mut out);
        }
        out.push_str("}}");
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// [`perfetto_trace`] over everything a recorder captured.
pub fn perfetto_trace_from(rec: &Recorder) -> String {
    perfetto_trace(&rec.spans(), &rec.events())
}

/// Export the metrics registry as OpenMetrics text exposition
/// (<https://prometheus.io/docs/specs/om/open_metrics_spec/>): counters with the
/// `_total` suffix, gauges verbatim, histograms as cumulative `le` buckets plus
/// `_sum`/`_count`, and the mandatory `# EOF` terminator. Families appear in
/// sorted-name order within each class (counters, gauges, histograms) — the
/// registry's `BTreeMap` order, so the text is byte-deterministic.
pub fn openmetrics(metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, v) in metrics.counters() {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name}_total {v}");
    }
    for (name, v) in metrics.gauges() {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_f64(v));
    }
    for (name, h) in metrics.histograms() {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (i, &bound) in h.bounds().iter().enumerate() {
            cum += h.bucket_counts()[i];
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", fmt_f64(bound));
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{name}_sum {}", fmt_f64(h.sum()));
        let _ = writeln!(out, "{name}_count {}", h.count());
    }
    for (name, s) in metrics.sketches() {
        let _ = writeln!(out, "# TYPE {name} summary");
        for q in [0.5, 0.9, 0.95, 0.99] {
            let _ = writeln!(out, "{name}{{quantile=\"{}\"}} {}", fmt_f64(q), fmt_f64(s.quantile(q)));
        }
        // No `_sum`: the sketch deliberately tracks none (see `sketch` docs) —
        // float addition would break its byte-associative merge.
        let _ = writeln!(out, "{name}_count {}", s.count());
    }
    out.push_str("# EOF\n");
    out
}

/// [`openmetrics`] over a recorder's registry snapshot.
pub fn openmetrics_from(rec: &Recorder) -> String {
    openmetrics(&rec.metrics())
}

/// Fold the span tree into collapsed-stack (flamegraph) lines: one
/// `root;child;leaf weight` line per distinct stack, weighted by *self* time in
/// integer microseconds (a span's duration minus its children's), aggregated and
/// sorted lexicographically. Pipe the output straight into `flamegraph.pl` or
/// load it in speedscope.
pub fn collapsed_stacks(spans: &[SpanRecord]) -> String {
    let index: BTreeMap<u64, usize> =
        spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut child_micros = vec![0i64; spans.len()];
    for s in spans {
        if let Some(&pi) = index.get(&s.parent) {
            child_micros[pi] += micros(s.duration_secs());
        }
    }
    let mut folded: BTreeMap<String, i64> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let self_micros = (micros(s.duration_secs()) - child_micros[i]).max(0);
        if self_micros == 0 {
            continue;
        }
        // Walk to the root; orphaned parents terminate the stack where they are.
        let mut names = vec![s.name.as_str()];
        let mut cur = s;
        while let Some(&pi) = index.get(&cur.parent) {
            cur = &spans[pi];
            names.push(cur.name.as_str());
        }
        names.reverse();
        *folded.entry(names.join(";")).or_insert(0) += self_micros;
    }
    let mut out = String::new();
    for (stack, weight) in folded {
        let _ = writeln!(out, "{stack} {weight}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn sample_recorder() -> Recorder {
        let r = Recorder::new();
        let root = r.span_start("campaign", SpanId::NONE, 0.0);
        let inst = r.span_start_attrs(
            "instance",
            root,
            1.0,
            &[("instance", "7".to_string()), ("itype", "r6a.xlarge".to_string())],
        );
        let job = r.span_closed(
            "job",
            inst,
            2.0,
            10.0,
            &[("accession", "SRR1".to_string()), ("outcome", "ok".to_string())],
        );
        r.span_closed("align", job, 2.0, 9.0, &[]);
        r.event(2.5, "queue_wait", vec![("accession", JsonValue::from("SRR1")), ("instance", JsonValue::from(7u64))]);
        r.event(3.0, "scale_out", vec![("launch", JsonValue::from(2u64))]);
        r.counter_add("jobs_completed", 1);
        r.gauge_set("fleet_active", 2.0);
        r.observe("queue_wait_secs", &[1.0, 10.0], 0.5);
        r.observe("queue_wait_secs", &[1.0, 10.0], 3.5);
        r.span_end(inst, 12.0);
        r.span_end(root, 12.0);
        r
    }

    #[test]
    fn perfetto_maps_instances_to_pids() {
        let r = sample_recorder();
        let trace = perfetto_trace_from(&r);
        assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
        assert!(trace.ends_with("\"displayTimeUnit\":\"ms\"}\n"), "{trace}");
        // Process metadata for campaign (pid 0) and instance 7.
        assert!(trace.contains("\"args\":{\"name\":\"campaign\"}"), "{trace}");
        assert!(trace.contains("\"args\":{\"name\":\"instance 7\"}"), "{trace}");
        // The job span inherits pid 7 from its instance and carries its attrs.
        assert!(
            trace.contains(
                "{\"name\":\"job\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":2000000,\"dur\":8000000,\
                 \"pid\":7,\"tid\":0,\"args\":{\"accession\":\"SRR1\",\"outcome\":\"ok\"}}"
            ),
            "{trace}"
        );
        // Events become instants; instance-scoped ones land on their pid.
        assert!(trace.contains("{\"name\":\"queue_wait\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":2500000,\"s\":\"p\",\"pid\":7"), "{trace}");
        assert!(trace.contains("{\"name\":\"scale_out\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":3000000,\"s\":\"g\",\"pid\":0"), "{trace}");
    }

    #[test]
    fn perfetto_is_byte_deterministic() {
        let a = perfetto_trace_from(&sample_recorder());
        let b = perfetto_trace_from(&sample_recorder());
        assert_eq!(a, b);
    }

    #[test]
    fn open_span_renders_with_zero_duration() {
        let r = Recorder::new();
        r.span_start("campaign", SpanId::NONE, 5.0);
        let trace = perfetto_trace_from(&r);
        assert!(trace.contains("\"ts\":5000000,\"dur\":0,"), "{trace}");
    }

    #[test]
    fn openmetrics_renders_all_three_classes() {
        let r = sample_recorder();
        let text = openmetrics_from(&r);
        let expected = "# TYPE jobs_completed counter\n\
                        jobs_completed_total 1\n\
                        # TYPE fleet_active gauge\n\
                        fleet_active 2\n\
                        # TYPE queue_wait_secs histogram\n\
                        queue_wait_secs_bucket{le=\"1\"} 1\n\
                        queue_wait_secs_bucket{le=\"10\"} 2\n\
                        queue_wait_secs_bucket{le=\"+Inf\"} 2\n\
                        queue_wait_secs_sum 4\n\
                        queue_wait_secs_count 2\n\
                        # EOF\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn openmetrics_on_empty_registry_is_just_eof() {
        assert_eq!(openmetrics(&MetricsRegistry::new()), "# EOF\n");
    }

    #[test]
    fn openmetrics_renders_sketches_as_summaries() {
        let mut m = MetricsRegistry::new();
        for _ in 0..10 {
            m.sketch_observe("slo_turnaround_secs", 0.01, 100.0);
        }
        let text = openmetrics(&m);
        let expected = "# TYPE slo_turnaround_secs summary\n\
                        slo_turnaround_secs{quantile=\"0.5\"} 100\n\
                        slo_turnaround_secs{quantile=\"0.9\"} 100\n\
                        slo_turnaround_secs{quantile=\"0.95\"} 100\n\
                        slo_turnaround_secs{quantile=\"0.99\"} 100\n\
                        slo_turnaround_secs_count 10\n\
                        # EOF\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn slo_budget_events_become_counter_tracks() {
        let r = Recorder::new();
        r.event(
            10.0,
            "slo_budget",
            vec![("slo", JsonValue::from("queue_wait_p99")), ("remaining", JsonValue::from(0.75))],
        );
        let trace = perfetto_trace_from(&r);
        assert!(
            trace.contains(
                "{\"name\":\"slo_budget:queue_wait_p99\",\"cat\":\"slo\",\"ph\":\"C\",\
                 \"ts\":10000000,\"pid\":0,\"tid\":0,\"args\":{\"remaining\":0.75}}"
            ),
            "{trace}"
        );
    }

    #[test]
    fn collapsed_stacks_weight_self_time() {
        let r = sample_recorder();
        let folded = collapsed_stacks(&r.spans());
        // instance self time: 11s − 8s job = 3s; job self: 8s − 7s align = 1s.
        assert_eq!(
            folded,
            "campaign 1000000\n\
             campaign;instance 3000000\n\
             campaign;instance;job 1000000\n\
             campaign;instance;job;align 7000000\n"
        );
    }

    #[test]
    fn collapsed_stacks_tolerate_orphans() {
        let spans = vec![SpanRecord {
            id: 9,
            parent: 42, // never recorded
            name: "stage".into(),
            start_secs: 0.0,
            end_secs: Some(1.0),
            attrs: vec![],
        }];
        assert_eq!(collapsed_stacks(&spans), "stage 1000000\n");
    }
}
