//! Timestamped gauge series (migrated from `cloudsim::metrics`).
//!
//! A [`TimeSeries`] records `(time, value)` samples — fleet size, queue depth, busy
//! workers — and computes the summary statistics campaign reports quote:
//! time-weighted mean (the right mean for step functions sampled at irregular
//! ticks), peak, min, and the integral (e.g. instance-seconds). Timestamps are raw
//! simulated seconds so the series stays usable from any crate without a dependency
//! on `cloudsim`'s `SimTime`; `cloudsim` re-exports this type for compatibility.

use serde::{Deserialize, Serialize};

/// An append-only series of timestamped gauge samples.
///
/// Samples must be appended in non-decreasing time order; the value is treated as a
/// step function (it holds from its sample time until the next sample).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Append a sample at `at_secs` (simulated seconds). Panics on out-of-order
    /// timestamps (a simulation bug).
    pub fn record(&mut self, at_secs: f64, value: f64) {
        if let Some(&(prev, _)) = self.samples.last() {
            assert!(at_secs >= prev, "samples must be time-ordered: {at_secs} < {prev}");
        }
        self.samples.push((at_secs, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Largest sampled value (0 for an empty series).
    ///
    /// Folds from `-inf`, not `0.0`, so an all-negative series reports its true
    /// maximum instead of a phantom zero.
    pub fn peak(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest sampled value (0 for an empty series).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min)
    }

    /// Integral of the step function over `[first_sample, until_secs]` — e.g. a
    /// fleet-size series integrates to instance-seconds.
    pub fn integral_until(&self, until_secs: f64) -> f64 {
        let end = until_secs;
        let mut total = 0.0;
        for w in self.samples.windows(2) {
            let (t0, v0) = w[0];
            let t1 = w[1].0.min(end);
            if t1 > t0 {
                total += v0 * (t1 - t0);
            }
        }
        if let Some(&(t_last, v_last)) = self.samples.last() {
            if end > t_last {
                total += v_last * (end - t_last);
            }
        }
        total
    }

    /// Time-weighted mean over `[first_sample, until_secs]` (0 for empty/zero-length
    /// spans).
    pub fn time_weighted_mean(&self, until_secs: f64) -> f64 {
        let Some(&(t0, _)) = self.samples.first() else { return 0.0 };
        let span = until_secs - t0;
        if span <= 0.0 {
            return 0.0;
        }
        self.integral_until(until_secs) / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_function_integral() {
        let mut s = TimeSeries::new();
        s.record(0.0, 2.0); // 2 for 10s = 20
        s.record(10.0, 4.0); // 4 for 5s = 20
        s.record(15.0, 0.0); // 0 for 5s = 0
        assert!((s.integral_until(20.0) - 40.0).abs() < 1e-12);
        assert!((s.time_weighted_mean(20.0) - 2.0).abs() < 1e-12);
        assert_eq!(s.peak(), 4.0);
        assert_eq!(s.min(), 0.0);
    }

    #[test]
    fn integral_clamps_to_until() {
        let mut s = TimeSeries::new();
        s.record(0.0, 3.0);
        s.record(10.0, 5.0);
        // Until inside the first segment.
        assert!((s.integral_until(4.0) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn tail_extends_to_until() {
        let mut s = TimeSeries::new();
        s.record(5.0, 1.0);
        assert!((s.integral_until(15.0) - 10.0).abs() < 1e-12);
        assert!((s.time_weighted_mean(15.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_is_zero() {
        let s = TimeSeries::new();
        assert_eq!(s.integral_until(100.0), 0.0);
        assert_eq!(s.time_weighted_mean(100.0), 0.0);
        assert_eq!(s.peak(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn peak_and_min_handle_all_negative_series() {
        // Regression: `peak()` used to fold from 0.0 and report a phantom zero.
        let mut s = TimeSeries::new();
        s.record(0.0, -5.0);
        s.record(1.0, -2.0);
        s.record(2.0, -9.0);
        assert_eq!(s.peak(), -2.0);
        assert_eq!(s.min(), -9.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_samples_panic() {
        let mut s = TimeSeries::new();
        s.record(10.0, 1.0);
        s.record(5.0, 2.0);
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        // A step can change twice at one tick (scale-out then sample).
        let mut s = TimeSeries::new();
        s.record(1.0, 1.0);
        s.record(1.0, 3.0);
        s.record(2.0, 0.0);
        assert!((s.integral_until(2.0) - 3.0).abs() < 1e-12);
    }
}
