//! The telemetry sink shared across the stack.
//!
//! A [`Recorder`] is handed around as `Arc<Recorder>` (orchestrator → fault
//! injector → auto-scaling group → ...). All state sits behind one mutex; every
//! public method first checks the `enabled` flag, so a disabled recorder costs a
//! single branch — no lock, no allocation — which is the "cheap no-op path" the
//! hot simulator loop relies on.

use crate::events::EventRecord;
use crate::json::JsonValue;
use crate::metrics::MetricsRegistry;
use crate::span::{SpanId, SpanRecord};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A streaming subscriber to the telemetry feed (the live-monitor hook).
///
/// Observers are notified outside the recorder's state lock; records they fire
/// on are appended to the log after their trigger (observers read the stream,
/// never the log). Whatever events an observer returns — alert records, in
/// practice — are appended to the same event log (and counted in the
/// `alerts_fired` counter) but do **not** re-notify observers, so an observer
/// cannot trigger itself. Observers see the stream in the simulator's
/// deterministic emission order; a pure-function observer therefore produces the
/// same alerts on every same-seed run.
pub trait StreamObserver: Send {
    /// An event was appended to the log.
    fn on_event(&mut self, event: &EventRecord) -> Vec<EventRecord> {
        let _ = event;
        Vec::new()
    }

    /// A span was closed (first close only; retroactive `span_closed` included).
    fn on_span_close(&mut self, span: &SpanRecord) -> Vec<EventRecord> {
        let _ = span;
        Vec::new()
    }

    /// A gauge was set through [`Recorder::gauge_set_at`].
    fn on_gauge(&mut self, at_secs: f64, name: &str, value: f64) -> Vec<EventRecord> {
        let _ = (at_secs, name, value);
        Vec::new()
    }
}

#[derive(Debug, Default)]
struct Inner {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    metrics: MetricsRegistry,
}

/// Deterministic sim-time telemetry recorder.
pub struct Recorder {
    enabled: bool,
    inner: Mutex<Inner>,
    /// Separate lock so observer callbacks run outside the state lock (they may
    /// re-enter the recorder only through the returned alert records, which the
    /// notifier appends itself).
    observers: Mutex<Vec<Box<dyn StreamObserver>>>,
    /// Fast path: skip the observer lock entirely while nothing is attached.
    observed: AtomicBool,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .field("observed", &self.observed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An enabled recorder.
    pub fn new() -> Recorder {
        Recorder {
            enabled: true,
            inner: Mutex::new(Inner::default()),
            observers: Mutex::new(Vec::new()),
            observed: AtomicBool::new(false),
        }
    }

    /// A disabled recorder: every operation is a branch-and-return no-op, spans
    /// come back as [`SpanId::NONE`].
    pub fn disabled() -> Recorder {
        Recorder {
            enabled: false,
            inner: Mutex::new(Inner::default()),
            observers: Mutex::new(Vec::new()),
            observed: AtomicBool::new(false),
        }
    }

    /// Subscribe a streaming observer. No-op on a disabled recorder.
    pub fn attach_observer(&self, observer: Box<dyn StreamObserver>) {
        if !self.enabled {
            return;
        }
        self.observers.lock().expect("telemetry observers poisoned").push(observer);
        self.observed.store(true, Ordering::Release);
    }

    /// Run `notify` over every observer and append whatever events they return.
    /// Returned records bypass observer notification (no self-triggering). Only
    /// records of kind `alert` bump the `alerts_fired` counter — observers also
    /// emit informational records (`slo_budget`, `slo_clear`) that are not
    /// alerts.
    fn notify_observers(
        &self,
        notify: impl FnMut(&mut dyn StreamObserver) -> Vec<EventRecord>,
    ) {
        let alerts = self.collect_observer_records(notify);
        if alerts.is_empty() {
            return;
        }
        let mut inner = self.lock();
        Self::append_observer_records(&mut inner, alerts);
    }

    /// Run `notify` over every observer and collect whatever records they
    /// return, without touching the log. Empty (no allocation) when nothing is
    /// observing or nothing fired.
    fn collect_observer_records(
        &self,
        mut notify: impl FnMut(&mut dyn StreamObserver) -> Vec<EventRecord>,
    ) -> Vec<EventRecord> {
        if !self.observed.load(Ordering::Acquire) {
            return Vec::new();
        }
        let mut observers = self.observers.lock().expect("telemetry observers poisoned");
        let mut alerts: Vec<EventRecord> = Vec::new();
        for obs in observers.iter_mut() {
            alerts.extend(notify(obs.as_mut()));
        }
        alerts
    }

    /// Append observer-returned records to the log under an already-held inner
    /// lock. Bypasses observer notification (no self-triggering).
    fn append_observer_records(inner: &mut Inner, alerts: Vec<EventRecord>) {
        for alert in alerts {
            if alert.kind == "alert" {
                inner.metrics.counter_add("alerts_fired", 1);
            }
            inner.events.push(alert);
        }
    }

    /// True when this recorder captures anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("telemetry recorder poisoned")
    }

    /// Open a span at `at_secs`. `parent` may be [`SpanId::NONE`] for a root.
    pub fn span_start(&self, name: &str, parent: SpanId, at_secs: f64) -> SpanId {
        self.span_start_attrs(name, parent, at_secs, &[])
    }

    /// Open a span with attributes.
    pub fn span_start_attrs(
        &self,
        name: &str,
        parent: SpanId,
        at_secs: f64,
        attrs: &[(&str, String)],
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let mut inner = self.lock();
        let id = inner.spans.len() as u64 + 1;
        inner.spans.push(SpanRecord {
            id,
            parent: parent.0,
            name: name.to_string(),
            start_secs: at_secs,
            end_secs: None,
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        });
        SpanId(id)
    }

    /// Close span `id` at `at_secs`. No-op for [`SpanId::NONE`] or an already
    /// closed span; panics if `at_secs` precedes the span's start (a sim bug —
    /// spans must never have negative duration).
    pub fn span_end(&self, id: SpanId, at_secs: f64) {
        if !self.enabled || id.is_none() {
            return;
        }
        let observed = self.observed.load(Ordering::Acquire);
        let closed = {
            let mut inner = self.lock();
            let span = &mut inner.spans[(id.0 - 1) as usize];
            assert!(
                at_secs >= span.start_secs,
                "span '{}' would end at {at_secs} before its start {}",
                span.name,
                span.start_secs
            );
            if span.end_secs.is_none() {
                span.end_secs = Some(at_secs);
                // The clone exists only to hand observers a view outside the
                // recorder lock; skip it entirely on unobserved runs.
                observed.then(|| span.clone())
            } else {
                None
            }
        };
        if let Some(span) = closed {
            self.notify_observers(|obs| obs.on_span_close(&span));
        }
    }

    /// Record a span retroactively, already closed over `[start_secs, end_secs]`.
    /// This is how the orchestrator emits job/stage spans: a job's stage breakdown
    /// is only known when the job completes, so its spans are backdated then.
    pub fn span_closed(
        &self,
        name: &str,
        parent: SpanId,
        start_secs: f64,
        end_secs: f64,
        attrs: &[(&str, String)],
    ) -> SpanId {
        let id = self.span_start_attrs(name, parent, start_secs, attrs);
        self.span_end(id, end_secs);
        id
    }

    /// Append a structured event. Kind and field names are schema constants
    /// (literals at every call site), so the record is built without per-key
    /// allocations — progress streaming makes this the hottest telemetry path.
    pub fn event(&self, at_secs: f64, kind: &'static str, fields: Vec<(&'static str, JsonValue)>) {
        if !self.enabled {
            return;
        }
        let record = EventRecord { at_secs, kind, fields };
        // Observers see the record before it lands in the log (they read the
        // stream, not the log), and their alerts are appended after it — same
        // cause-before-effect log order as before, without deep-cloning every
        // record on the hot path.
        let fired = self.collect_observer_records(|obs| obs.on_event(&record));
        let mut inner = self.lock();
        inner.events.push(record);
        Self::append_observer_records(&mut inner, fired);
    }

    /// Add `n` to counter `name`.
    pub fn counter_add(&self, name: &str, n: u64) {
        if !self.enabled {
            return;
        }
        self.lock().metrics.counter_add(name, n);
    }

    /// Set gauge `name`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if !self.enabled {
            return;
        }
        self.lock().metrics.gauge_set(name, v);
    }

    /// Set gauge `name` at simulated time `at_secs`, feeding observers the sample
    /// (the registry itself keeps only the latest value, as with
    /// [`Recorder::gauge_set`] — the timestamp exists for streaming rules like
    /// rate-of-change over a window).
    pub fn gauge_set_at(&self, at_secs: f64, name: &str, v: f64) {
        if !self.enabled {
            return;
        }
        self.lock().metrics.gauge_set(name, v);
        self.notify_observers(|obs| obs.on_gauge(at_secs, name, v));
    }

    /// Record `v` into histogram `name` (created with `bounds` on first touch).
    pub fn observe(&self, name: &str, bounds: &[f64], v: f64) {
        if !self.enabled {
            return;
        }
        self.lock().metrics.observe(name, bounds, v);
    }

    /// Record `v` into quantile sketch `name` (created with relative error bound
    /// `alpha` on first touch).
    pub fn sketch_observe(&self, name: &str, alpha: f64, v: f64) {
        if !self.enabled {
            return;
        }
        self.lock().metrics.sketch_observe(name, alpha, v);
    }

    /// Snapshot of every span recorded so far (emission order).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// Number of spans recorded.
    pub fn n_spans(&self) -> usize {
        self.lock().spans.len()
    }

    /// Number of events recorded.
    pub fn n_events(&self) -> usize {
        self.lock().events.len()
    }

    /// Snapshot of every event recorded so far (emission order).
    pub fn events(&self) -> Vec<EventRecord> {
        self.lock().events.clone()
    }

    /// The whole event log as NDJSON (one line per event, trailing newline when
    /// non-empty). Byte-identical across same-seed runs.
    pub fn events_ndjson(&self) -> String {
        let inner = self.lock();
        let mut out = String::with_capacity(inner.events.len() * 96);
        for e in &inner.events {
            e.write_ndjson_into(&mut out);
            out.push('\n');
        }
        out
    }

    /// Snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsRegistry {
        self.lock().metrics.clone()
    }

    /// The metrics registry serialized to its stable JSON shape.
    pub fn metrics_json(&self) -> String {
        self.lock().metrics.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        let id = r.span_start("job", SpanId::NONE, 1.0);
        assert!(id.is_none());
        r.span_end(id, 2.0);
        r.event(1.0, "retry", vec![("op", JsonValue::from("s3_get"))]);
        r.counter_add("c", 1);
        r.observe("h", &[1.0], 0.5);
        assert_eq!(r.n_spans(), 0);
        assert_eq!(r.n_events(), 0);
        assert_eq!(r.events_ndjson(), "");
        assert!(!r.is_enabled());
    }

    #[test]
    fn spans_nest_and_close() {
        let r = Recorder::new();
        let root = r.span_start("campaign", SpanId::NONE, 0.0);
        let job = r.span_start_attrs("job", root, 1.0, &[("accession", "SRR1".to_string())]);
        r.span_end(job, 3.0);
        r.span_end(root, 4.0);
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, root.0);
        assert_eq!(spans[1].end_secs, Some(3.0));
        assert_eq!(spans[1].attr("accession"), Some("SRR1"));
    }

    #[test]
    fn double_close_keeps_first_end() {
        let r = Recorder::new();
        let s = r.span_start("instance", SpanId::NONE, 0.0);
        r.span_end(s, 5.0);
        r.span_end(s, 9.0);
        assert_eq!(r.spans()[0].end_secs, Some(5.0));
    }

    #[test]
    #[should_panic(expected = "before its start")]
    fn negative_duration_panics() {
        let r = Recorder::new();
        let s = r.span_start("job", SpanId::NONE, 10.0);
        r.span_end(s, 9.0);
    }

    /// Echoes every notification as an `alert` event naming what it saw.
    struct Echo;
    impl StreamObserver for Echo {
        fn on_event(&mut self, event: &EventRecord) -> Vec<EventRecord> {
            vec![EventRecord {
                at_secs: event.at_secs,
                kind: "alert".into(),
                fields: vec![("saw", JsonValue::from(event.kind))],
            }]
        }
        fn on_span_close(&mut self, span: &SpanRecord) -> Vec<EventRecord> {
            vec![EventRecord {
                at_secs: span.end_secs.unwrap_or(span.start_secs),
                kind: "alert".into(),
                fields: vec![("saw".into(), JsonValue::from(span.name.as_str()))],
            }]
        }
        fn on_gauge(&mut self, at_secs: f64, name: &str, value: f64) -> Vec<EventRecord> {
            vec![EventRecord {
                at_secs,
                kind: "alert".into(),
                fields: vec![
                    ("saw".into(), JsonValue::from(name)),
                    ("value".into(), JsonValue::from(value)),
                ],
            }]
        }
    }

    #[test]
    fn observers_see_the_stream_and_their_alerts_join_the_log() {
        let r = Recorder::new();
        r.attach_observer(Box::new(Echo));
        r.event(1.0, "retry", vec![]);
        let s = r.span_start("job", SpanId::NONE, 2.0);
        r.span_end(s, 3.0);
        r.span_end(s, 4.0); // double close: no second notification
        r.gauge_set_at(5.0, "queue_pending", 7.0);
        r.gauge_set("fleet_active", 2.0); // untimestamped path: no notification
        let log = r.events_ndjson();
        assert_eq!(
            log,
            "{\"t\":1,\"kind\":\"retry\"}\n\
             {\"t\":1,\"kind\":\"alert\",\"saw\":\"retry\"}\n\
             {\"t\":3,\"kind\":\"alert\",\"saw\":\"job\"}\n\
             {\"t\":5,\"kind\":\"alert\",\"saw\":\"queue_pending\",\"value\":7}\n"
        );
        assert_eq!(r.metrics().counter("alerts_fired"), 3);
    }

    #[test]
    fn observers_on_disabled_recorder_never_fire() {
        let r = Recorder::disabled();
        r.attach_observer(Box::new(Echo));
        r.event(1.0, "retry", vec![]);
        r.gauge_set_at(2.0, "g", 1.0);
        assert_eq!(r.n_events(), 0);
    }

    #[test]
    fn event_log_is_ndjson_in_emission_order() {
        let r = Recorder::new();
        r.event(1.0, "a", vec![]);
        r.event(2.0, "b", vec![("k", JsonValue::from(3u64))]);
        assert_eq!(r.events_ndjson(), "{\"t\":1,\"kind\":\"a\"}\n{\"t\":2,\"kind\":\"b\",\"k\":3}\n");
    }
}
