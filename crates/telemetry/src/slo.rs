//! Declarative service-level objectives with Google-SRE-style multi-window
//! error-budget burn-rate alerting.
//!
//! An [`Slo`] states "fraction `target` of samples of `signal` must be good",
//! where a sample is *good* iff its value is `<= threshold` — e.g.
//! "95 % of accession turnarounds ≤ 2 h", "99 % of queue waits ≤ 10 min",
//! "99 % of accessions cost ≤ $0.05". The error budget is the allowed bad
//! fraction `1 - target`; the **burn rate** over a window is
//! `(bad fraction in window) / (1 - target)` — burn 1.0 exhausts the budget
//! exactly at the objective horizon, burn 14.4 exhausts a 30-day budget in
//! 2 days (the classic SRE fast-burn page).
//!
//! Each [`BurnRateRule`] pairs a *long* window (evidence the burn is real) with a
//! *short* window (evidence it is still happening): the alert fires only when
//! both windows burn at `>= factor`, and clears when the short window drops back
//! below — firing/clearing hysteresis, so a sustained violation produces one
//! `slo_burn` alert plus one `slo_clear` event, not a flood. Evaluation happens
//! live inside [`crate::Monitor`] via the same [`crate::StreamObserver`] hook as
//! the alert rules, so burn alerts land in the NDJSON event log in stream order
//! with a detection-latency field, and integer-percent changes of the remaining
//! budget are emitted as `slo_budget` events (rendered as Perfetto counter
//! tracks).
//!
//! Everything here is a pure function of the (deterministic) sample stream: no
//! wall clock, no randomness — same seed, same alerts, same bytes.

use crate::events::EventRecord;
use crate::json::JsonValue;
use crate::monitor::AlertEvent;
use std::collections::VecDeque;

/// Rule id stamped into burn-rate [`AlertEvent`]s.
pub const BURN_ALERT_RULE: &str = "slo_burn";

/// Which campaign signal an objective constrains.
///
/// All three are per-accession scalars sampled exactly once per accession by the
/// monitor, in deterministic stream order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloSignal {
    /// Seconds from campaign start (batch submission) to the accession's first
    /// successful completion.
    AccessionTurnaround,
    /// Seconds the accession's message waited in SQS before first delivery.
    QueueWait,
    /// Dollar cost of the accession's completing attempt
    /// (`duration × hourly rate / 3600`).
    AccessionCost,
}

impl SloSignal {
    /// The registry sketch fed by this signal (the engine streams the same
    /// samples into a [`crate::sketch::QuantileSketch`] under this name).
    pub fn sketch_name(self) -> &'static str {
        match self {
            SloSignal::AccessionTurnaround => "slo_turnaround_secs",
            SloSignal::QueueWait => "slo_queue_wait_secs",
            SloSignal::AccessionCost => "slo_cost_per_accession_usd",
        }
    }
}

/// One multi-window burn-rate alerting rule (long window confirms, short window
/// says "still happening").
#[derive(Clone, Debug)]
pub struct BurnRateRule {
    /// Long-window length, simulated seconds.
    pub long_secs: f64,
    /// Short-window length, simulated seconds (must be < `long_secs`).
    pub short_secs: f64,
    /// Fires when both windows burn at `>= factor` budgets-per-horizon.
    pub factor: f64,
    /// Minimum samples inside the long window before the rule arms.
    pub min_count: usize,
}

impl BurnRateRule {
    /// Fast burn: 1 h / 5 m windows at 14.4× — the "page now" rule.
    pub fn fast() -> BurnRateRule {
        BurnRateRule { long_secs: 3600.0, short_secs: 300.0, factor: 14.4, min_count: 10 }
    }

    /// Slow burn: 6 h / 30 m windows at 6× — the "budget is leaking" rule.
    pub fn slow() -> BurnRateRule {
        BurnRateRule { long_secs: 21_600.0, short_secs: 1_800.0, factor: 6.0, min_count: 20 }
    }
}

/// One declarative objective: `target` fraction of `signal` samples must be
/// `<= threshold`.
#[derive(Clone, Debug)]
pub struct Slo {
    /// Objective id, stamped into alerts, budget events, gauges, and the report.
    pub id: String,
    /// The constrained signal.
    pub signal: SloSignal,
    /// Good-sample bound: a sample is good iff `value <= threshold`.
    pub threshold: f64,
    /// Required good fraction, in `(0, 1)` (0.95 + a turnaround threshold
    /// encodes "turnaround p95 ≤ T").
    pub target: f64,
    /// Burn-rate alerting rules, evaluated independently per sample.
    pub windows: Vec<BurnRateRule>,
}

/// The set of objectives a campaign is evaluated against.
#[derive(Clone, Debug, Default)]
pub struct SloRegistry {
    /// Objectives, evaluated in order against every sample.
    pub slos: Vec<Slo>,
    /// Hourly instance price used to turn job durations into
    /// [`SloSignal::AccessionCost`] samples. The campaign engine injects the
    /// configured instance's rate here before attaching the monitor.
    pub cost_usd_per_hour: f64,
}

impl SloRegistry {
    /// The stock objective set: turnaround p95, queue-wait p99, and a
    /// cost-per-accession cap, each with the fast+slow SRE burn rules.
    pub fn standard(
        turnaround_p95_secs: f64,
        queue_wait_p99_secs: f64,
        cost_cap_usd: f64,
    ) -> SloRegistry {
        SloRegistry {
            slos: vec![
                Slo {
                    id: "accession_turnaround_p95".into(),
                    signal: SloSignal::AccessionTurnaround,
                    threshold: turnaround_p95_secs,
                    target: 0.95,
                    windows: vec![BurnRateRule::fast(), BurnRateRule::slow()],
                },
                Slo {
                    id: "queue_wait_p99".into(),
                    signal: SloSignal::QueueWait,
                    threshold: queue_wait_p99_secs,
                    target: 0.99,
                    windows: vec![BurnRateRule::fast(), BurnRateRule::slow()],
                },
                Slo {
                    id: "cost_per_accession".into(),
                    signal: SloSignal::AccessionCost,
                    threshold: cost_cap_usd,
                    target: 0.99,
                    windows: vec![BurnRateRule::fast(), BurnRateRule::slow()],
                },
            ],
            cost_usd_per_hour: 0.0,
        }
    }

    /// Structural validation (unique non-empty ids, targets in `(0, 1)`, finite
    /// non-negative thresholds, short < long per window).
    pub fn validate(&self) -> Result<(), String> {
        let mut ids = std::collections::BTreeSet::new();
        for slo in &self.slos {
            if slo.id.is_empty() {
                return Err("slo id must be non-empty".into());
            }
            if !ids.insert(slo.id.as_str()) {
                return Err(format!("duplicate slo id {:?}", slo.id));
            }
            if !(slo.target > 0.0 && slo.target < 1.0) {
                return Err(format!("slo {:?}: target must be in (0, 1), got {}", slo.id, slo.target));
            }
            if !(slo.threshold.is_finite() && slo.threshold >= 0.0) {
                return Err(format!(
                    "slo {:?}: threshold must be finite and >= 0, got {}",
                    slo.id, slo.threshold
                ));
            }
            for w in &slo.windows {
                if !(w.short_secs > 0.0 && w.short_secs < w.long_secs) {
                    return Err(format!(
                        "slo {:?}: window must have 0 < short ({}) < long ({})",
                        slo.id, w.short_secs, w.long_secs
                    ));
                }
                if !(w.factor > 0.0 && w.factor.is_finite()) {
                    return Err(format!("slo {:?}: burn factor must be finite and > 0", slo.id));
                }
            }
        }
        Ok(())
    }
}

/// Opt-in SLO engine configuration carried by the campaign config.
#[derive(Clone, Debug)]
pub struct SloConfig {
    /// The objectives to evaluate.
    pub registry: SloRegistry,
    /// Relative error bound for the per-signal quantile sketches the engine
    /// streams samples into.
    pub sketch_alpha: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig { registry: SloRegistry::default(), sketch_alpha: 0.01 }
    }
}

/// End-of-campaign summary of one objective.
#[derive(Clone, Debug, PartialEq)]
pub struct SloStatus {
    /// Objective id.
    pub id: String,
    /// Required good fraction.
    pub target: f64,
    /// Good-sample bound.
    pub threshold: f64,
    /// Samples observed.
    pub total: u64,
    /// Samples over threshold.
    pub bad: u64,
    /// Achieved good fraction (1.0 when no samples arrived).
    pub attained: f64,
    /// Remaining error budget: `1 - (bad/total)/(1-target)`. 1.0 when untouched,
    /// 0.0 when exactly spent, negative when overspent.
    pub budget_remaining: f64,
    /// Burn-rate alerts fired across all windows.
    pub burn_alerts: u64,
}

/// Streaming evaluator state for one [`Slo`].
#[derive(Clone, Debug)]
pub struct SloState {
    /// `(t, was_bad)` samples inside the longest configured window.
    samples: VecDeque<(f64, bool)>,
    /// Cumulative sample count.
    total: u64,
    /// Cumulative bad count.
    bad: u64,
    /// Per-window hysteresis: currently firing?
    firing: Vec<bool>,
    /// Burn alerts fired so far.
    fired: u64,
    /// Last emitted integer percent of remaining budget.
    last_budget_pct: Option<i64>,
}

impl SloState {
    /// Fresh state for an objective with `slo.windows.len()` rules.
    pub fn new(slo: &Slo) -> SloState {
        SloState {
            samples: VecDeque::new(),
            total: 0,
            bad: 0,
            firing: vec![false; slo.windows.len()],
            fired: 0,
            last_budget_pct: None,
        }
    }

    /// Feed one sample at simulated time `t`. Returns burn alerts that fired
    /// plus `slo_clear`/`slo_budget` events to append to the log, in emission
    /// order (alerts, clears, budget).
    pub fn sample(&mut self, slo: &Slo, t: f64, value: f64) -> (Vec<AlertEvent>, Vec<EventRecord>) {
        let is_bad = value > slo.threshold;
        self.total += 1;
        self.bad += u64::from(is_bad);
        self.samples.push_back((t, is_bad));
        let horizon = slo.windows.iter().map(|w| w.long_secs).fold(0.0, f64::max);
        while self.samples.front().is_some_and(|&(t0, _)| t0 < t - horizon) {
            self.samples.pop_front();
        }

        let budget_per_sample = 1.0 - slo.target;
        let mut alerts = Vec::new();
        let mut extra = Vec::new();
        for (i, w) in slo.windows.iter().enumerate() {
            let mut long = (0u64, 0u64); // (total, bad)
            let mut short = (0u64, 0u64);
            let mut first_bad_short: Option<f64> = None;
            for &(ts, b) in &self.samples {
                if ts >= t - w.long_secs {
                    long.0 += 1;
                    long.1 += u64::from(b);
                }
                if ts >= t - w.short_secs {
                    short.0 += 1;
                    short.1 += u64::from(b);
                    if b && first_bad_short.is_none() {
                        first_bad_short = Some(ts);
                    }
                }
            }
            let burn = |(n, b): (u64, u64)| {
                if n == 0 {
                    0.0
                } else {
                    (b as f64 / n as f64) / budget_per_sample
                }
            };
            let (burn_long, burn_short) = (burn(long), burn(short));
            if !self.firing[i] {
                if long.0 >= w.min_count as u64 && burn_long >= w.factor && burn_short >= w.factor {
                    self.firing[i] = true;
                    self.fired += 1;
                    alerts.push(AlertEvent {
                        rule: BURN_ALERT_RULE.into(),
                        subject: format!("{}:{}s", slo.id, w.long_secs),
                        at_secs: t,
                        value: burn_short,
                        threshold: w.factor,
                        latency_secs: first_bad_short.map_or(0.0, |t0| t - t0),
                    });
                }
            } else if burn_short < w.factor {
                self.firing[i] = false;
                extra.push(EventRecord {
                    at_secs: t,
                    kind: "slo_clear",
                    fields: vec![
                        ("slo", JsonValue::from(slo.id.as_str())),
                        ("window_secs", JsonValue::from(w.long_secs)),
                        ("burn", JsonValue::from(burn_short)),
                    ],
                });
            }
        }

        let remaining = self.budget_remaining(slo);
        let pct = (remaining * 100.0).floor() as i64;
        if self.last_budget_pct != Some(pct) {
            self.last_budget_pct = Some(pct);
            extra.push(EventRecord {
                at_secs: t,
                kind: "slo_budget",
                fields: vec![
                    ("slo", JsonValue::from(slo.id.as_str())),
                    ("remaining", JsonValue::from(remaining)),
                ],
            });
        }
        (alerts, extra)
    }

    /// Remaining error budget (see [`SloStatus::budget_remaining`]).
    pub fn budget_remaining(&self, slo: &Slo) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        1.0 - (self.bad as f64 / self.total as f64) / (1.0 - slo.target)
    }

    /// End-of-stream summary.
    pub fn status(&self, slo: &Slo) -> SloStatus {
        SloStatus {
            id: slo.id.clone(),
            target: slo.target,
            threshold: slo.threshold,
            total: self.total,
            bad: self.bad,
            attained: if self.total == 0 {
                1.0
            } else {
                (self.total - self.bad) as f64 / self.total as f64
            },
            budget_remaining: self.budget_remaining(slo),
            burn_alerts: self.fired,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo(threshold: f64, target: f64, w: BurnRateRule) -> Slo {
        Slo {
            id: "turnaround".into(),
            signal: SloSignal::AccessionTurnaround,
            threshold,
            target,
            windows: vec![w],
        }
    }

    #[test]
    fn burn_fires_when_both_windows_exceed_factor_and_clears() {
        // target 0.9 → budget 0.1; all-bad traffic burns at 10×.
        let s = slo(1.0, 0.9, BurnRateRule {
            long_secs: 100.0,
            short_secs: 10.0,
            factor: 5.0,
            min_count: 3,
        });
        let mut st = SloState::new(&s);
        let mut alerts = Vec::new();
        let mut clears = 0;
        for i in 0..6 {
            let (a, e) = st.sample(&s, i as f64, 2.0); // every sample bad
            alerts.extend(a);
            clears += e.iter().filter(|r| r.kind == "slo_clear").count();
        }
        assert_eq!(alerts.len(), 1, "hysteresis: one alert for a sustained burn");
        assert_eq!(alerts[0].rule, BURN_ALERT_RULE);
        assert_eq!(alerts[0].subject, "turnaround:100s");
        assert_eq!(alerts[0].at_secs, 2.0, "arms at min_count=3");
        assert!((alerts[0].value - 10.0).abs() < 1e-9, "{}", alerts[0].value);
        assert_eq!(alerts[0].latency_secs, 2.0, "bad since t=0");
        assert_eq!(clears, 0);
        // Recovery: good samples push the short window below the factor.
        let mut cleared = 0;
        for i in 6..30 {
            let (a, e) = st.sample(&s, i as f64, 0.5);
            assert!(a.is_empty());
            cleared += e.iter().filter(|r| r.kind == "slo_clear").count();
        }
        assert_eq!(cleared, 1, "one clear once the short window recovers");
    }

    #[test]
    fn healthy_traffic_never_alerts_and_keeps_full_budget() {
        let s = slo(10.0, 0.95, BurnRateRule {
            long_secs: 50.0,
            short_secs: 5.0,
            factor: 2.0,
            min_count: 1,
        });
        let mut st = SloState::new(&s);
        for i in 0..50 {
            let (a, _) = st.sample(&s, i as f64, 1.0);
            assert!(a.is_empty());
        }
        let status = st.status(&s);
        assert_eq!(status.bad, 0);
        assert_eq!(status.attained, 1.0);
        assert_eq!(status.budget_remaining, 1.0);
        assert_eq!(status.burn_alerts, 0);
    }

    #[test]
    fn budget_events_fire_on_integer_percent_changes_only() {
        let s = slo(1.0, 0.5, BurnRateRule {
            long_secs: 1e9,
            short_secs: 1.0,
            factor: 1e9, // never fires
            min_count: 1,
        });
        let mut st = SloState::new(&s);
        let mut budgets = Vec::new();
        // Alternate good/bad: budget stays at 1 - (bad/total)/0.5.
        for i in 0..8 {
            let v = if i % 2 == 0 { 2.0 } else { 0.5 };
            let (_, e) = st.sample(&s, i as f64, v);
            budgets.extend(e.into_iter().filter(|r| r.kind == "slo_budget"));
        }
        // t=0: 1-(1/1)/0.5 = -1.0 → -100 %; t=1: 1-(1/2)/0.5 = 0.0 → 0 %;
        // t=2: 1-(2/3)/0.5 ≈ -0.333 → -34 %; ... every step changes the percent.
        assert!(!budgets.is_empty());
        let status = st.status(&s);
        assert_eq!(status.total, 8);
        assert_eq!(status.bad, 4);
        assert_eq!(status.budget_remaining, 0.0, "budget exactly spent at target 0.5");
    }

    #[test]
    fn empty_state_reports_full_budget() {
        let s = slo(1.0, 0.99, BurnRateRule::fast());
        let st = SloState::new(&s);
        let status = st.status(&s);
        assert_eq!(status.total, 0);
        assert_eq!(status.attained, 1.0);
        assert_eq!(status.budget_remaining, 1.0);
    }

    #[test]
    fn registry_validation_catches_bad_shapes() {
        let mut r = SloRegistry::standard(7200.0, 600.0, 0.05);
        assert!(r.validate().is_ok());
        r.slos[0].target = 1.0;
        assert!(r.validate().unwrap_err().contains("target"));
        let mut r = SloRegistry::standard(7200.0, 600.0, 0.05);
        r.slos[1].windows[0].short_secs = r.slos[1].windows[0].long_secs;
        assert!(r.validate().unwrap_err().contains("short"));
        let mut r = SloRegistry::standard(7200.0, 600.0, 0.05);
        r.slos[2].id = r.slos[0].id.clone();
        assert!(r.validate().unwrap_err().contains("duplicate"));
    }
}
