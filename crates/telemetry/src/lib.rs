//! Deterministic sim-time telemetry for the atlas simulator.
//!
//! The paper's headline numbers (the >12× release speedup of Fig. 3, the 19.5 %
//! compute saved by early stopping in Fig. 4) are *measurement* results: they exist
//! because per-stage wall clock and STAR's `Log.progress.out` were observable. This
//! crate is the reproduction's measurement layer:
//!
//! * [`Recorder`] — the shared sink. Hierarchical [`span::SpanRecord`] spans
//!   (campaign → instance → job → stage → align sub-stage), a
//!   [`metrics::MetricsRegistry`] of counters/gauges/fixed-bucket histograms, and a
//!   structured NDJSON event log. A disabled recorder is a cheap no-op (one branch,
//!   no lock).
//! * [`report::CampaignTelemetry`] — the analysis pass: per-stage p50/p95/p99,
//!   a critical-path extractor over the span tree (which stage dominates each
//!   accession, fleet-level utilization breakdown), rendered into campaign reports.
//! * [`export`] — standard-format exporters: Chrome/Perfetto trace-event JSON
//!   for the span tree, OpenMetrics text for the registry, collapsed-stack
//!   (flamegraph) folds of the span tree.
//! * [`monitor::Monitor`] — the live campaign monitor: declarative alert rules
//!   (threshold, rate-of-change, quantile-vs-fleet) evaluated against the stream
//!   *during* the simulated campaign via [`recorder::StreamObserver`], emitting
//!   `alert` events into the same log.
//! * [`series::TimeSeries`] — timestamped gauge series (the one metrics surface;
//!   `cloudsim` uses it directly).
//!
//! **Determinism contract.** All timestamps are *simulated* seconds — nothing in
//! this crate reads a wall clock, and the vendored `serde` shim is a no-op, so all
//! JSON is hand-rolled via [`json::JsonValue`] with a stable field order. Given a
//! fixed campaign seed, the serialized event log and every histogram quantile are
//! byte-identical across runs (`tests/tests/telemetry.rs` proves it).

pub mod diff;
pub mod events;
pub mod export;
pub mod json;
pub mod metrics;
pub mod monitor;
pub mod query;
pub mod recorder;
pub mod report;
pub mod series;
pub mod sketch;
pub mod slo;
pub mod span;

pub use diff::{diff, DiffEntry, DiffReport, DiffSection, RunProfile};
pub use events::EventRecord;
pub use export::{collapsed_stacks, openmetrics, openmetrics_from, perfetto_trace, perfetto_trace_from};
pub use json::JsonValue;
pub use metrics::{Histogram, MetricsRegistry, RATE_BUCKETS, SECS_BUCKETS};
pub use monitor::{AlertEvent, AlertRule, Cmp, Condition, Guard, Monitor, MonitorConfig, Signal};
pub use query::{Agg, Query, QueryResult};
pub use recorder::{Recorder, StreamObserver};
pub use report::{summarize, AccessionPath, CampaignTelemetry, CriticalPath, StageStats};
pub use series::TimeSeries;
pub use sketch::QuantileSketch;
pub use slo::{BurnRateRule, Slo, SloConfig, SloRegistry, SloSignal, SloStatus};
pub use span::{SpanId, SpanRecord};

/// Version stamped into every serialized telemetry document. Bump it (and the
/// golden under `golden/telemetry_schema.json`) when the schema changes shape.
/// v2: `alert` events, Perfetto/OpenMetrics export shapes.
/// v3: quantile sketches in the metrics registry, `slo_burn` alerts,
/// `slo_budget`/`slo_clear` events, OpenMetrics summary lines, Perfetto counter
/// tracks for budget gauges.
/// v4: graceful-spot-degradation events (`spot_notice`, `drain`, `checkpoint`,
/// `checkpoint_failed`, `resume`), the `interruption_storm` alert rule, and the
/// recovery-only `slo_ledger_salvaged_secs`/`slo_ledger_lost_secs` gauges.
pub const SCHEMA_VERSION: u32 = 4;

/// The stable JSON schema of everything this crate serializes, as a JSON document.
///
/// CI pins this against `golden/telemetry_schema.json`: drifting the shape of the
/// event log, span dump, metrics registry, or campaign summary without consciously
/// updating the golden fails the build.
pub fn schema_json() -> String {
    use json::JsonValue as J;
    let field = |name: &str, ty: &str| (name.to_string(), J::from(ty));
    let obj = |fields: Vec<(String, J)>| J::Obj(fields);
    let schema = obj(vec![
        ("schema_version".into(), J::from(u64::from(SCHEMA_VERSION))),
        (
            "event".into(),
            obj(vec![
                field("t", "f64 — simulated seconds since campaign start"),
                field("kind", "string — event kind, snake_case"),
                field("...", "kind-specific fields, stable order per kind"),
            ]),
        ),
        (
            "alert_event".into(),
            obj(vec![
                field("t", "f64 — simulated seconds the rule fired"),
                field("kind", "\"alert\""),
                field("rule", "string — AlertRule id, snake_case"),
                field("subject", "string — instance id, accession, or signal name"),
                field("value", "f64 — signal value at firing"),
                field("threshold", "f64 — the bound it crossed"),
                field("latency_secs", "f64 — condition onset -> detection"),
            ]),
        ),
        (
            "span".into(),
            obj(vec![
                field("id", "u64 — 1-based, in emission order"),
                field("parent", "u64 — parent span id, 0 for roots"),
                field("name", "string — campaign|instance|job|<stage>|align/<phase>"),
                field("start", "f64 — simulated seconds"),
                field("end", "f64|null — simulated seconds, >= start"),
                field("attrs", "object — string-valued attributes, stable order"),
            ]),
        ),
        (
            "metrics".into(),
            obj(vec![
                field("counters", "object — name -> u64, names sorted"),
                field("gauges", "object — name -> f64, names sorted"),
                (
                    "histograms".into(),
                    obj(vec![
                        field("bounds", "array of f64 — inclusive upper bounds"),
                        field("counts", "array of u64 — len(bounds)+1, last is overflow"),
                        field("count", "u64"),
                        field("sum", "f64"),
                        field("min", "f64"),
                        field("max", "f64"),
                    ]),
                ),
                (
                    "sketches".into(),
                    obj(vec![
                        field("alpha", "f64 — relative error bound, fixed at creation"),
                        field("count", "u64"),
                        field("zero_count", "u64 — observations below 1e-9"),
                        field(
                            "buckets",
                            "object — log-bucket key (ceil(ln v / ln γ)) -> u64 count, \
                             keys sorted numerically; pure function of the observation \
                             multiset (merge = pointwise add)",
                        ),
                        field("min", "f64"),
                        field("max", "f64"),
                    ]),
                ),
            ]),
        ),
        (
            "slo_events".into(),
            obj(vec![
                field(
                    "slo_burn",
                    "alert_event with rule \"slo_burn\", subject \"<slo id>:<long window>s\", \
                     value = short-window burn rate, threshold = burn factor",
                ),
                (
                    "slo_budget".into(),
                    obj(vec![
                        field("t", "f64"),
                        field("kind", "\"slo_budget\""),
                        field("slo", "string — objective id"),
                        field(
                            "remaining",
                            "f64 — error budget left: 1 - (bad/total)/(1-target); emitted \
                             on integer-percent changes, rendered as a Perfetto counter track",
                        ),
                    ]),
                ),
                (
                    "slo_clear".into(),
                    obj(vec![
                        field("t", "f64"),
                        field("kind", "\"slo_clear\""),
                        field("slo", "string — objective id"),
                        field("window_secs", "f64 — long window of the clearing rule"),
                        field("burn", "f64 — short-window burn at clearing"),
                    ]),
                ),
            ]),
        ),
        (
            "recovery_events".into(),
            obj(vec![
                (
                    "spot_notice".into(),
                    obj(vec![
                        field("t", "f64"),
                        field("kind", "\"spot_notice\""),
                        field("instance", "u64"),
                        field("source", "\"market\"|\"burst\" — which reclaim pipeline"),
                        field("lead_secs", "f64 — notice -> reclaim lead time"),
                    ]),
                ),
                (
                    "drain".into(),
                    obj(vec![
                        field("t", "f64"),
                        field("kind", "\"drain\""),
                        field("instance", "u64"),
                        field("accession", "string — only when a job was in flight"),
                        field("handed_back", "bool — message visibility reset to 0"),
                        field(
                            "checkpointed_secs",
                            "f64 — align progress persisted, only when a checkpoint \
                             was written",
                        ),
                    ]),
                ),
                (
                    "checkpoint".into(),
                    obj(vec![
                        field("t", "f64"),
                        field("kind", "\"checkpoint\""),
                        field("accession", "string"),
                        field("instance", "u64"),
                        field("offset_secs", "f64 — cumulative align seconds stored"),
                    ]),
                ),
                (
                    "checkpoint_failed".into(),
                    obj(vec![
                        field("t", "f64"),
                        field("kind", "\"checkpoint_failed\""),
                        field("accession", "string"),
                        field("instance", "u64"),
                    ]),
                ),
                (
                    "resume".into(),
                    obj(vec![
                        field("t", "f64"),
                        field("kind", "\"resume\""),
                        field("accession", "string"),
                        field("instance", "u64"),
                        field("skipped_secs", "f64 — align seconds not redone"),
                    ]),
                ),
            ]),
        ),
        (
            "perfetto_trace".into(),
            obj(vec![
                field(
                    "traceEvents",
                    "array — process_name metadata (ph M), complete spans (ph X, \
                     ts/dur integer micros, pid = instance, tid = worker, attrs in \
                     args), event-log instants (ph i)",
                ),
                field("displayTimeUnit", "\"ms\""),
            ]),
        ),
        (
            "openmetrics".into(),
            obj(vec![
                field("counters", "`# TYPE <name> counter` + `<name>_total <v>`"),
                field("gauges", "`# TYPE <name> gauge` + `<name> <v>`"),
                field(
                    "histograms",
                    "cumulative `<name>_bucket{le=\"...\"}` lines, `+Inf`, `_sum`, \
                     `_count`",
                ),
                field(
                    "summaries",
                    "per sketch: `# TYPE <name> summary` + `<name>{quantile=\"0.5|0.9|\
                     0.95|0.99\"}` lines + `<name>_count` (sketches carry no sum); \
                     terminated by `# EOF`",
                ),
            ]),
        ),
        (
            "campaign_telemetry".into(),
            obj(vec![
                field("schema_version", "u32"),
                field("n_spans", "u64"),
                field("n_events", "u64"),
                (
                    "stages".into(),
                    obj(vec![
                        field("stage", "string"),
                        field("count", "u64 — completed jobs contributing"),
                        field("total_secs", "f64"),
                        field("p50", "f64"),
                        field("p95", "f64"),
                        field("p99", "f64"),
                    ]),
                ),
                (
                    "critical_path".into(),
                    obj(vec![
                        field("dominant_stage", "string — stage with largest total"),
                        field("dominant_accessions", "u64 — accessions it dominates"),
                        field("fleet_busy_secs", "f64 — sum of job span durations"),
                        field("fleet_uptime_secs", "f64 — sum of instance span durations"),
                        field("stage_share", "object — stage -> fraction of stage time"),
                        (
                            "per_accession".into(),
                            obj(vec![
                                field("accession", "string"),
                                field("total_secs", "f64"),
                                field("dominant_stage", "string"),
                                field("dominant_secs", "f64"),
                            ]),
                        ),
                    ]),
                ),
                field("metrics", "object — see `metrics`"),
            ]),
        ),
    ]);
    let mut out = schema.render();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CI gate: the serialized schema must match the committed golden byte for
    /// byte. To change the schema deliberately, rerun with `UPDATE_GOLDEN=1` to
    /// rewrite the golden, then commit the diff.
    #[test]
    fn schema_matches_golden() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/telemetry_schema.json");
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(path, schema_json()).expect("rewrite golden");
        }
        let golden = std::fs::read_to_string(path).expect("read golden");
        assert_eq!(
            schema_json(),
            golden,
            "telemetry JSON schema drifted from golden/telemetry_schema.json; \
             rerun with UPDATE_GOLDEN=1 if the change is intended"
        );
    }
}
