//! Live campaign monitor: declarative alert rules evaluated over the streaming
//! telemetry feed *while the simulated campaign runs*.
//!
//! The paper's Fig. 4 saving exists because STAR's `Log.progress.out` is watched
//! mid-job rather than post-mortem; this module generalizes that idea to the whole
//! campaign. A [`Monitor`] subscribes to a [`Recorder`](crate::Recorder) through
//! the [`StreamObserver`] hook and evaluates [`AlertRule`]s against events, gauge
//! samples, and closing spans as the simulator emits them. Fired [`AlertEvent`]s
//! are appended to the same NDJSON event log (kind `alert`) with a
//! `latency_secs` field — how long the anomalous condition existed before the
//! rule flagged it — so alert timeliness is itself measurable.
//!
//! Three rule families cover the stock alerts:
//!
//! * **threshold** — a scalar signal crossed a fixed bound (an accession's
//!   mapping rate fell below the early-stop floor; a windowed event count
//!   reached burst size);
//! * **rate-of-change** — a gauge's growth rate over a sliding window crossed a
//!   bound (SQS backlog growing instead of draining);
//! * **quantile-vs-fleet** — one subject's quantile diverged from the fleet's
//!   (an instance whose job p99 exceeds a multiple of the fleet median —
//!   a straggler).
//!
//! The monitor is a pure function of the (deterministic) stream: same seed, same
//! alerts, same bytes. Alerts dedup per `(rule, subject)` under a cooldown so a
//! sustained condition cannot flood the log.

use crate::events::EventRecord;
use crate::json::JsonValue;
use crate::recorder::StreamObserver;
use crate::slo::{Slo, SloRegistry, SloSignal, SloState, SloStatus};
use crate::span::SpanRecord;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Mutex};

/// Comparison direction for thresholds and rates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// Fires when the signal is strictly greater than the bound.
    Gt,
    /// Fires when the signal is greater than or equal to the bound.
    Ge,
    /// Fires when the signal is strictly less than the bound.
    Lt,
}

impl Cmp {
    fn holds(self, value: f64, bound: f64) -> bool {
        match self {
            Cmp::Gt => value > bound,
            Cmp::Ge => value >= bound,
            Cmp::Lt => value < bound,
        }
    }
}

/// What a rule listens to on the stream.
#[derive(Clone, Debug)]
pub enum Signal {
    /// Samples of a named gauge (via `Recorder::gauge_set_at`).
    Gauge(String),
    /// A numeric field of events of one kind.
    EventField {
        /// Event kind to match.
        kind: String,
        /// Field carrying the signal value.
        field: String,
    },
    /// The number of events of one kind inside a sliding window ending now.
    EventCount {
        /// Event kind to match.
        kind: String,
        /// Sliding-window length, simulated seconds.
        window_secs: f64,
    },
    /// Durations of closing spans with this name (e.g. `job`).
    SpanDuration {
        /// Span name to match.
        name: String,
    },
}

/// When a rule fires, given its signal's current value.
#[derive(Clone, Debug)]
pub enum Condition {
    /// The value crossed a fixed bound.
    Threshold {
        /// Comparison direction.
        cmp: Cmp,
        /// The bound.
        value: f64,
    },
    /// The signal's rate of change over a sliding window crossed a bound.
    RateOfChange {
        /// Sliding-window length, simulated seconds (needs ≥ 2 samples inside).
        window_secs: f64,
        /// Comparison direction for the rate.
        cmp: Cmp,
        /// Rate bound, signal units per simulated second.
        per_sec: f64,
    },
    /// The subject's quantile diverged from the fleet's: fires when
    /// `quantile(subject, subject_q) > factor * quantile(fleet, fleet_q)`.
    QuantileVsFleet {
        /// Quantile taken over the subject's own samples.
        subject_q: f64,
        /// Quantile taken over all samples (the fleet).
        fleet_q: f64,
        /// Divergence factor.
        factor: f64,
        /// Minimum fleet samples before the rule arms.
        min_samples: usize,
    },
}

/// Numeric pre-condition on another field/attr of the same record: the rule only
/// evaluates when `field cmp value` holds (e.g. "enough of the input processed").
#[derive(Clone, Debug)]
pub struct Guard {
    /// Field (event) or attribute (span) name holding the guard value.
    pub field: String,
    /// Comparison direction.
    pub cmp: Cmp,
    /// Guard bound.
    pub value: f64,
}

/// One declarative alert rule.
#[derive(Clone, Debug)]
pub struct AlertRule {
    /// Rule id, stamped into fired alerts.
    pub id: String,
    /// What the rule listens to.
    pub signal: Signal,
    /// When it fires.
    pub condition: Condition,
    /// Field/attr naming the alert subject; alerts dedup per `(rule, subject)`.
    /// `None` keys everything under the signal's own name.
    pub subject_field: Option<String>,
    /// Optional numeric pre-condition on the same record.
    pub guard: Option<Guard>,
    /// Minimum simulated seconds between repeat alerts for one subject
    /// (`f64::INFINITY` = at most once per subject).
    pub cooldown_secs: f64,
}

impl AlertRule {
    /// Straggler instances: a single instance's job-duration p99 exceeds
    /// `factor` × the fleet median, once the fleet has `min_samples` finished
    /// jobs. Fires per instance, at most once.
    pub fn straggler_instances(factor: f64, min_samples: usize) -> AlertRule {
        AlertRule {
            id: "straggler_instance".into(),
            signal: Signal::SpanDuration { name: "job".into() },
            condition: Condition::QuantileVsFleet {
                subject_q: 0.99,
                fleet_q: 0.5,
                factor,
                min_samples,
            },
            subject_field: Some("instance".into()),
            guard: None,
            cooldown_secs: f64::INFINITY,
        }
    }

    /// SQS backlog growth: the `queue_pending` gauge grows at ≥ `per_sec`
    /// messages/second over a `window_secs` window (a healthy campaign drains).
    pub fn queue_backlog_growth(window_secs: f64, per_sec: f64) -> AlertRule {
        AlertRule {
            id: "queue_backlog_growth".into(),
            signal: Signal::Gauge("queue_pending".into()),
            condition: Condition::RateOfChange { window_secs, cmp: Cmp::Ge, per_sec },
            subject_field: None,
            guard: None,
            cooldown_secs: window_secs,
        }
    }

    /// Fault burst: ≥ `min_count` `fault_injected` events (any op) inside a
    /// `window_secs` window — the fault layer has gone from background noise to a
    /// storm.
    pub fn fault_burst(window_secs: f64, min_count: usize) -> AlertRule {
        AlertRule {
            id: "fault_burst".into(),
            signal: Signal::EventCount { kind: "fault_injected".into(), window_secs },
            condition: Condition::Threshold { cmp: Cmp::Ge, value: min_count as f64 },
            subject_field: None,
            guard: None,
            cooldown_secs: window_secs,
        }
    }

    /// Interruption storm: ≥ `min_count` `spot_interruption` events inside a
    /// `window_secs` window — reclaims have shifted from background churn to a
    /// market event, and a recovery-enabled campaign should expect heavy
    /// drain/checkpoint traffic. Not part of [`MonitorConfig::standard`]:
    /// recovery campaigns opt in alongside [`crate::SloRegistry`] budgets.
    pub fn interruption_storm(window_secs: f64, min_count: usize) -> AlertRule {
        AlertRule {
            id: "interruption_storm".into(),
            signal: Signal::EventCount { kind: "spot_interruption".into(), window_secs },
            condition: Condition::Threshold { cmp: Cmp::Ge, value: min_count as f64 },
            subject_field: None,
            guard: None,
            cooldown_secs: window_secs,
        }
    }

    /// Early-stop-eligible accession: the streamed mapping rate sits below
    /// `min_rate` once at least `check_fraction` of reads are processed — the
    /// same signal `early_stop.rs` acts on, flagged from the live stream before
    /// the policy's decision lands in the log.
    pub fn early_stop_eligible(min_rate: f64, check_fraction: f64) -> AlertRule {
        AlertRule {
            id: "early_stop_eligible".into(),
            signal: Signal::EventField { kind: "progress".into(), field: "mapping_rate".into() },
            condition: Condition::Threshold { cmp: Cmp::Lt, value: min_rate },
            subject_field: Some("accession".into()),
            guard: Some(Guard {
                field: "processed_fraction".into(),
                cmp: Cmp::Ge,
                value: check_fraction,
            }),
            cooldown_secs: f64::INFINITY,
        }
    }
}

/// Monitor configuration: the rule set to evaluate.
#[derive(Clone, Debug, Default)]
pub struct MonitorConfig {
    /// Rules, evaluated in order against every stream record.
    pub rules: Vec<AlertRule>,
    /// Declarative SLOs ([`crate::slo`]) evaluated over the same stream with
    /// multi-window burn-rate alerting. Empty registry = SLO engine off.
    pub slos: SloRegistry,
}

impl MonitorConfig {
    /// The stock rule set: stragglers (3× fleet median after 8 jobs), backlog
    /// growth (≥ 0.02 msg/s over 10 min), fault bursts (≥ 5 in 5 min), and
    /// early-stop-eligible accessions (mapping rate < 0.30 at ≥ 10 % processed —
    /// [`crate::monitor::AlertRule::early_stop_eligible`] mirrors the
    /// `EarlyStopPolicy` defaults).
    pub fn standard() -> MonitorConfig {
        MonitorConfig {
            rules: vec![
                AlertRule::straggler_instances(3.0, 8),
                AlertRule::queue_backlog_growth(600.0, 0.02),
                AlertRule::fault_burst(300.0, 5),
                AlertRule::early_stop_eligible(0.30, 0.10),
            ],
            slos: SloRegistry::default(),
        }
    }
}

/// One fired alert.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertEvent {
    /// Rule id.
    pub rule: String,
    /// Alert subject (instance id, accession, gauge/kind name).
    pub subject: String,
    /// Simulated time the rule fired.
    pub at_secs: f64,
    /// Signal value at firing.
    pub value: f64,
    /// The bound it was compared against.
    pub threshold: f64,
    /// How long the condition existed before detection, simulated seconds.
    pub latency_secs: f64,
}

impl AlertEvent {
    /// Serialize as a stream event (kind `alert`, fixed field order).
    pub fn to_event_record(&self) -> EventRecord {
        EventRecord {
            at_secs: self.at_secs,
            kind: "alert",
            fields: vec![
                ("rule", JsonValue::from(self.rule.as_str())),
                ("subject", JsonValue::from(self.subject.as_str())),
                ("value", JsonValue::from(self.value)),
                ("threshold", JsonValue::from(self.threshold)),
                ("latency_secs", JsonValue::from(self.latency_secs)),
            ],
        }
    }
}

/// Per-rule streaming state.
#[derive(Debug, Default)]
struct RuleState {
    /// Sliding windows of `(t, value)` samples, per subject (rate-of-change and
    /// event-count signals).
    windows: BTreeMap<String, VecDeque<(f64, f64)>>,
    /// All observed samples, sorted (quantile-vs-fleet).
    fleet: Vec<f64>,
    /// Per-subject observed samples, sorted (quantile-vs-fleet).
    per_subject: BTreeMap<String, Vec<f64>>,
    /// Last firing time per subject (cooldown bookkeeping).
    last_fired: BTreeMap<String, f64>,
}

#[derive(Debug, Default)]
struct MonitorState {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    alerts: Vec<AlertEvent>,
    /// Objectives under evaluation (empty = SLO engine off).
    slos: Vec<Slo>,
    /// Streaming evaluator state, parallel to `slos`.
    slo_states: Vec<SloState>,
    /// Hourly rate pricing `SloSignal::AccessionCost` samples.
    cost_usd_per_hour: f64,
    /// Accessions already sampled — turnaround/cost sample exactly once per
    /// accession, at its *first* successful completion.
    seen_accessions: BTreeSet<String>,
}

/// The live monitor. Create it, attach [`Monitor::observer`] to a recorder, run
/// the campaign, then read [`Monitor::alerts`].
#[derive(Clone, Debug)]
pub struct Monitor {
    state: Arc<Mutex<MonitorState>>,
}

impl Monitor {
    /// A monitor evaluating `config`'s rules.
    pub fn new(config: MonitorConfig) -> Monitor {
        let states = config.rules.iter().map(|_| RuleState::default()).collect();
        let slo_states = config.slos.slos.iter().map(SloState::new).collect();
        Monitor {
            state: Arc::new(Mutex::new(MonitorState {
                rules: config.rules,
                states,
                alerts: Vec::new(),
                slos: config.slos.slos,
                slo_states,
                cost_usd_per_hour: config.slos.cost_usd_per_hour,
                seen_accessions: BTreeSet::new(),
            })),
        }
    }

    /// A [`StreamObserver`] feeding this monitor; attach it to the recorder.
    /// The handle and the observer share state, so alerts fired during the run
    /// stay readable here afterwards.
    pub fn observer(&self) -> Box<dyn StreamObserver> {
        Box::new(MonitorObserver { state: Arc::clone(&self.state) })
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> Vec<AlertEvent> {
        self.state.lock().expect("monitor poisoned").alerts.clone()
    }

    /// End-of-stream status of every configured objective, in registry order.
    pub fn slo_status(&self) -> Vec<SloStatus> {
        let st = self.state.lock().expect("monitor poisoned");
        st.slos.iter().zip(&st.slo_states).map(|(slo, state)| state.status(slo)).collect()
    }
}

/// Route one SLO sample of `signal` through every matching objective; collects
/// burn alerts into `fired` and clear/budget events into `extra`.
fn slo_sample(
    st: &mut MonitorState,
    signal: SloSignal,
    t: f64,
    value: f64,
    fired: &mut Vec<AlertEvent>,
    extra: &mut Vec<EventRecord>,
) {
    let MonitorState { slos, slo_states, .. } = st;
    for (slo, state) in slos.iter().zip(slo_states.iter_mut()) {
        if slo.signal != signal {
            continue;
        }
        let (alerts, events) = state.sample(slo, t, value);
        fired.extend(alerts);
        extra.extend(events);
    }
}

struct MonitorObserver {
    state: Arc<Mutex<MonitorState>>,
}

impl StreamObserver for MonitorObserver {
    fn on_event(&mut self, event: &EventRecord) -> Vec<EventRecord> {
        let mut st = self.state.lock().expect("monitor poisoned");
        let mut fired = Vec::new();
        // Split-borrow rules alongside their states: this loop runs for every
        // record the campaign emits, so it must not clone rule configs.
        let MonitorState { rules, states, .. } = &mut *st;
        for (rule, state) in rules.iter().zip(states.iter_mut()) {
            match &rule.signal {
                Signal::EventField { kind, field } if *kind == event.kind => {
                    if !guard_holds(&rule.guard, |f| event_num(event, f)) {
                        continue;
                    }
                    let Some(value) = event_num(event, field) else { continue };
                    // Threshold rules only need a subject when they fire; skip
                    // the subject-string allocation on the quiet path (progress
                    // floods hit this for every snapshot).
                    if let Condition::Threshold { cmp, value: bound } = rule.condition {
                        if !cmp.holds(value, bound) {
                            continue;
                        }
                    }
                    let subject = subject_of(rule, |f| event_str(event, f), kind);
                    if let Some(alert) =
                        eval_scalar(rule, state, &subject, event.at_secs, value, 0.0)
                    {
                        fired.push(alert);
                    }
                }
                Signal::EventCount { kind, window_secs } if *kind == event.kind => {
                    if !guard_holds(&rule.guard, |f| event_num(event, f)) {
                        continue;
                    }
                    let subject = subject_of(rule, |f| event_str(event, f), kind);
                    let t = event.at_secs;
                    let window_secs = *window_secs;
                    let window = state.windows.entry(subject.clone()).or_default();
                    window.push_back((t, 1.0));
                    while window.front().is_some_and(|&(t0, _)| t0 < t - window_secs) {
                        window.pop_front();
                    }
                    let count = window.len() as f64;
                    let onset = window.front().map_or(t, |&(t0, _)| t0);
                    if let Condition::Threshold { cmp, value } = rule.condition {
                        if cmp.holds(count, value) {
                            if let Some(alert) =
                                fire(rule, state, &subject, t, count, value, t - onset)
                            {
                                fired.push(alert);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        let mut extra = Vec::new();
        if !st.slos.is_empty() && event.kind == "queue_wait" {
            if let Some(wait) = event_num(event, "wait_secs") {
                slo_sample(&mut st, SloSignal::QueueWait, event.at_secs, wait, &mut fired, &mut extra);
            }
        }
        let mut records = finish(&mut st, fired);
        records.extend(extra);
        records
    }

    fn on_span_close(&mut self, span: &SpanRecord) -> Vec<EventRecord> {
        let mut st = self.state.lock().expect("monitor poisoned");
        let mut fired = Vec::new();
        let Some(end) = span.end_secs else { return Vec::new() };
        let MonitorState { rules, states, .. } = &mut *st;
        for (rule, state) in rules.iter().zip(states.iter_mut()) {
            let Signal::SpanDuration { name } = &rule.signal else { continue };
            if *name != span.name {
                continue;
            }
            if !guard_holds(&rule.guard, |f| span.attr(f).and_then(|v| v.parse().ok())) {
                continue;
            }
            let subject =
                subject_of(rule, |f| span.attr(f).map(str::to_string), name);
            let duration = span.duration_secs();
            let alert = match rule.condition {
                Condition::QuantileVsFleet { subject_q, fleet_q, factor, min_samples } => {
                    insert_sorted(&mut state.fleet, duration);
                    insert_sorted(
                        state.per_subject.entry(subject.clone()).or_default(),
                        duration,
                    );
                    if state.fleet.len() < min_samples {
                        None
                    } else {
                        let bound = factor * quantile_sorted(&state.fleet, fleet_q);
                        let subject_quantile =
                            quantile_sorted(&state.per_subject[&subject], subject_q);
                        if subject_quantile > bound {
                            fire(
                                rule,
                                state,
                                &subject,
                                end,
                                subject_quantile,
                                bound,
                                end - span.start_secs,
                            )
                        } else {
                            None
                        }
                    }
                }
                // Threshold/rate conditions see the duration as a plain scalar
                // sample whose condition existed since the span started.
                _ => eval_scalar(rule, state, &subject, end, duration, duration),
            };
            fired.extend(alert);
        }
        let mut extra = Vec::new();
        if !st.slos.is_empty() && span.name == "job" && span.attr("outcome") == Some("ok") {
            if let Some(acc) = span.attr("accession").map(str::to_string) {
                if st.seen_accessions.insert(acc) {
                    // Batch campaigns submit everything at t = 0, so an
                    // accession's turnaround *is* its first-completion time.
                    let duration = span.duration_secs();
                    let cost = duration * st.cost_usd_per_hour / 3600.0;
                    slo_sample(&mut st, SloSignal::AccessionTurnaround, end, end, &mut fired, &mut extra);
                    slo_sample(&mut st, SloSignal::AccessionCost, end, cost, &mut fired, &mut extra);
                }
            }
        }
        let mut records = finish(&mut st, fired);
        records.extend(extra);
        records
    }

    fn on_gauge(&mut self, at_secs: f64, name: &str, value: f64) -> Vec<EventRecord> {
        let mut st = self.state.lock().expect("monitor poisoned");
        let mut fired = Vec::new();
        let MonitorState { rules, states, .. } = &mut *st;
        for (rule, state) in rules.iter().zip(states.iter_mut()) {
            let Signal::Gauge(gauge) = &rule.signal else { continue };
            if gauge != name {
                continue;
            }
            let subject = subject_of(rule, |_| None, name);
            if let Some(alert) = eval_scalar(rule, state, &subject, at_secs, value, 0.0) {
                fired.push(alert);
            }
        }
        finish(&mut st, fired)
    }
}

/// Record fired alerts into monitor state and convert them for the event log.
fn finish(st: &mut MonitorState, fired: Vec<AlertEvent>) -> Vec<EventRecord> {
    let records = fired.iter().map(AlertEvent::to_event_record).collect();
    st.alerts.extend(fired);
    records
}

/// Evaluate a threshold or rate-of-change condition on one scalar sample.
/// `onset_latency` is how long the condition already existed for threshold
/// firings (0 for point samples, the span duration for span closings).
fn eval_scalar(
    rule: &AlertRule,
    state: &mut RuleState,
    subject: &str,
    t: f64,
    value: f64,
    onset_latency: f64,
) -> Option<AlertEvent> {
    match rule.condition {
        Condition::Threshold { cmp, value: bound } => {
            if cmp.holds(value, bound) {
                fire(rule, state, subject, t, value, bound, onset_latency)
            } else {
                None
            }
        }
        Condition::RateOfChange { window_secs, cmp, per_sec } => {
            let window = state.windows.entry(subject.to_string()).or_default();
            window.push_back((t, value));
            while window.front().is_some_and(|&(t0, _)| t0 < t - window_secs) {
                window.pop_front();
            }
            let &(t0, v0) = window.front().expect("just pushed");
            if window.len() >= 2 && t > t0 {
                let rate = (value - v0) / (t - t0);
                if cmp.holds(rate, per_sec) {
                    return fire(rule, state, subject, t, rate, per_sec, t - t0);
                }
            }
            None
        }
        Condition::QuantileVsFleet { .. } => None, // only meaningful on spans
    }
}

/// Apply the cooldown and emit the alert.
fn fire(
    rule: &AlertRule,
    state: &mut RuleState,
    subject: &str,
    t: f64,
    value: f64,
    threshold: f64,
    latency_secs: f64,
) -> Option<AlertEvent> {
    if let Some(&last) = state.last_fired.get(subject) {
        if t - last < rule.cooldown_secs {
            return None;
        }
    }
    state.last_fired.insert(subject.to_string(), t);
    Some(AlertEvent {
        rule: rule.id.clone(),
        subject: subject.to_string(),
        at_secs: t,
        value,
        threshold,
        latency_secs,
    })
}

fn guard_holds(guard: &Option<Guard>, lookup: impl Fn(&str) -> Option<f64>) -> bool {
    match guard {
        None => true,
        Some(g) => lookup(&g.field).is_some_and(|v| g.cmp.holds(v, g.value)),
    }
}

fn subject_of(
    rule: &AlertRule,
    lookup: impl Fn(&str) -> Option<String>,
    fallback: &str,
) -> String {
    rule.subject_field
        .as_deref()
        .and_then(lookup)
        .unwrap_or_else(|| fallback.to_string())
}

fn event_num(event: &EventRecord, field: &str) -> Option<f64> {
    event.fields.iter().find(|(k, _)| *k == field).and_then(|(_, v)| match v {
        JsonValue::Num(n) => Some(*n),
        JsonValue::Int(n) => Some(*n as f64),
        JsonValue::UInt(n) => Some(*n as f64),
        JsonValue::Str(s) => s.parse().ok(),
        _ => None,
    })
}

fn event_str(event: &EventRecord, field: &str) -> Option<String> {
    event.fields.iter().find(|(k, _)| *k == field).map(|(_, v)| match v {
        JsonValue::Str(s) => s.clone(),
        other => other.render(),
    })
}

fn insert_sorted(v: &mut Vec<f64>, x: f64) {
    let at = v.partition_point(|&y| y <= x);
    v.insert(at, x);
}

/// Nearest-rank quantile over a sorted, non-empty slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::span::SpanId;

    fn progress(rec: &Recorder, t: f64, accession: &str, fraction: f64, rate: f64) {
        rec.event(
            t,
            "progress",
            vec![
                ("accession", JsonValue::from(accession)),
                ("processed_fraction", JsonValue::from(fraction)),
                ("mapping_rate", JsonValue::from(rate)),
            ],
        );
    }

    #[test]
    fn threshold_rule_respects_guard_and_dedups_per_subject() {
        let monitor = Monitor::new(MonitorConfig {
            rules: vec![AlertRule::early_stop_eligible(0.30, 0.10)],
            ..MonitorConfig::default()
        });
        let rec = Recorder::new();
        rec.attach_observer(monitor.observer());
        progress(&rec, 10.0, "SRR1", 0.05, 0.10); // guard: too early
        progress(&rec, 20.0, "SRR1", 0.12, 0.10); // fires
        progress(&rec, 30.0, "SRR1", 0.20, 0.08); // deduped (infinite cooldown)
        progress(&rec, 40.0, "SRR2", 0.15, 0.90); // healthy: no fire
        progress(&rec, 50.0, "SRR3", 0.15, 0.05); // distinct subject fires
        let alerts = monitor.alerts();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].rule, "early_stop_eligible");
        assert_eq!(alerts[0].subject, "SRR1");
        assert_eq!(alerts[0].at_secs, 20.0);
        assert_eq!(alerts[0].value, 0.10);
        assert_eq!(alerts[1].subject, "SRR3");
        // The alerts are in the shared event log, after the events that fired them.
        let log = rec.events_ndjson();
        assert!(log.contains("\"kind\":\"alert\",\"rule\":\"early_stop_eligible\",\"subject\":\"SRR1\""), "{log}");
        assert_eq!(rec.metrics().counter("alerts_fired"), 2);
    }

    #[test]
    fn fault_burst_counts_in_a_sliding_window() {
        let monitor =
            Monitor::new(MonitorConfig { rules: vec![AlertRule::fault_burst(100.0, 3)], ..MonitorConfig::default() });
        let rec = Recorder::new();
        rec.attach_observer(monitor.observer());
        for t in [0.0, 10.0, 200.0, 210.0] {
            rec.event(t, "fault_injected", vec![("op", JsonValue::from("s3_get"))]);
        }
        assert!(monitor.alerts().is_empty(), "sparse faults must not alert");
        rec.event(220.0, "fault_injected", vec![("op", JsonValue::from("s3_get"))]);
        let alerts = monitor.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "fault_burst");
        assert_eq!(alerts[0].at_secs, 220.0);
        assert_eq!(alerts[0].value, 3.0); // 200, 210, 220 in window
        assert_eq!(alerts[0].latency_secs, 20.0); // storm onset at 200
        // Cooldown suppresses immediate re-fire.
        rec.event(221.0, "fault_injected", vec![]);
        assert_eq!(monitor.alerts().len(), 1);
    }

    #[test]
    fn backlog_growth_is_a_rate_over_a_window() {
        let monitor = Monitor::new(MonitorConfig {
            rules: vec![AlertRule::queue_backlog_growth(100.0, 0.5)],
            ..MonitorConfig::default()
        });
        let rec = Recorder::new();
        rec.attach_observer(monitor.observer());
        rec.gauge_set_at(0.0, "queue_pending", 50.0);
        rec.gauge_set_at(50.0, "queue_pending", 40.0); // draining: fine
        rec.gauge_set_at(100.0, "queue_pending", 80.0); // +30 over (0,100): 0.3/s — window front is t=0
        assert!(monitor.alerts().is_empty());
        rec.gauge_set_at(150.0, "queue_pending", 140.0); // window [50,150]: +100/100s = 1.0/s
        let alerts = monitor.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "queue_backlog_growth");
        assert_eq!(alerts[0].subject, "queue_pending");
        assert_eq!(alerts[0].value, 1.0);
        assert_eq!(alerts[0].latency_secs, 100.0);
    }

    #[test]
    fn straggler_rule_compares_subject_p99_to_fleet_median() {
        let monitor = Monitor::new(MonitorConfig {
            rules: vec![AlertRule::straggler_instances(3.0, 4)],
            ..MonitorConfig::default()
        });
        let rec = Recorder::new();
        rec.attach_observer(monitor.observer());
        let mut t = 0.0;
        for (instance, dur) in
            [("1", 10.0), ("2", 11.0), ("1", 9.0), ("2", 10.0), ("3", 50.0)]
        {
            rec.span_closed(
                "job",
                SpanId::NONE,
                t,
                t + dur,
                &[("accession", format!("SRR{t}")), ("instance", instance.to_string())],
            );
            t += 100.0;
        }
        let alerts = monitor.alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].rule, "straggler_instance");
        assert_eq!(alerts[0].subject, "3");
        assert_eq!(alerts[0].value, 50.0);
        assert_eq!(alerts[0].threshold, 30.0); // 3 × fleet median 10
        assert_eq!(alerts[0].latency_secs, 50.0); // flagged the moment the job closed
        assert!(alerts[0].at_secs < t, "alert fired online, before the stream ended");
    }

    #[test]
    fn same_stream_fires_the_same_alerts() {
        let run = || {
            let monitor = Monitor::new(MonitorConfig::standard());
            let rec = Recorder::new();
            rec.attach_observer(monitor.observer());
            for i in 0..20 {
                let t = i as f64 * 30.0;
                rec.event(t, "fault_injected", vec![("op", JsonValue::from("s3_get"))]);
                rec.gauge_set_at(t, "queue_pending", 10.0 + i as f64);
            }
            rec.events_ndjson()
        };
        assert_eq!(run(), run());
    }
}
