//! Single-pass streaming queries over saved NDJSON event logs.
//!
//! The recorder can *capture* everything (PR 2) and the exporters can *render*
//! everything (PR 4), but answering a question about a recorded run — "what was
//! the p95 queue wait per instance?", "how many faults per kind after t=600?" —
//! used to mean a hand-written one-off loop. This module is that loop, written
//! once: a [`Query`] filters events by kind / field equality / time window,
//! groups survivors by any combination of fields, and folds each group through
//! count / sum / min / max aggregates plus a mergeable [`QuantileSketch`] for
//! percentiles.
//!
//! **Determinism contract.** A query is a pure function of the log bytes:
//! groups live in `BTreeMap`s (sorted iteration), aggregate state is
//! order-invariant (count/sum/min/max commute; the sketch is a pure function of
//! the observation multiset), and floats render through [`crate::json::fmt_f64`].
//! Re-running the same query over a causally-equivalent reordering of the same
//! log yields byte-identical text and JSON output (property-tested in
//! `tests/tests/trace_query.rs`).
//!
//! The engine is streaming: one pass over the lines, state proportional to the
//! number of groups — a million-line log costs a million parses and nothing
//! else.

use crate::json::{self, JsonValue};
use crate::sketch::QuantileSketch;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Relative-error bound for query-time percentile sketches. Matches the SLO
/// engine's default so grouped quantiles are comparable with live SLO ones.
pub const QUERY_SKETCH_ALPHA: f64 = 0.01;

/// One aggregate over a group's events.
#[derive(Clone, Debug, PartialEq)]
pub enum Agg {
    /// Number of events in the group.
    Count,
    /// Sum of a numeric field over the group (events missing the field are
    /// skipped).
    Sum(String),
    /// Minimum of a numeric field.
    Min(String),
    /// Maximum of a numeric field.
    Max(String),
    /// p50/p95/p99 of a numeric field via a mergeable [`QuantileSketch`].
    Quantiles(String),
}

impl Agg {
    /// Column header for the text table (`sum(wait_secs)`, `p95(wait_secs)` …).
    fn headers(&self) -> Vec<String> {
        match self {
            Agg::Count => vec!["count".to_string()],
            Agg::Sum(f) => vec![format!("sum({f})")],
            Agg::Min(f) => vec![format!("min({f})")],
            Agg::Max(f) => vec![format!("max({f})")],
            Agg::Quantiles(f) => {
                vec![format!("p50({f})"), format!("p95({f})"), format!("p99({f})")]
            }
        }
    }

    /// Parse the CLI/`parse_args` spelling: `count`, `sum:field`, `min:field`,
    /// `max:field`, `quantiles:field`.
    pub fn parse(spec: &str) -> Result<Agg, String> {
        if spec == "count" {
            return Ok(Agg::Count);
        }
        let (op, field) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad aggregate {spec:?}: expected op:field"))?;
        if field.is_empty() {
            return Err(format!("bad aggregate {spec:?}: empty field"));
        }
        match op {
            "sum" => Ok(Agg::Sum(field.to_string())),
            "min" => Ok(Agg::Min(field.to_string())),
            "max" => Ok(Agg::Max(field.to_string())),
            "quantiles" | "q" => Ok(Agg::Quantiles(field.to_string())),
            _ => Err(format!("unknown aggregate op {op:?} (count|sum|min|max|quantiles)")),
        }
    }
}

/// A declarative query over an NDJSON event log.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Query {
    /// Keep only events whose `kind` is in this list (empty = all kinds).
    pub kinds: Vec<String>,
    /// Keep only events where each named field's *rendered* value equals the
    /// given string (`instance=3` matches both `3` and `"3"`).
    pub where_eq: Vec<(String, String)>,
    /// Keep only events with `t >= since`.
    pub since: Option<f64>,
    /// Keep only events with `t <= until`.
    pub until: Option<f64>,
    /// Group surviving events by these field values (`kind` and `t` are
    /// addressable like any field). Empty = one global group.
    pub group_by: Vec<String>,
    /// Aggregates computed per group. Empty defaults to [`Agg::Count`].
    pub aggs: Vec<Agg>,
}

impl Query {
    /// Parse the `trace_query` CLI argument spelling, shared by the binary and
    /// the golden test so both exercise the same path:
    ///
    /// ```text
    /// --kind k1,k2  --where field=value  --since s  --until s
    /// --group-by f1,f2  --agg count --agg sum:wait_secs --agg quantiles:wait_secs
    /// ```
    pub fn parse_args(args: &[String]) -> Result<Query, String> {
        let mut q = Query::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut need = |name: &str| {
                it.next().map(|s| s.to_string()).ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--kind" => {
                    q.kinds.extend(need("--kind")?.split(',').map(str::to_string));
                }
                "--where" => {
                    let spec = need("--where")?;
                    let (k, v) = spec
                        .split_once('=')
                        .ok_or_else(|| format!("bad --where {spec:?}: expected field=value"))?;
                    q.where_eq.push((k.to_string(), v.to_string()));
                }
                "--since" => {
                    let v = need("--since")?;
                    q.since =
                        Some(v.parse().map_err(|_| format!("bad --since value {v:?}"))?);
                }
                "--until" => {
                    let v = need("--until")?;
                    q.until =
                        Some(v.parse().map_err(|_| format!("bad --until value {v:?}"))?);
                }
                "--group-by" => {
                    q.group_by.extend(need("--group-by")?.split(',').map(str::to_string));
                }
                "--agg" => q.aggs.push(Agg::parse(&need("--agg")?)?),
                other => return Err(format!("unknown query argument {other:?}")),
            }
        }
        if q.aggs.is_empty() {
            q.aggs.push(Agg::Count);
        }
        Ok(q)
    }

    /// Run the query over an NDJSON log, one streaming pass. Fails on the
    /// first malformed line (with its 1-based line number).
    pub fn run(&self, ndjson: &str) -> Result<QueryResult, String> {
        let mut groups: BTreeMap<Vec<String>, Vec<AggState>> = BTreeMap::new();
        let mut scanned = 0u64;
        let mut matched = 0u64;
        for (lineno, line) in ndjson.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            scanned += 1;
            let event = json::parse(line)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let Some(t) = event.get("t").and_then(JsonValue::as_f64) else {
                return Err(format!("line {}: event without numeric \"t\"", lineno + 1));
            };
            if !self.matches(&event, t) {
                continue;
            }
            matched += 1;
            let key: Vec<String> =
                self.group_by.iter().map(|f| field_text(&event, f)).collect();
            let states = groups
                .entry(key)
                .or_insert_with(|| self.aggs.iter().map(AggState::new).collect());
            for (state, agg) in states.iter_mut().zip(&self.aggs) {
                state.observe(agg, &event);
            }
        }
        Ok(QueryResult { query: self.clone(), scanned, matched, groups })
    }

    fn matches(&self, event: &JsonValue, t: f64) -> bool {
        if let Some(since) = self.since {
            if t < since {
                return false;
            }
        }
        if let Some(until) = self.until {
            if t > until {
                return false;
            }
        }
        if !self.kinds.is_empty() {
            let kind = event.get("kind").and_then(JsonValue::as_str).unwrap_or("");
            if !self.kinds.iter().any(|k| k == kind) {
                return false;
            }
        }
        self.where_eq.iter().all(|(field, want)| field_text(event, field) == *want)
    }
}

/// A field's canonical text form: strings unquoted, numbers via the writer's
/// own float formatting, missing fields as `-` (so group keys are total).
fn field_text(event: &JsonValue, field: &str) -> String {
    match event.get(field) {
        None => "-".to_string(),
        Some(JsonValue::Str(s)) => s.clone(),
        Some(v) => v.render(),
    }
}

/// Order-invariant per-group aggregate state.
#[derive(Clone, Debug)]
enum AggState {
    Count(u64),
    /// Multiset of observed bit patterns; the sum is folded in sorted-bucket
    /// order at render time so it is a pure function of the value multiset.
    Fold { sum_exact: BTreeMap<u64, u64> },
    MinMax { min: f64, max: f64, n: u64 },
    Sketch(QuantileSketch),
}

impl AggState {
    fn new(agg: &Agg) -> AggState {
        match agg {
            Agg::Count => AggState::Count(0),
            Agg::Sum(_) => AggState::Fold { sum_exact: BTreeMap::new() },
            Agg::Min(_) | Agg::Max(_) => {
                AggState::MinMax { min: f64::INFINITY, max: f64::NEG_INFINITY, n: 0 }
            }
            Agg::Quantiles(_) => AggState::Sketch(QuantileSketch::new(QUERY_SKETCH_ALPHA)),
        }
    }

    fn observe(&mut self, agg: &Agg, event: &JsonValue) {
        let field = match agg {
            Agg::Count => {
                if let AggState::Count(n) = self {
                    *n += 1;
                }
                return;
            }
            Agg::Sum(f) | Agg::Min(f) | Agg::Max(f) | Agg::Quantiles(f) => f,
        };
        let Some(v) = event.get(field).and_then(JsonValue::as_f64) else { return };
        match self {
            AggState::Count(_) => {}
            AggState::Fold { sum_exact } => {
                // Bit-bucketed multiset sum: group values by exact bit pattern
                // and fold buckets in sorted order at render time, so the sum
                // is a pure function of the observation *multiset* — no
                // stream-order dependence, same trick as the sketch.
                *sum_exact.entry(v.to_bits()).or_insert(0) += 1;
            }
            AggState::MinMax { min, max, n } => {
                *min = min.min(v);
                *max = max.max(v);
                *n += 1;
            }
            AggState::Sketch(s) => {
                if v.is_finite() && v >= 0.0 {
                    s.observe(v);
                }
            }
        }
    }

    /// Rendered cells for this aggregate, one per header column.
    fn cells(&self, agg: &Agg) -> Vec<String> {
        match (self, agg) {
            (AggState::Count(n), _) => vec![n.to_string()],
            (AggState::Fold { sum_exact, .. }, _) => {
                let mut sum = 0.0f64;
                for (&bits, &count) in sum_exact {
                    let v = f64::from_bits(bits);
                    for _ in 0..count {
                        sum += v;
                    }
                }
                vec![json::fmt_f64(sum)]
            }
            (AggState::MinMax { min, n, .. }, Agg::Min(_)) => {
                vec![if *n == 0 { "-".to_string() } else { json::fmt_f64(*min) }]
            }
            (AggState::MinMax { max, n, .. }, _) => {
                vec![if *n == 0 { "-".to_string() } else { json::fmt_f64(*max) }]
            }
            (AggState::Sketch(s), _) => {
                vec![json::fmt_f64(s.p50()), json::fmt_f64(s.p95()), json::fmt_f64(s.p99())]
            }
        }
    }

    /// The underlying sketch, for merge-based cross-checks.
    fn sketch(&self) -> Option<&QuantileSketch> {
        match self {
            AggState::Sketch(s) => Some(s),
            _ => None,
        }
    }
}

/// The result of a [`Query`]: per-group aggregate state plus scan counters.
#[derive(Clone, Debug)]
pub struct QueryResult {
    query: Query,
    /// NDJSON lines scanned.
    pub scanned: u64,
    /// Events that survived every filter.
    pub matched: u64,
    groups: BTreeMap<Vec<String>, Vec<AggState>>,
}

impl QueryResult {
    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// The merged quantile sketch of aggregate column `agg_index` across all
    /// groups — the whole-log sketch, reconstructed from the group shards
    /// (exactly, because sketch merge is pointwise bucket addition). `None`
    /// when that aggregate is not [`Agg::Quantiles`] or no group observed it.
    pub fn merged_sketch(&self, agg_index: usize) -> Option<QuantileSketch> {
        let mut merged: Option<QuantileSketch> = None;
        for states in self.groups.values() {
            if let Some(s) = states.get(agg_index).and_then(AggState::sketch) {
                match &mut merged {
                    Some(m) => m.merge(s),
                    None => merged = Some(s.clone()),
                }
            }
        }
        merged
    }

    /// Byte-deterministic text table.
    pub fn render_text(&self) -> String {
        let mut headers: Vec<String> =
            self.query.group_by.iter().map(|g| format!("by:{g}")).collect();
        for agg in &self.query.aggs {
            headers.extend(agg.headers());
        }
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.groups.len());
        for (key, states) in &self.groups {
            let mut row = key.clone();
            for (state, agg) in states.iter().zip(&self.query.aggs) {
                row.extend(state.cells(agg));
            }
            rows.push(row);
        }
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace_query: {} matched of {} events, {} group(s)",
            self.matched,
            self.scanned,
            self.groups.len()
        );
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = *w);
            }
            out.push('\n');
        };
        fmt_row(&headers, &mut out);
        for row in &rows {
            fmt_row(row, &mut out);
        }
        out
    }

    /// Byte-deterministic JSON document (`scanned`, `matched`, `groups` array
    /// with group-key fields and one entry per aggregate column).
    pub fn render_json(&self) -> String {
        let mut headers: Vec<String> = Vec::new();
        for agg in &self.query.aggs {
            headers.extend(agg.headers());
        }
        let groups: Vec<JsonValue> = self
            .groups
            .iter()
            .map(|(key, states)| {
                let mut fields: Vec<(String, JsonValue)> = self
                    .query
                    .group_by
                    .iter()
                    .zip(key)
                    .map(|(g, v)| (g.clone(), JsonValue::from(v.as_str())))
                    .collect();
                let mut cells = Vec::new();
                for (state, agg) in states.iter().zip(&self.query.aggs) {
                    cells.extend(state.cells(agg));
                }
                for (h, c) in headers.iter().zip(&cells) {
                    // Numeric cells stay numeric in JSON; `-` stays a string.
                    let v = c
                        .parse::<f64>()
                        .map(JsonValue::from)
                        .unwrap_or_else(|_| JsonValue::from(c.as_str()));
                    fields.push((h.clone(), v));
                }
                JsonValue::Obj(fields)
            })
            .collect();
        let doc = JsonValue::obj(vec![
            ("scanned", JsonValue::from(self.scanned)),
            ("matched", JsonValue::from(self.matched)),
            ("groups", JsonValue::Arr(groups)),
        ]);
        let mut out = doc.render();
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> String {
        [
            r#"{"t":1,"kind":"queue_wait","accession":"SRR2","instance":1,"wait_secs":4}"#,
            r#"{"t":2,"kind":"queue_wait","accession":"SRR1","instance":2,"wait_secs":10}"#,
            r#"{"t":3,"kind":"retry","op":"s3_get","attempt":1}"#,
            r#"{"t":9,"kind":"queue_wait","accession":"SRR3","instance":1,"wait_secs":2}"#,
            r#"{"t":12,"kind":"worker_crash","accession":"SRR1","instance":2,"wasted_secs":7}"#,
        ]
        .join("\n")
            + "\n"
    }

    #[test]
    fn filter_group_and_aggregate() {
        let q = Query::parse_args(
            &["--kind", "queue_wait", "--group-by", "instance", "--agg", "count", "--agg",
                "sum:wait_secs"]
                .map(String::from),
        )
        .unwrap();
        let r = q.run(&sample_log()).unwrap();
        assert_eq!(r.scanned, 5);
        assert_eq!(r.matched, 3);
        assert_eq!(r.n_groups(), 2);
        let text = r.render_text();
        assert!(text.contains("by:instance"), "{text}");
        assert!(text.contains("sum(wait_secs)"), "{text}");
        // instance 1: waits 4+2=6 over 2 events; instance 2: 10 over 1.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].trim_start().starts_with('1') && lines[2].contains('6'), "{text}");
        assert!(lines[3].trim_start().starts_with('2') && lines[3].contains("10"), "{text}");
    }

    #[test]
    fn time_window_and_where_filters_compose() {
        let q = Query::parse_args(
            &["--since", "2", "--until", "9", "--where", "instance=1"].map(String::from),
        )
        .unwrap();
        let r = q.run(&sample_log()).unwrap();
        assert_eq!(r.matched, 1, "only the t=9 instance-1 queue_wait survives");
    }

    #[test]
    fn ungrouped_query_counts_everything() {
        let q = Query::parse_args(&[]).unwrap();
        let r = q.run(&sample_log()).unwrap();
        assert_eq!(r.n_groups(), 1);
        assert!(r.render_text().contains("5 matched of 5 events"));
    }

    #[test]
    fn quantiles_column_renders_three_cells() {
        let q = Query::parse_args(
            &["--kind", "queue_wait", "--agg", "quantiles:wait_secs"].map(String::from),
        )
        .unwrap();
        let r = q.run(&sample_log()).unwrap();
        let text = r.render_text();
        assert!(text.contains("p50(wait_secs)"), "{text}");
        assert!(text.contains("p95(wait_secs)"), "{text}");
        assert!(text.contains("p99(wait_secs)"), "{text}");
        assert!(r.merged_sketch(0).is_some());
        assert_eq!(r.merged_sketch(0).unwrap().count(), 3);
    }

    #[test]
    fn missing_fields_group_under_dash_and_skip_aggregates() {
        let q = Query::parse_args(
            &["--group-by", "accession", "--agg", "sum:wait_secs"].map(String::from),
        )
        .unwrap();
        let r = q.run(&sample_log()).unwrap();
        // retry has no accession: groups under "-"; its missing wait_secs adds 0 events.
        let text = r.render_text();
        assert!(text.lines().any(|l| l.trim_start().starts_with('-')), "{text}");
    }

    #[test]
    fn json_rendering_is_numeric_where_possible() {
        let q = Query::parse_args(
            &["--kind", "queue_wait", "--group-by", "instance", "--agg", "sum:wait_secs"]
                .map(String::from),
        )
        .unwrap();
        let json = q.run(&sample_log()).unwrap().render_json();
        assert!(json.contains("\"instance\":\"1\""), "{json}");
        assert!(json.contains("\"sum(wait_secs)\":6"), "{json}");
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let log = "{\"t\":1,\"kind\":\"a\"}\nnot json\n";
        let err = Query::default().run(log).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = Query::default().run("{\"kind\":\"no_time\"}\n").unwrap_err();
        assert!(err.contains("numeric \"t\""), "{err}");
    }

    #[test]
    fn bad_cli_arguments_are_rejected() {
        for bad in [
            vec!["--agg", "median:wait_secs"],
            vec!["--agg", "sum:"],
            vec!["--where", "nokey"],
            vec!["--since", "soon"],
            vec!["--frobnicate"],
            vec!["--kind"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(Query::parse_args(&args).is_err(), "{args:?} must be rejected");
        }
    }

    #[test]
    fn sum_is_order_invariant_bit_exactly() {
        // Values chosen so naive left-to-right summation differs across orders.
        let vals = [0.1, 0.2, 0.30000000000000004, 1e-9, 1e9];
        let fwd: String = vals
            .iter()
            .enumerate()
            .map(|(i, v)| format!("{{\"t\":{i},\"kind\":\"x\",\"v\":{}}}\n", json::fmt_f64(*v)))
            .collect();
        let rev: String = vals
            .iter()
            .rev()
            .enumerate()
            .map(|(i, v)| format!("{{\"t\":{i},\"kind\":\"x\",\"v\":{}}}\n", json::fmt_f64(*v)))
            .collect();
        let q = Query::parse_args(&["--agg", "sum:v"].map(String::from)).unwrap();
        assert_eq!(
            q.run(&fwd).unwrap().render_text(),
            q.run(&rev).unwrap().render_text(),
            "sum must not depend on stream order"
        );
    }
}
