//! Hierarchical sim-time spans.
//!
//! A span is a named `[start, end]` interval in simulated seconds with an optional
//! parent, forming the campaign → instance → job → stage → align-sub-stage tree
//! the critical-path extractor walks. Ids are 1-based and assigned in emission
//! order by the [`crate::Recorder`]; `0` means "no span" (disabled recorder or
//! root).

use crate::json::JsonValue;

/// Handle to a recorded span. `SpanId::NONE` (0) is the null handle: it is what a
/// disabled recorder returns, every operation on it is a no-op, and as a parent it
/// means "root".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span handle / root parent.
    pub const NONE: SpanId = SpanId(0);

    /// True for the null handle.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// One recorded span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// 1-based id, in emission order.
    pub id: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// Span name (`campaign`, `instance`, `job`, a stage name, `align/seed`, ...).
    pub name: String,
    /// Start, simulated seconds.
    pub start_secs: f64,
    /// End, simulated seconds (`None` while open). Never less than `start_secs`.
    pub end_secs: Option<f64>,
    /// String-valued attributes in a stable, caller-chosen order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Duration in seconds; 0 while the span is still open.
    pub fn duration_secs(&self) -> f64 {
        self.end_secs.map_or(0.0, |e| e - self.start_secs)
    }

    /// Attribute lookup.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Serialize to the stable JSON shape.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("id", JsonValue::from(self.id)),
            ("parent", JsonValue::from(self.parent)),
            ("name", JsonValue::from(self.name.as_str())),
            ("start", JsonValue::from(self.start_secs)),
            ("end", self.end_secs.map_or(JsonValue::Null, JsonValue::from)),
            (
                "attrs",
                JsonValue::Obj(
                    self.attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::from(v.as_str())))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_is_none() {
        assert!(SpanId::NONE.is_none());
        assert!(!SpanId(3).is_none());
    }

    #[test]
    fn duration_and_attrs() {
        let s = SpanRecord {
            id: 1,
            parent: 0,
            name: "job".into(),
            start_secs: 2.0,
            end_secs: Some(5.5),
            attrs: vec![("accession".into(), "SRR1".into())],
        };
        assert!((s.duration_secs() - 3.5).abs() < 1e-12);
        assert_eq!(s.attr("accession"), Some("SRR1"));
        assert_eq!(s.attr("missing"), None);
        assert_eq!(
            s.to_json().render(),
            "{\"id\":1,\"parent\":0,\"name\":\"job\",\"start\":2,\"end\":5.5,\
             \"attrs\":{\"accession\":\"SRR1\"}}"
        );
    }
}
