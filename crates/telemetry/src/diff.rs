//! Run-to-run differential attribution: *why* is run B slower (or dearer)
//! than run A?
//!
//! A bench gate can say "regressed 9%"; this module says *where*: it aligns
//! two runs by stable keys (decomposition category, accession, instance,
//! critical-path edge) and renders the delta as a waterfall — "retry_waste
//! +38%, queue_wait −12%, …".
//!
//! The inputs are [`RunProfile`]s, a neutral summary either extracted straight
//! from a saved NDJSON event log ([`RunProfile::from_event_log`]) or built by
//! the orchestrator from a full campaign report (atlas enriches it with the
//! attribution ledger's categories and the critical-path edges).
//!
//! ## Exactness contract
//!
//! Three properties are load-bearing and property-tested:
//!
//! * **`diff(A, A)` is exactly empty.** Every per-key delta is `x - x`, which
//!   IEEE-754 guarantees is exactly `+0.0`; zero-delta entries are dropped, so
//!   the report has no sections.
//! * **Antisymmetry.** `diff(B, A)` deltas are the bit-exact negations of
//!   `diff(A, B)`: negation is exact and round-to-nearest is symmetric under
//!   it, so this survives the section-total folds too.
//! * **Contributions re-fold to the reported total.** Each section's
//!   `total_delta` is *defined* as the canonical left-to-right fold of its
//!   listed entry deltas — the same trick as the attribution ledger — so
//!   "parts sum to the total" holds with `==`, no epsilon. And because each
//!   category delta is computed as `b - a` of the two runs' ledger-fed
//!   category values, it equals the delta of the two ledgers' totals
//!   bit-exactly.
//!
//! Rendering (text and JSON) goes through [`crate::json::fmt_f64`] and sorted
//! containers only: byte-deterministic for fixed inputs.

use crate::json::{self, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A neutral per-run summary: everything `diff` needs, nothing engine-specific.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunProfile {
    /// Display label ("baseline", "chaos", a file name…).
    pub label: String,
    /// End-to-end campaign makespan, simulated seconds.
    pub makespan_secs: f64,
    /// Total campaign dollars (0 when built from a bare log, which carries no
    /// pricing).
    pub cost_usd: f64,
    /// Latency decomposition, canonical ledger order
    /// (queue_wait/download/align/collect/retry_waste/idle_gap). These sum to
    /// the *turnaround total* over accessions (accession-seconds), not the
    /// makespan — parallelism is the difference.
    pub latency_categories: Vec<(String, f64)>,
    /// Cost decomposition, canonical ledger order
    /// (compute/retry/idle_amortized).
    pub cost_categories: Vec<(String, f64)>,
    /// Per-accession turnaround seconds (submit → completion).
    pub per_accession_secs: Vec<(String, f64)>,
    /// Per-instance attributed seconds (queue waits served + waste observed on
    /// that instance from a bare log; busy seconds when built from a report).
    pub per_instance_secs: Vec<(String, f64)>,
    /// Critical-path edges: "accession/stage" → dominant-stage seconds.
    pub critical_edges: Vec<(String, f64)>,
    /// Event counts per kind.
    pub event_counts: Vec<(String, u64)>,
}

impl RunProfile {
    /// Build a profile from a saved NDJSON event log alone. Makespan is the
    /// last timestamp; queue-wait and retry-waste categories, per-accession
    /// waits and per-instance attributions come from the `queue_wait` /
    /// `worker_crash` events the recorder already emits. Stage categories and
    /// dollars need the full report and stay 0 here.
    pub fn from_event_log(label: &str, ndjson: &str) -> Result<RunProfile, String> {
        let mut makespan = 0.0f64;
        let mut queue_wait = 0.0f64;
        let mut retry_waste = 0.0f64;
        let mut per_accession: BTreeMap<String, f64> = BTreeMap::new();
        let mut per_instance: BTreeMap<String, f64> = BTreeMap::new();
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for (lineno, line) in ndjson.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let event =
                json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let Some(t) = event.get("t").and_then(JsonValue::as_f64) else {
                return Err(format!("line {}: event without numeric \"t\"", lineno + 1));
            };
            makespan = makespan.max(t);
            let kind = event.get("kind").and_then(JsonValue::as_str).unwrap_or("");
            *counts.entry(kind.to_string()).or_insert(0) += 1;
            let secs = match kind {
                "queue_wait" => {
                    let w = event.get("wait_secs").and_then(JsonValue::as_f64).unwrap_or(0.0);
                    queue_wait += w;
                    w
                }
                "worker_crash" => {
                    let w =
                        event.get("wasted_secs").and_then(JsonValue::as_f64).unwrap_or(0.0);
                    retry_waste += w;
                    w
                }
                _ => continue,
            };
            if let Some(acc) = event.get("accession").and_then(JsonValue::as_str) {
                *per_accession.entry(acc.to_string()).or_insert(0.0) += secs;
            }
            if let Some(inst) = event.get("instance") {
                let id = match inst.as_str() {
                    Some(s) => s.to_string(),
                    None => inst.render(),
                };
                *per_instance.entry(id).or_insert(0.0) += secs;
            }
        }
        Ok(RunProfile {
            label: label.to_string(),
            makespan_secs: makespan,
            cost_usd: 0.0,
            latency_categories: vec![
                ("queue_wait".to_string(), queue_wait),
                ("retry_waste".to_string(), retry_waste),
            ],
            cost_categories: Vec::new(),
            per_accession_secs: per_accession.into_iter().collect(),
            per_instance_secs: per_instance.into_iter().collect(),
            critical_edges: Vec::new(),
            event_counts: counts.into_iter().collect(),
        })
    }
}

/// One aligned key's before/after/delta. `delta` is always `b - a` bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffEntry {
    /// The stable key the two runs were aligned on.
    pub name: String,
    /// Value in run A (0 when the key only exists in B).
    pub a: f64,
    /// Value in run B (0 when the key only exists in A).
    pub b: f64,
    /// `b - a`.
    pub delta: f64,
}

impl DiffEntry {
    /// Relative change against run A, `None` when A's value is 0.
    pub fn pct(&self) -> Option<f64> {
        if self.a == 0.0 {
            None
        } else {
            Some(self.delta / self.a * 100.0)
        }
    }
}

/// One waterfall section (latency categories, per-accession, …).
#[derive(Clone, Debug, PartialEq)]
pub struct DiffSection {
    /// Section title as rendered.
    pub title: String,
    /// Non-zero-delta entries, in display order (canonical order for category
    /// sections, |delta|-descending for key sections).
    pub entries: Vec<DiffEntry>,
    /// The canonical left-to-right fold of `entries[*].delta`, in listed
    /// order. Re-folding the listed deltas reproduces it with `==`.
    pub total_delta: f64,
}

impl DiffSection {
    fn build(title: &str, a: &[(String, f64)], b: &[(String, f64)], by_magnitude: bool) -> DiffSection {
        // Align by key. Category sections arrive in canonical ledger order —
        // preserve it (it is part of the fold contract); key sections get
        // sorted by |delta| so the waterfall leads with the biggest mover.
        let mut order: Vec<&str> = Vec::new();
        let mut av: BTreeMap<&str, f64> = BTreeMap::new();
        let mut bv: BTreeMap<&str, f64> = BTreeMap::new();
        for (k, v) in a {
            if !av.contains_key(k.as_str()) {
                order.push(k);
            }
            av.insert(k, *v);
        }
        for (k, v) in b {
            if !av.contains_key(k.as_str()) && !bv.contains_key(k.as_str()) {
                order.push(k);
            }
            bv.insert(k, *v);
        }
        let mut entries: Vec<DiffEntry> = order
            .into_iter()
            .map(|k| {
                let a = av.get(k).copied().unwrap_or(0.0);
                let b = bv.get(k).copied().unwrap_or(0.0);
                DiffEntry { name: k.to_string(), a, b, delta: b - a }
            })
            .filter(|e| e.delta != 0.0 || e.a != e.b)
            .collect();
        if by_magnitude {
            entries.sort_by(|x, y| {
                y.delta
                    .abs()
                    .partial_cmp(&x.delta.abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| x.name.cmp(&y.name))
            });
        }
        let total_delta = entries.iter().fold(0.0, |acc, e| acc + e.delta);
        DiffSection { title: title.to_string(), entries, total_delta }
    }

    /// True when the two runs agreed on every key in this section.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The full differential attribution report between two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffReport {
    /// Run A's label.
    pub label_a: String,
    /// Run B's label.
    pub label_b: String,
    /// `B.makespan - A.makespan`, seconds.
    pub makespan_delta_secs: f64,
    /// `B.cost - A.cost`, dollars.
    pub cost_delta_usd: f64,
    /// Waterfall sections, fixed order: latency categories, cost categories,
    /// per-accession, per-instance, critical-path edges. Empty sections are
    /// omitted.
    pub sections: Vec<DiffSection>,
    /// Event-count deltas per kind (exact integers), non-zero only.
    pub event_count_deltas: Vec<(String, i64)>,
}

/// Diff two run profiles. See the module doc for the exactness contract.
pub fn diff(a: &RunProfile, b: &RunProfile) -> DiffReport {
    let sections = [
        ("latency (accession-seconds by category)", &a.latency_categories, &b.latency_categories, false),
        ("cost (usd by category)", &a.cost_categories, &b.cost_categories, false),
        ("per accession (turnaround secs)", &a.per_accession_secs, &b.per_accession_secs, true),
        ("per instance (attributed secs)", &a.per_instance_secs, &b.per_instance_secs, true),
        ("critical-path edges (dominant secs)", &a.critical_edges, &b.critical_edges, true),
    ]
    .into_iter()
    .map(|(title, sa, sb, by_mag)| DiffSection::build(title, sa, sb, by_mag))
    .filter(|s| !s.is_empty())
    .collect();

    let mut kinds: BTreeMap<&str, (i64, i64)> = BTreeMap::new();
    for (k, n) in &a.event_counts {
        kinds.entry(k).or_insert((0, 0)).0 = *n as i64;
    }
    for (k, n) in &b.event_counts {
        kinds.entry(k).or_insert((0, 0)).1 = *n as i64;
    }
    let event_count_deltas = kinds
        .into_iter()
        .filter(|&(_, (na, nb))| na != nb)
        .map(|(k, (na, nb))| (k.to_string(), nb - na))
        .collect();

    DiffReport {
        label_a: a.label.clone(),
        label_b: b.label.clone(),
        makespan_delta_secs: b.makespan_secs - a.makespan_secs,
        cost_delta_usd: b.cost_usd - a.cost_usd,
        sections,
        event_count_deltas,
    }
}

impl DiffReport {
    /// True iff the two runs were indistinguishable on every compared surface.
    pub fn is_empty(&self) -> bool {
        self.makespan_delta_secs == 0.0
            && self.cost_delta_usd == 0.0
            && self.sections.is_empty()
            && self.event_count_deltas.is_empty()
    }

    /// Byte-deterministic waterfall table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "run diff: {} -> {}", self.label_a, self.label_b);
        if self.is_empty() {
            out.push_str("  runs are identical on every compared surface\n");
            return out;
        }
        let _ = writeln!(
            out,
            "  makespan {:>14}s    cost {:>12}$",
            signed(self.makespan_delta_secs),
            signed(self.cost_delta_usd)
        );
        for s in &self.sections {
            let _ = writeln!(out, "  {} [total {}]", s.title, signed(s.total_delta));
            for e in &s.entries {
                let pct = match e.pct() {
                    Some(p) => format!("{}%", signed(p)),
                    None => "new".to_string(),
                };
                let _ = writeln!(
                    out,
                    "    {:<28} {:>14} -> {:>14}  {:>14}  {:>10}",
                    e.name,
                    json::fmt_f64(e.a),
                    json::fmt_f64(e.b),
                    signed(e.delta),
                    pct
                );
            }
        }
        if !self.event_count_deltas.is_empty() {
            out.push_str("  event counts\n");
            for (k, d) in &self.event_count_deltas {
                let _ = writeln!(out, "    {k:<28} {d:>+14}");
            }
        }
        out
    }

    /// Byte-deterministic JSON document mirroring the text report.
    pub fn render_json(&self) -> String {
        let sections: Vec<JsonValue> = self
            .sections
            .iter()
            .map(|s| {
                let entries: Vec<JsonValue> = s
                    .entries
                    .iter()
                    .map(|e| {
                        JsonValue::obj(vec![
                            ("name", JsonValue::from(e.name.as_str())),
                            ("a", JsonValue::from(e.a)),
                            ("b", JsonValue::from(e.b)),
                            ("delta", JsonValue::from(e.delta)),
                        ])
                    })
                    .collect();
                JsonValue::obj(vec![
                    ("title", JsonValue::from(s.title.as_str())),
                    ("total_delta", JsonValue::from(s.total_delta)),
                    ("entries", JsonValue::Arr(entries)),
                ])
            })
            .collect();
        let counts: Vec<JsonValue> = self
            .event_count_deltas
            .iter()
            .map(|(k, d)| {
                JsonValue::obj(vec![
                    ("kind", JsonValue::from(k.as_str())),
                    ("delta", JsonValue::from(*d)),
                ])
            })
            .collect();
        let doc = JsonValue::obj(vec![
            ("a", JsonValue::from(self.label_a.as_str())),
            ("b", JsonValue::from(self.label_b.as_str())),
            ("makespan_delta_secs", JsonValue::from(self.makespan_delta_secs)),
            ("cost_delta_usd", JsonValue::from(self.cost_delta_usd)),
            ("sections", JsonValue::Arr(sections)),
            ("event_count_deltas", JsonValue::Arr(counts)),
        ]);
        let mut out = doc.render();
        out.push('\n');
        out
    }
}

/// Signed canonical float: an explicit `+` on positives so waterfalls read as
/// waterfalls (`+38.2`, `-12.07`).
fn signed(v: f64) -> String {
    let s = json::fmt_f64(v);
    if v > 0.0 {
        format!("+{s}")
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(label: &str, scale: f64) -> RunProfile {
        RunProfile {
            label: label.to_string(),
            makespan_secs: 1000.0 * scale,
            cost_usd: 2.5 * scale,
            latency_categories: vec![
                ("queue_wait".into(), 40.0 * scale),
                ("align".into(), 300.0),
                ("retry_waste".into(), 17.3 * (scale - 1.0).max(0.0)),
            ],
            cost_categories: vec![("compute".into(), 2.0), ("retry".into(), 0.5 * scale)],
            per_accession_secs: vec![("SRR1".into(), 100.0 * scale), ("SRR2".into(), 90.0)],
            per_instance_secs: vec![("0".into(), 55.0 * scale)],
            critical_edges: vec![("SRR1/align".into(), 80.0 * scale)],
            event_counts: vec![("queue_wait".into(), (2.0 * scale) as u64)],
        }
    }

    #[test]
    fn diff_of_identical_runs_is_exactly_empty() {
        let a = profile("a", 1.37);
        let d = diff(&a, &a);
        assert!(d.is_empty(), "{d:?}");
        assert!(d.render_text().contains("identical"), "{}", d.render_text());
    }

    #[test]
    fn deltas_negate_under_argument_swap() {
        let (a, b) = (profile("a", 1.0), profile("b", 1.9));
        let (ab, ba) = (diff(&a, &b), diff(&b, &a));
        assert_eq!(ab.makespan_delta_secs, -ba.makespan_delta_secs);
        assert_eq!(ab.cost_delta_usd, -ba.cost_delta_usd);
        assert_eq!(ab.sections.len(), ba.sections.len());
        for (sa, sb) in ab.sections.iter().zip(&ba.sections) {
            assert_eq!(sa.total_delta, -sb.total_delta, "{}", sa.title);
            for (ea, eb) in sa.entries.iter().zip(&sb.entries) {
                assert_eq!(ea.name, eb.name);
                assert_eq!(ea.delta, -eb.delta, "{}", ea.name);
            }
        }
        for ((ka, da), (kb, db)) in ab.event_count_deltas.iter().zip(&ba.event_count_deltas) {
            assert_eq!(ka, kb);
            assert_eq!(*da, -db);
        }
    }

    #[test]
    fn section_totals_refold_from_listed_entries() {
        let d = diff(&profile("a", 1.0), &profile("b", 2.2));
        for s in &d.sections {
            let refold = s.entries.iter().fold(0.0, |acc, e| acc + e.delta);
            assert_eq!(refold, s.total_delta, "section {} must refold bit-exactly", s.title);
        }
    }

    #[test]
    fn keys_unique_to_one_side_appear_with_zero_on_the_other() {
        let mut a = profile("a", 1.0);
        let mut b = profile("b", 1.0);
        a.per_accession_secs.push(("SRR_ONLY_A".into(), 7.0));
        b.per_accession_secs.push(("SRR_ONLY_B".into(), 9.0));
        let d = diff(&a, &b);
        let sec = d
            .sections
            .iter()
            .find(|s| s.title.starts_with("per accession"))
            .expect("per-accession section");
        let only_a = sec.entries.iter().find(|e| e.name == "SRR_ONLY_A").unwrap();
        assert_eq!((only_a.a, only_a.b, only_a.delta), (7.0, 0.0, -7.0));
        let only_b = sec.entries.iter().find(|e| e.name == "SRR_ONLY_B").unwrap();
        assert_eq!((only_b.a, only_b.b, only_b.delta), (0.0, 9.0, 9.0));
        assert_eq!(only_b.pct(), None, "new keys have no baseline to percent against");
    }

    #[test]
    fn key_sections_lead_with_the_biggest_mover() {
        let d = diff(&profile("a", 1.0), &profile("b", 3.0));
        let sec = d
            .sections
            .iter()
            .find(|s| s.title.starts_with("per accession"))
            .unwrap();
        assert_eq!(sec.entries[0].name, "SRR1", "SRR1 moved 200s, SRR2 did not move");
        assert!(sec.entries.iter().all(|e| e.name != "SRR2"), "zero-delta keys are dropped");
    }

    #[test]
    fn from_event_log_extracts_waits_waste_and_counts() {
        let log = concat!(
            "{\"t\":5,\"kind\":\"queue_wait\",\"accession\":\"SRR1\",\"instance\":0,\"wait_secs\":5}\n",
            "{\"t\":9,\"kind\":\"queue_wait\",\"accession\":\"SRR2\",\"instance\":1,\"wait_secs\":2.5}\n",
            "{\"t\":40,\"kind\":\"worker_crash\",\"accession\":\"SRR1\",\"instance\":0,\"wasted_secs\":11}\n",
            "{\"t\":90,\"kind\":\"scale_in\",\"instance\":1,\"pending\":0}\n",
        );
        let p = RunProfile::from_event_log("chaos", log).unwrap();
        assert_eq!(p.makespan_secs, 90.0);
        assert_eq!(p.latency_categories[0], ("queue_wait".to_string(), 7.5));
        assert_eq!(p.latency_categories[1], ("retry_waste".to_string(), 11.0));
        assert_eq!(p.per_accession_secs[0], ("SRR1".to_string(), 16.0));
        assert_eq!(p.per_instance_secs, vec![("0".to_string(), 16.0), ("1".to_string(), 2.5)]);
        assert_eq!(
            p.event_counts,
            vec![
                ("queue_wait".to_string(), 2),
                ("scale_in".to_string(), 1),
                ("worker_crash".to_string(), 1)
            ]
        );
        let p2 = RunProfile::from_event_log("chaos", log).unwrap();
        assert_eq!(diff(&p, &p2).is_empty(), true, "same log twice diffs empty");
    }

    #[test]
    fn renders_are_deterministic_and_label_both_runs() {
        let d = diff(&profile("base", 1.0), &profile("cand", 1.4));
        assert_eq!(d.render_text(), d.render_text());
        assert_eq!(d.render_json(), d.render_json());
        assert!(d.render_text().starts_with("run diff: base -> cand"));
        assert!(d.render_json().contains("\"a\":\"base\""));
    }
}
