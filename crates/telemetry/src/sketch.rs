//! Deterministic, mergeable streaming quantile sketch.
//!
//! A DDSketch-style log-bucketed sketch with *relative* error guarantee α: every
//! quantile estimate `e` for a true value `v` satisfies `|e - v| <= α·v`. Values
//! land in geometric buckets keyed by `ceil(ln(v) / ln(γ))` with
//! `γ = (1 + α)/(1 - α)`, so the sketch state is a pure function of the observation
//! *multiset* — no stream-order dependence, no randomized compaction. That choice
//! (over literal KLL/GK, whose compaction schedules depend on arrival order) is
//! what makes [`QuantileSketch::merge`] exactly associative and commutative at the
//! byte level: merging is pointwise `u64` bucket addition.
//!
//! The sketch deliberately tracks no `sum`: floating-point addition is not
//! associative, and a sum field would break the byte-identical-merge contract.
//! Callers that need a sum keep a [`crate::Histogram`] alongside (the registry
//! does exactly that).
//!
//! Memory is `O(log(max/min) / α)` buckets — unbounded in theory, but for
//! sim-time durations (1e-9 s .. 1e5 s) at α = 0.01 that is under ~1700 buckets,
//! and campaigns observe a far narrower band in practice.

use crate::json::JsonValue;
use std::collections::BTreeMap;

/// Values below this are counted as exact zeros (one dedicated counter) rather
/// than log-bucketed: `ln` diverges at 0 and sim-time durations below a
/// nanosecond are indistinguishable from it.
const ZERO_EPS: f64 = 1e-9;

/// A deterministic, mergeable streaming quantile sketch with relative error
/// bound `alpha` (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    gamma: f64,
    ln_gamma: f64,
    zero_count: u64,
    buckets: BTreeMap<i32, u64>,
    count: u64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// A sketch with relative error bound `alpha` (must be in `(0, 1)`).
    pub fn new(alpha: f64) -> QuantileSketch {
        assert!(
            alpha > 0.0 && alpha < 1.0 && alpha.is_finite(),
            "sketch alpha must be in (0, 1), got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma,
            ln_gamma: gamma.ln(),
            zero_count: 0,
            buckets: BTreeMap::new(),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured relative error bound.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Record one observation (must be finite and non-negative — every signal we
    /// sketch is a duration or a dollar amount).
    pub fn observe(&mut self, v: f64) {
        assert!(v.is_finite() && v >= 0.0, "sketch observations must be finite and >= 0, got {v}");
        if v < ZERO_EPS {
            self.zero_count += 1;
        } else {
            let key = (v.ln() / self.ln_gamma).ceil() as i32;
            *self.buckets.entry(key).or_insert(0) += 1;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Estimated quantile `q` in `[0, 1]`, within relative error `alpha` of the
    /// exact rank-`⌊q·(n-1)⌋` order statistic, clamped to the observed
    /// `[min, max]`. Returns 0 when empty (same edge contract as
    /// [`crate::Histogram::quantile`]).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1], got {q}");
        if self.count == 0 {
            return 0.0;
        }
        // 0-based rank of the order statistic we estimate.
        let rank = (q * (self.count - 1) as f64).floor() as u64;
        if rank < self.zero_count {
            return 0.0;
        }
        let mut cum = self.zero_count;
        for (&key, &c) in &self.buckets {
            cum += c;
            if cum > rank {
                // Midpoint of the bucket (γ^(k-1), γ^k]: 2γ^k / (γ + 1).
                let est = 2.0 * self.gamma.powi(key) / (self.gamma + 1.0);
                return est.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merge another sketch into this one. Both must share the same `alpha`.
    ///
    /// Because the state is a pure function of the observation multiset, merge is
    /// exactly associative and commutative: `(a ∪ b) ∪ c` and `a ∪ (b ∪ c)`
    /// produce byte-identical serialized state (property-tested in
    /// `tests/tests/slo_props.rs`).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.alpha.to_bits() == other.alpha.to_bits(),
            "cannot merge sketches with different alpha ({} vs {})",
            self.alpha,
            other.alpha
        );
        self.zero_count += other.zero_count;
        for (&key, &c) in &other.buckets {
            *self.buckets.entry(key).or_insert(0) += c;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serialize to the stable JSON shape (`alpha`, `count`, `zero_count`,
    /// `buckets` as a sorted `key -> count` object, `min`, `max`). Byte-identical
    /// for equal observation multisets.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("alpha", JsonValue::from(self.alpha)),
            ("count", JsonValue::from(self.count)),
            ("zero_count", JsonValue::from(self.zero_count)),
            (
                "buckets",
                JsonValue::Obj(
                    self.buckets
                        .iter()
                        .map(|(&k, &c)| (k.to_string(), JsonValue::from(c)))
                        .collect(),
                ),
            ),
            ("min", JsonValue::from(self.min())),
            ("max", JsonValue::from(self.max())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
        sorted[rank]
    }

    #[test]
    fn empty_sketch_reports_zeros() {
        let s = QuantileSketch::new(0.01);
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let alpha = 0.01;
        let mut s = QuantileSketch::new(alpha);
        let mut vals: Vec<f64> = (0..1000).map(|i| 0.05 + 0.37 * i as f64).collect();
        for &v in &vals {
            s.observe(v);
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&vals, q);
            let est = s.quantile(q);
            assert!(
                (est - exact).abs() <= alpha * exact + 1e-12,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn zeros_are_exact() {
        let mut s = QuantileSketch::new(0.05);
        for _ in 0..10 {
            s.observe(0.0);
        }
        s.observe(100.0);
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.max(), 100.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = QuantileSketch::new(0.02);
        let mut b = QuantileSketch::new(0.02);
        let mut whole = QuantileSketch::new(0.02);
        for i in 0..100 {
            let v = 1.0 + i as f64 * 0.83;
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            whole.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.to_json().render(), whole.to_json().render());
    }

    #[test]
    fn serialization_is_order_independent() {
        let mut fwd = QuantileSketch::new(0.01);
        let mut rev = QuantileSketch::new(0.01);
        let vals: Vec<f64> = (0..200).map(|i| 0.01 * (i * i) as f64 + 0.5).collect();
        for &v in &vals {
            fwd.observe(v);
        }
        for &v in vals.iter().rev() {
            rev.observe(v);
        }
        assert_eq!(fwd.to_json().render(), rev.to_json().render());
    }

    #[test]
    #[should_panic(expected = "different alpha")]
    fn merge_rejects_alpha_mismatch() {
        let mut a = QuantileSketch::new(0.01);
        let b = QuantileSketch::new(0.02);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_observation_panics() {
        let mut s = QuantileSketch::new(0.01);
        s.observe(-1.0);
    }
}
