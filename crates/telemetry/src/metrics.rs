//! Named counters, gauges, and fixed-bucket histograms.
//!
//! Registries are `BTreeMap`-keyed so serialization order is the sorted metric
//! name — one of the pieces of the crate-wide determinism contract. Histograms use
//! fixed, caller-supplied bucket bounds (Prometheus-style cumulative-free layout):
//! quantiles are estimated by linear interpolation inside the covering bucket and
//! clamped to the observed `[min, max]`, which keeps them pure functions of the
//! observation multiset.

use crate::json::JsonValue;
use crate::sketch::QuantileSketch;
use std::collections::BTreeMap;

/// Default bucket bounds for duration-valued histograms, in seconds. Spans the
/// sub-second retry backoffs up to multi-hour campaign makespans.
pub const SECS_BUCKETS: &[f64] = &[
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0,
    3600.0, 7200.0, 14400.0,
];

/// Default bucket bounds for rate/fraction-valued histograms in `[0, 1]`
/// (e.g. mapping rate at the early-stop decision point).
pub const RATE_BUCKETS: &[f64] = &[0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0];

/// A fixed-bucket histogram.
///
/// `bounds` are strictly increasing inclusive upper bounds; an implicit overflow
/// bucket catches everything above the last bound.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram with the given upper bounds (must be finite, strictly
    /// increasing, and non-empty).
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must be strictly increasing");
        }
        assert!(bounds.iter().all(|b| b.is_finite()), "histogram bounds must be finite");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation (must be finite).
    pub fn observe(&mut self, v: f64) {
        assert!(v.is_finite(), "histogram observations must be finite, got {v}");
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The inclusive upper bounds this histogram was created with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; `len(bounds) + 1`, last is overflow.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Estimated quantile `q` in `[0, 1]`: linear interpolation inside the covering
    /// bucket, clamped to the observed `[min, max]`.
    ///
    /// **Empty-histogram contract (define, not assert):** with zero observations
    /// every quantile is 0.0, matching [`Histogram::min`]/[`Histogram::max`] and
    /// [`crate::sketch::QuantileSketch::quantile`]. Callers that must distinguish
    /// "no data" from "all zeros" check [`Histogram::count`] first; report
    /// renderers rely on the total-function behavior to stay panic-free on
    /// campaigns where a stage never ran.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1], got {q}");
        if self.count == 0 {
            return 0.0;
        }
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cum as f64;
            cum += c;
            if c > 0 && cum as f64 >= target {
                let lo = if i == 0 { self.min } else { self.bounds[i - 1].max(self.min) };
                let hi = if i < self.bounds.len() { self.bounds[i].min(self.max) } else { self.max };
                let hi = hi.max(lo);
                let frac = ((target - prev) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one (parity with
    /// [`QuantileSketch::merge`]). Both must have identical bucket bounds;
    /// mismatched bounds panic — silently re-bucketing would corrupt quantiles.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.bounds == other.bounds,
            "cannot merge histograms with different bounds ({:?} vs {:?})",
            self.bounds,
            other.bounds
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serialize to the stable JSON shape (`bounds`, `counts`, `count`, `sum`,
    /// `min`, `max`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("bounds", JsonValue::Arr(self.bounds.iter().map(|&b| JsonValue::from(b)).collect())),
            ("counts", JsonValue::Arr(self.counts.iter().map(|&c| JsonValue::from(c)).collect())),
            ("count", JsonValue::from(self.count)),
            ("sum", JsonValue::from(self.sum)),
            ("min", JsonValue::from(self.min())),
            ("max", JsonValue::from(self.max())),
        ])
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Keys live in `BTreeMap`s so iteration (and hence serialization) order is the
/// sorted name — stable across runs by construction.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    sketches: BTreeMap<String, QuantileSketch>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `n` to counter `name` (created at zero on first touch).
    pub fn counter_add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Set gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Record `v` into histogram `name`, creating it with `bounds` on first touch.
    /// Later calls ignore `bounds` — a histogram's buckets are fixed at creation.
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.histograms.entry(name.to_string()).or_insert_with(|| Histogram::new(bounds)).observe(v);
    }

    /// Record `v` into quantile sketch `name`, creating it with relative error
    /// bound `alpha` on first touch. Later calls ignore `alpha` — a sketch's
    /// resolution is fixed at creation, like histogram bounds.
    pub fn sketch_observe(&mut self, name: &str, alpha: f64, v: f64) {
        self.sketches
            .entry(name.to_string())
            .or_insert_with(|| QuantileSketch::new(alpha))
            .observe(v);
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if any observation landed in it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in sorted-name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in sorted-name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in sorted-name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Quantile sketch by name, if any observation landed in it.
    pub fn sketch(&self, name: &str) -> Option<&QuantileSketch> {
        self.sketches.get(name)
    }

    /// All quantile sketches in sorted-name order.
    pub fn sketches(&self) -> impl Iterator<Item = (&str, &QuantileSketch)> {
        self.sketches.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serialize the whole registry to the stable JSON shape.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            (
                "counters",
                JsonValue::Obj(
                    self.counters.iter().map(|(k, &v)| (k.clone(), JsonValue::from(v))).collect(),
                ),
            ),
            (
                "gauges",
                JsonValue::Obj(
                    self.gauges.iter().map(|(k, &v)| (k.clone(), JsonValue::from(v))).collect(),
                ),
            ),
            (
                "histograms",
                JsonValue::Obj(
                    self.histograms.iter().map(|(k, v)| (k.clone(), v.to_json())).collect(),
                ),
            ),
            (
                "sketches",
                JsonValue::Obj(
                    self.sketches.iter().map(|(k, v)| (k.clone(), v.to_json())).collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_moments() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.5, 3.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 16.5).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 10.0);
    }

    #[test]
    fn quantiles_are_ordered_and_clamped() {
        let mut h = Histogram::new(SECS_BUCKETS);
        for i in 0..100 {
            h.observe(0.1 + 0.01 * i as f64);
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 >= h.min() && p99 <= h.max());
        // Roughly the median of a uniform [0.1, 1.09] sweep.
        assert!((0.3..0.9).contains(&p50), "{p50}");
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    /// The empty-quantile edge is *defined*, not asserted: every quantile of an
    /// empty histogram is 0.0 — the whole `[0, 1]` domain, not just p50.
    #[test]
    fn empty_histogram_quantile_is_total_and_zero() {
        let h = Histogram::new(SECS_BUCKETS);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "empty quantile({q}) must be 0.0");
        }
    }

    #[test]
    fn merge_equals_single_histogram() {
        let mut a = Histogram::new(&[1.0, 2.0, 4.0]);
        let mut b = Histogram::new(&[1.0, 2.0, 4.0]);
        let mut whole = Histogram::new(&[1.0, 2.0, 4.0]);
        for (i, v) in [0.5, 1.5, 1.5, 3.0, 10.0, 0.1].iter().enumerate() {
            if i % 2 == 0 {
                a.observe(*v);
            } else {
                b.observe(*v);
            }
            whole.observe(*v);
        }
        a.merge(&b);
        assert_eq!(a.to_json().render(), whole.to_json().render());
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new(&[1.0, 2.0, 4.0]));
        assert_eq!(a.to_json().render(), whole.to_json().render());
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merge_rejects_bounds_mismatch() {
        let mut a = Histogram::new(&[1.0]);
        a.merge(&Histogram::new(&[2.0]));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_observation_panics() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
    }

    #[test]
    fn registry_orders_names_deterministically() {
        let mut r = MetricsRegistry::new();
        r.counter_add("zeta", 1);
        r.counter_add("alpha", 2);
        r.gauge_set("mid", 0.5);
        r.observe("lat", &[1.0], 0.3);
        let json = r.to_json().render();
        let alpha = json.find("\"alpha\"").unwrap();
        let zeta = json.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "counters must serialize in sorted order: {json}");
        assert_eq!(r.counter("alpha"), 2);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("mid"), Some(0.5));
        assert_eq!(r.histogram("lat").unwrap().count(), 1);
    }

    #[test]
    fn repeated_observe_ignores_new_bounds() {
        let mut r = MetricsRegistry::new();
        r.observe("h", &[1.0, 2.0], 0.5);
        r.observe("h", &[99.0], 1.5);
        let h = r.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.to_json().render().matches("bounds").count(), 1);
    }
}
