//! Campaign-level analysis over the span tree: per-stage latency distributions and
//! the critical path.
//!
//! The extractor answers the question behind the paper's Fig. 4 accounting: *which
//! stage dominates each accession's makespan, and where does fleet time go?* It
//! walks completed `job` spans (outcome `ok`), buckets their direct children (the
//! pipeline stages) into fixed-bucket histograms, and reports the dominant stage
//! per accession plus the fleet-level share of every stage.

use crate::json::JsonValue;
use crate::metrics::{Histogram, SECS_BUCKETS};
use crate::recorder::Recorder;
use crate::span::SpanRecord;
use crate::SCHEMA_VERSION;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write;

/// Latency distribution of one pipeline stage across completed jobs.
#[derive(Clone, Debug, PartialEq)]
pub struct StageStats {
    /// Stage name (a `job` child span name: `prefetch`, `align`, ...).
    pub stage: String,
    /// Completed jobs contributing a sample.
    pub count: u64,
    /// Total seconds across those jobs.
    pub total_secs: f64,
    /// Median estimate, seconds.
    pub p50: f64,
    /// 95th percentile estimate, seconds.
    pub p95: f64,
    /// 99th percentile estimate, seconds.
    pub p99: f64,
}

/// Critical-path entry for one accession.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessionPath {
    /// Accession id.
    pub accession: String,
    /// Total pipeline seconds for this accession (sum of its stage spans).
    pub total_secs: f64,
    /// The stage that took the longest.
    pub dominant_stage: String,
    /// Seconds spent in that stage.
    pub dominant_secs: f64,
}

/// Fleet-level critical-path breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// One entry per completed accession, sorted by accession id.
    pub per_accession: Vec<AccessionPath>,
    /// `(stage, fraction of total stage time)`, sorted by stage name.
    pub stage_share: Vec<(String, f64)>,
    /// The stage with the largest total time across the campaign.
    pub dominant_stage: String,
    /// How many accessions that stage dominates.
    pub dominant_accessions: usize,
    /// Sum of all `job` span durations (worker-busy seconds), every outcome.
    pub fleet_busy_secs: f64,
    /// Sum of all `instance` span durations (fleet uptime seconds).
    pub fleet_uptime_secs: f64,
}

/// The telemetry section of a campaign report.
#[derive(Clone, Debug)]
pub struct CampaignTelemetry {
    /// Spans recorded.
    pub n_spans: usize,
    /// Events recorded.
    pub n_events: usize,
    /// Per-stage latency distributions, sorted by stage name.
    pub stage_stats: Vec<StageStats>,
    /// Critical-path breakdown.
    pub critical_path: CriticalPath,
    /// The full structured event log, NDJSON. Byte-identical across same-seed runs.
    pub event_log: String,
    /// The metrics registry serialized to its stable JSON shape.
    pub metrics_json: String,
    /// `(name, count, p50, p95, p99)` for every registry histogram, sorted by name.
    pub histogram_summaries: Vec<(String, u64, f64, f64, f64)>,
    /// `(name, count, p50, p95, p99)` for every registry quantile sketch, sorted
    /// by name (the SLO engine's streaming percentiles).
    pub sketch_summaries: Vec<(String, u64, f64, f64, f64)>,
    /// Chrome/Perfetto trace-event JSON of the span tree + event log — load it
    /// at `ui.perfetto.dev` or `chrome://tracing`. Byte-identical across
    /// same-seed runs.
    pub perfetto_json: String,
    /// OpenMetrics text exposition of the metrics registry. Byte-identical
    /// across same-seed runs.
    pub openmetrics_text: String,
}

/// Summarize everything a [`Recorder`] captured into a [`CampaignTelemetry`].
pub fn summarize(rec: &Recorder) -> CampaignTelemetry {
    let spans = rec.spans();
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in &spans {
        children.entry(s.parent).or_default().push(s);
    }

    let mut stage_hists: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut stage_totals: BTreeMap<String, f64> = BTreeMap::new();
    let mut per_accession: Vec<AccessionPath> = Vec::new();
    let mut dominated: BTreeMap<String, usize> = BTreeMap::new();
    let mut seen_accessions: BTreeSet<String> = BTreeSet::new();
    let mut fleet_busy_secs = 0.0;
    let mut fleet_uptime_secs = 0.0;

    for s in &spans {
        match s.name.as_str() {
            "job" => fleet_busy_secs += s.duration_secs(),
            "instance" => fleet_uptime_secs += s.duration_secs(),
            _ => {}
        }
    }

    for job in spans.iter().filter(|s| s.name == "job" && s.attr("outcome") == Some("ok")) {
        let Some(accession) = job.attr("accession") else { continue };
        // Duplicate completions re-run the same work; only the first counts.
        if !seen_accessions.insert(accession.to_string()) {
            continue;
        }
        let mut stages: Vec<&SpanRecord> = children.get(&job.id).cloned().unwrap_or_default();
        stages.sort_by(|a, b| {
            a.start_secs.partial_cmp(&b.start_secs).unwrap().then(a.id.cmp(&b.id))
        });
        if stages.is_empty() {
            continue;
        }
        let mut total = 0.0;
        let mut dominant: (&str, f64) = ("", f64::NEG_INFINITY);
        for st in &stages {
            let d = st.duration_secs();
            total += d;
            stage_hists
                .entry(st.name.clone())
                .or_insert_with(|| Histogram::new(SECS_BUCKETS))
                .observe(d);
            *stage_totals.entry(st.name.clone()).or_insert(0.0) += d;
            if d > dominant.1 {
                dominant = (st.name.as_str(), d);
            }
        }
        *dominated.entry(dominant.0.to_string()).or_insert(0) += 1;
        per_accession.push(AccessionPath {
            accession: accession.to_string(),
            total_secs: total,
            dominant_stage: dominant.0.to_string(),
            dominant_secs: dominant.1,
        });
    }
    per_accession.sort_by(|a, b| a.accession.cmp(&b.accession));

    let grand_total: f64 = stage_totals.values().sum();
    let stage_share: Vec<(String, f64)> = stage_totals
        .iter()
        .map(|(k, &v)| (k.clone(), if grand_total > 0.0 { v / grand_total } else { 0.0 }))
        .collect();
    let dominant_stage = stage_totals
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(k, _)| k.clone())
        .unwrap_or_default();
    let dominant_accessions = dominated.get(&dominant_stage).copied().unwrap_or(0);

    let stage_stats: Vec<StageStats> = stage_hists
        .iter()
        .map(|(name, h)| StageStats {
            stage: name.clone(),
            count: h.count(),
            total_secs: stage_totals[name],
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
        })
        .collect();

    let metrics = rec.metrics();
    let histogram_summaries = metrics
        .histograms()
        .map(|(name, h)| (name.to_string(), h.count(), h.p50(), h.p95(), h.p99()))
        .collect();
    let sketch_summaries = metrics
        .sketches()
        .map(|(name, s)| (name.to_string(), s.count(), s.p50(), s.p95(), s.p99()))
        .collect();

    CampaignTelemetry {
        n_spans: spans.len(),
        n_events: rec.n_events(),
        stage_stats,
        critical_path: CriticalPath {
            per_accession,
            stage_share,
            dominant_stage,
            dominant_accessions,
            fleet_busy_secs,
            fleet_uptime_secs,
        },
        event_log: rec.events_ndjson(),
        metrics_json: rec.metrics_json(),
        histogram_summaries,
        sketch_summaries,
        perfetto_json: crate::export::perfetto_trace_from(rec),
        openmetrics_text: crate::export::openmetrics_from(rec),
    }
}

impl CampaignTelemetry {
    /// Render the human-readable telemetry section of a campaign report: the
    /// per-stage latency table and the critical-path breakdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let w = &mut out;
        let _ = writeln!(w, "telemetry: {} spans, {} events", self.n_spans, self.n_events);
        let _ = writeln!(
            w,
            "  {:<14} {:>5} {:>10} {:>9} {:>9} {:>9}",
            "stage", "jobs", "total[s]", "p50[s]", "p95[s]", "p99[s]"
        );
        for s in &self.stage_stats {
            let _ = writeln!(
                w,
                "  {:<14} {:>5} {:>10.1} {:>9.2} {:>9.2} {:>9.2}",
                s.stage, s.count, s.total_secs, s.p50, s.p95, s.p99
            );
        }
        let cp = &self.critical_path;
        let _ = writeln!(
            w,
            "critical path: '{}' dominates {}/{} accessions",
            cp.dominant_stage,
            cp.dominant_accessions,
            cp.per_accession.len()
        );
        let share = cp
            .stage_share
            .iter()
            .map(|(k, v)| format!("{k} {:.1}%", v * 100.0))
            .collect::<Vec<_>>()
            .join(" | ");
        let _ = writeln!(w, "stage share of pipeline time: {share}");
        if cp.fleet_uptime_secs > 0.0 {
            let _ = writeln!(
                w,
                "fleet: busy {:.1}s of {:.1}s up ({:.1}% utilized)",
                cp.fleet_busy_secs,
                cp.fleet_uptime_secs,
                100.0 * cp.fleet_busy_secs / cp.fleet_uptime_secs
            );
        }
        for (name, count, p50, p95, p99) in &self.histogram_summaries {
            let _ = writeln!(
                w,
                "  hist {:<26} n={:<5} p50={:<10.4} p95={:<10.4} p99={:.4}",
                name, count, p50, p95, p99
            );
        }
        for (name, count, p50, p95, p99) in &self.sketch_summaries {
            let _ = writeln!(
                w,
                "  sketch {:<24} n={:<5} p50={:<10.4} p95={:<10.4} p99={:.4}",
                name, count, p50, p95, p99
            );
        }
        out
    }

    /// Serialize the summary (not the raw event log) to the stable JSON document
    /// shape pinned by `golden/telemetry_schema.json`.
    pub fn to_json(&self) -> String {
        let stages = JsonValue::Arr(
            self.stage_stats
                .iter()
                .map(|s| {
                    JsonValue::obj(vec![
                        ("stage", JsonValue::from(s.stage.as_str())),
                        ("count", JsonValue::from(s.count)),
                        ("total_secs", JsonValue::from(s.total_secs)),
                        ("p50", JsonValue::from(s.p50)),
                        ("p95", JsonValue::from(s.p95)),
                        ("p99", JsonValue::from(s.p99)),
                    ])
                })
                .collect(),
        );
        let cp = &self.critical_path;
        let critical_path = JsonValue::obj(vec![
            ("dominant_stage", JsonValue::from(cp.dominant_stage.as_str())),
            ("dominant_accessions", JsonValue::from(cp.dominant_accessions)),
            ("fleet_busy_secs", JsonValue::from(cp.fleet_busy_secs)),
            ("fleet_uptime_secs", JsonValue::from(cp.fleet_uptime_secs)),
            (
                "stage_share",
                JsonValue::Obj(
                    cp.stage_share
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::from(*v)))
                        .collect(),
                ),
            ),
            (
                "per_accession",
                JsonValue::Arr(
                    cp.per_accession
                        .iter()
                        .map(|a| {
                            JsonValue::obj(vec![
                                ("accession", JsonValue::from(a.accession.as_str())),
                                ("total_secs", JsonValue::from(a.total_secs)),
                                ("dominant_stage", JsonValue::from(a.dominant_stage.as_str())),
                                ("dominant_secs", JsonValue::from(a.dominant_secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        // `metrics_json` is already rendered; rebuild the document around it so the
        // registry embeds as an object rather than a double-encoded string.
        let mut out = String::new();
        let head = JsonValue::obj(vec![
            ("schema_version", JsonValue::from(u64::from(SCHEMA_VERSION))),
            ("n_spans", JsonValue::from(self.n_spans)),
            ("n_events", JsonValue::from(self.n_events)),
            ("stages", stages),
            ("critical_path", critical_path),
        ])
        .render();
        out.push_str(&head[..head.len() - 1]);
        out.push_str(",\"metrics\":");
        out.push_str(&self.metrics_json);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn sample_recorder() -> Recorder {
        let r = Recorder::new();
        let root = r.span_start("campaign", SpanId::NONE, 0.0);
        let inst = r.span_start("instance", root, 0.0);
        for (i, accession) in ["SRR1", "SRR2"].iter().enumerate() {
            let t0 = 10.0 * i as f64;
            let job = r.span_closed(
                "job",
                inst,
                t0,
                t0 + 8.0,
                &[("accession", accession.to_string()), ("outcome", "ok".to_string())],
            );
            r.span_closed("prefetch", job, t0, t0 + 1.0, &[]);
            r.span_closed("align", job, t0 + 1.0, t0 + 7.5, &[]);
            r.span_closed("collect", job, t0 + 7.5, t0 + 8.0, &[]);
        }
        r.event(1.0, "retry", vec![("op", JsonValue::from("s3_get"))]);
        r.span_end(inst, 20.0);
        r.span_end(root, 20.0);
        r
    }

    #[test]
    fn critical_path_finds_the_dominant_stage() {
        let t = summarize(&sample_recorder());
        assert_eq!(t.critical_path.dominant_stage, "align");
        assert_eq!(t.critical_path.dominant_accessions, 2);
        assert_eq!(t.critical_path.per_accession.len(), 2);
        assert_eq!(t.critical_path.per_accession[0].accession, "SRR1");
        assert_eq!(t.critical_path.per_accession[0].dominant_stage, "align");
        let align = t.stage_stats.iter().find(|s| s.stage == "align").unwrap();
        assert_eq!(align.count, 2);
        assert!((align.total_secs - 13.0).abs() < 1e-12);
        assert!((t.critical_path.fleet_busy_secs - 16.0).abs() < 1e-12);
        assert!((t.critical_path.fleet_uptime_secs - 20.0).abs() < 1e-12);
        let share: f64 = t.critical_path.stage_share.iter().map(|(_, v)| v).sum();
        assert!((share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_and_failed_jobs_do_not_skew_stage_stats() {
        let r = sample_recorder();
        // A duplicate completion and a crashed job: both counted as busy time,
        // neither contributes stage samples.
        let dup = r.span_closed(
            "job",
            SpanId::NONE,
            30.0,
            38.0,
            &[("accession", "SRR1".to_string()), ("outcome", "duplicate".to_string())],
        );
        r.span_closed("align", dup, 30.0, 38.0, &[]);
        r.span_closed(
            "job",
            SpanId::NONE,
            40.0,
            41.0,
            &[("accession", "SRR2".to_string()), ("outcome", "crashed".to_string())],
        );
        let t = summarize(&r);
        assert_eq!(t.stage_stats.iter().find(|s| s.stage == "align").unwrap().count, 2);
        assert!((t.critical_path.fleet_busy_secs - (16.0 + 8.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_campaign_summarizes_to_zeros() {
        let t = summarize(&Recorder::new());
        assert_eq!(t.n_spans, 0);
        assert_eq!(t.n_events, 0);
        assert!(t.stage_stats.is_empty());
        assert_eq!(t.critical_path.dominant_stage, "");
        assert_eq!(t.critical_path.dominant_accessions, 0);
        assert!(t.critical_path.per_accession.is_empty());
        assert!(t.critical_path.stage_share.is_empty());
        assert_eq!(t.critical_path.fleet_busy_secs, 0.0);
        assert_eq!(t.critical_path.fleet_uptime_secs, 0.0);
        // Rendering and serialization must not choke on the empty tree.
        assert!(t.render().contains("telemetry: 0 spans, 0 events"));
        assert!(t.to_json().contains("\"per_accession\":[]"));
    }

    #[test]
    fn single_span_tree_summarizes_without_stages() {
        let r = Recorder::new();
        r.span_closed(
            "job",
            SpanId::NONE,
            0.0,
            5.0,
            &[("accession", "SRR1".to_string()), ("outcome", "ok".to_string())],
        );
        let t = summarize(&r);
        // A stage-less job contributes busy time but no critical-path entry.
        assert_eq!(t.n_spans, 1);
        assert!((t.critical_path.fleet_busy_secs - 5.0).abs() < 1e-12);
        assert!(t.critical_path.per_accession.is_empty());
        assert!(t.stage_stats.is_empty());
        assert_eq!(t.critical_path.dominant_stage, "");
    }

    #[test]
    fn orphaned_children_do_not_corrupt_the_path() {
        let r = Recorder::new();
        let job = r.span_closed(
            "job",
            SpanId::NONE,
            0.0,
            10.0,
            &[("accession", "SRR1".to_string()), ("outcome", "ok".to_string())],
        );
        r.span_closed("align", job, 0.0, 9.0, &[]);
        // Stage spans whose parent id was never recorded (e.g. emitted by a
        // worker whose job span was dropped): they must not be attributed to
        // any accession, and must not panic the walk.
        let orphan_parent = SpanId(999);
        r.span_closed("prefetch", orphan_parent, 20.0, 30.0, &[]);
        r.span_closed("align", orphan_parent, 30.0, 90.0, &[]);
        // A job with no accession attr is skipped entirely.
        r.span_closed("job", SpanId::NONE, 100.0, 104.0, &[("outcome", "ok".to_string())]);
        let t = summarize(&r);
        assert_eq!(t.critical_path.per_accession.len(), 1);
        assert_eq!(t.critical_path.per_accession[0].accession, "SRR1");
        let align = t.stage_stats.iter().find(|s| s.stage == "align").unwrap();
        assert_eq!(align.count, 1, "orphaned align span must not contribute");
        assert!((align.total_secs - 9.0).abs() < 1e-12);
        // Both jobs still count as fleet busy time.
        assert!((t.critical_path.fleet_busy_secs - 14.0).abs() < 1e-12);
    }

    #[test]
    fn render_and_json_quote_the_breakdown() {
        let t = summarize(&sample_recorder());
        let text = t.render();
        assert!(text.contains("critical path: 'align' dominates 2/2 accessions"), "{text}");
        assert!(text.contains("stage share of pipeline time:"), "{text}");
        let json = t.to_json();
        assert!(json.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},")), "{json}");
        assert!(json.contains("\"dominant_stage\":\"align\""), "{json}");
        assert!(json.contains("\"metrics\":{\"counters\""), "{json}");
    }
}
