//! Minimal deterministic JSON construction.
//!
//! The vendored `serde` shim is a no-op (its derives expand to marker impls), so
//! telemetry hand-rolls its JSON. Values are built as an explicit tree and written
//! with a stable field order; floats use Rust's shortest-roundtrip `{}` formatting.
//! The result: serializing the same telemetry twice yields the same bytes, which is
//! what makes fixed-seed event logs byte-comparable.

use std::fmt::{self, Write};

/// A JSON value with deterministic serialization.
///
/// Object fields serialize in insertion order — builders keep that order stable
/// (sorted names for registries, fixed per-kind order for events).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`. Also what non-finite floats degrade to, as in `serde_json`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (counters, counts).
    UInt(u64),
    /// A float, written with shortest-roundtrip formatting; non-finite → `null`.
    Num(f64),
    /// A string (escaped on write).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; fields keep insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize into `out` (compact, no whitespace).
    pub fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Num(v) => write_f64(*v, out),
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a fresh compact string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Numeric view: `Int`/`UInt`/`Num` as `f64`, everything else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String view (`Str` only).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Object field lookup by key (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(u64::from(v))
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Arr(v)
    }
}

/// Write a float as a canonical JSON number (or `null` for non-finite values).
///
/// Normalization rules, shared by the NDJSON event log and the exporters so
/// goldens cannot flake on formatting:
/// * non-finite → `null` (as in `serde_json`) — NaN/inf never reach a golden;
/// * `-0.0` → `0` — the sign bit is not observable in sim arithmetic and would
///   otherwise leak platform-dependent rounding into byte-compared logs;
/// * `|v| >= 1e17` or `0 < |v| < 1e-6` → shortest-roundtrip exponent form
///   (`1e300`, `5e-324`) instead of `{}`'s positional expansion, which would
///   print hundreds of digits;
/// * everything else → Rust's shortest-roundtrip `{}` formatting (integral
///   floats print without a decimal point — "3" — still a valid JSON number).
pub fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    if v == 0.0 {
        out.push('0');
        return;
    }
    let magnitude = v.abs();
    if !(1e-6..1e17).contains(&magnitude) {
        let _ = write!(out, "{v:e}");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// [`write_f64`] into a fresh string.
pub fn fmt_f64(v: f64) -> String {
    let mut out = String::new();
    write_f64(v, &mut out);
    out
}

/// Parse a JSON document into a [`JsonValue`]. Rejects trailing garbage.
///
/// This is the read side of the crate's hand-rolled serializer: the query
/// engine ([`crate::query`]) and run differ ([`crate::diff`]) consume saved
/// NDJSON event logs, so the parser accepts full JSON (nested arrays/objects,
/// escapes, exponent floats) even though the log emits only flat objects.
/// Numbers without `.`/`e` parse to `Int`/`UInt` (matching what the writer
/// emitted); everything else becomes `Num`.
pub fn parse(text: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// A JSON parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable reason.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else { return Err(self.err("unterminated string")) };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-UTF8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates never appear in the writer's output
                            // (it emits \u only for C0 controls); map them to
                            // the replacement character instead of erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-synchronize on UTF-8 boundaries: walk back to a char
                    // start and push the whole scalar.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'-' if is_float => self.pos += 1, // exponent sign
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            // Keep the writer's integer kinds so parse∘render round-trips.
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(JsonValue::Int(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
        }
        text.parse::<f64>().map(JsonValue::Num).map_err(|_| self.err("invalid number"))
    }
}

/// Write `s` as a quoted JSON string with the mandatory escapes.
pub(crate) fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_compactly() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::from(true).render(), "true");
        assert_eq!(JsonValue::from(-3i64).render(), "-3");
        assert_eq!(JsonValue::from(42u64).render(), "42");
        assert_eq!(JsonValue::from(1.5).render(), "1.5");
        assert_eq!(JsonValue::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::from(f64::NEG_INFINITY).render(), "null");
    }

    #[test]
    fn negative_zero_normalizes_to_zero() {
        assert_eq!(JsonValue::from(-0.0).render(), "0");
        assert_eq!(JsonValue::from(0.0).render(), "0");
    }

    #[test]
    fn exponent_range_values_stay_compact() {
        assert_eq!(JsonValue::from(1e300).render(), "1e300");
        assert_eq!(JsonValue::from(-2.5e200).render(), "-2.5e200");
        assert_eq!(JsonValue::from(1e-300).render(), "1e-300");
        assert_eq!(JsonValue::from(5e-324).render(), "5e-324"); // smallest subnormal
        // Near the cutoffs: ordinary magnitudes keep positional notation.
        assert_eq!(JsonValue::from(1e16).render(), "10000000000000000");
        assert_eq!(JsonValue::from(1e-6).render(), "0.000001");
        assert_eq!(JsonValue::from(9.9e-7).render(), "9.9e-7");
    }

    #[test]
    fn mid_range_floats_keep_shortest_roundtrip_form() {
        assert_eq!(JsonValue::from(0.1).render(), "0.1");
        assert_eq!(JsonValue::from(3.0).render(), "3");
        assert_eq!(fmt_f64(0.30000000000000004), "0.30000000000000004");
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(JsonValue::from("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(JsonValue::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let v = JsonValue::obj(vec![
            ("z", JsonValue::from(1u64)),
            ("a", JsonValue::Arr(vec![JsonValue::Null, JsonValue::from(2.0)])),
        ]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":[null,2]}");
    }

    #[test]
    fn parse_round_trips_event_log_lines() {
        for line in [
            "{\"t\":12.5,\"kind\":\"retry\",\"op\":\"s3_get\",\"attempt\":2}",
            "{\"t\":0.30000000000000004,\"kind\":\"queue_wait\",\"wait_secs\":1e-300}",
            "{\"t\":1,\"kind\":\"a\",\"neg\":-3,\"flag\":true,\"nothing\":null}",
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"arr\":[1,2.5,\"x\"],\"obj\":{\"k\":0}}",
            "{}",
            "[]",
        ] {
            let v = parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(v.render(), line, "parse∘render must round-trip");
        }
    }

    #[test]
    fn parse_preserves_number_kinds() {
        let v = parse("{\"u\":3,\"i\":-3,\"f\":3.5}").unwrap();
        assert_eq!(v.get("u"), Some(&JsonValue::UInt(3)));
        assert_eq!(v.get("i"), Some(&JsonValue::Int(-3)));
        assert_eq!(v.get("f"), Some(&JsonValue::Num(3.5)));
        assert_eq!(v.get("u").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1}garbage", "nul", "\"open", "1.2.3"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_handles_unicode_and_escapes() {
        let v = parse("\"caf\u{e9} \\u0041 \\t\"").unwrap();
        assert_eq!(v.as_str(), Some("caf\u{e9} A \t"));
    }

    #[test]
    fn rendering_is_reproducible() {
        let v = JsonValue::obj(vec![("t", JsonValue::from(0.30000000000000004))]);
        assert_eq!(v.render(), v.render());
        assert_eq!(v.render(), "{\"t\":0.30000000000000004}");
    }
}
