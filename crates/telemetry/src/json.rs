//! Minimal deterministic JSON construction.
//!
//! The vendored `serde` shim is a no-op (its derives expand to marker impls), so
//! telemetry hand-rolls its JSON. Values are built as an explicit tree and written
//! with a stable field order; floats use Rust's shortest-roundtrip `{}` formatting.
//! The result: serializing the same telemetry twice yields the same bytes, which is
//! what makes fixed-seed event logs byte-comparable.

use std::fmt::{self, Write};

/// A JSON value with deterministic serialization.
///
/// Object fields serialize in insertion order — builders keep that order stable
/// (sorted names for registries, fixed per-kind order for events).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`. Also what non-finite floats degrade to, as in `serde_json`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (counters, counts).
    UInt(u64),
    /// A float, written with shortest-roundtrip formatting; non-finite → `null`.
    Num(f64),
    /// A string (escaped on write).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; fields keep insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize into `out` (compact, no whitespace).
    pub fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Num(v) => write_f64(*v, out),
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a fresh compact string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(u64::from(v))
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Arr(v)
    }
}

/// Write a float as a canonical JSON number (or `null` for non-finite values).
///
/// Normalization rules, shared by the NDJSON event log and the exporters so
/// goldens cannot flake on formatting:
/// * non-finite → `null` (as in `serde_json`) — NaN/inf never reach a golden;
/// * `-0.0` → `0` — the sign bit is not observable in sim arithmetic and would
///   otherwise leak platform-dependent rounding into byte-compared logs;
/// * `|v| >= 1e17` or `0 < |v| < 1e-6` → shortest-roundtrip exponent form
///   (`1e300`, `5e-324`) instead of `{}`'s positional expansion, which would
///   print hundreds of digits;
/// * everything else → Rust's shortest-roundtrip `{}` formatting (integral
///   floats print without a decimal point — "3" — still a valid JSON number).
pub fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    if v == 0.0 {
        out.push('0');
        return;
    }
    let magnitude = v.abs();
    if !(1e-6..1e17).contains(&magnitude) {
        let _ = write!(out, "{v:e}");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// [`write_f64`] into a fresh string.
pub fn fmt_f64(v: f64) -> String {
    let mut out = String::new();
    write_f64(v, &mut out);
    out
}

/// Write `s` as a quoted JSON string with the mandatory escapes.
pub(crate) fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_compactly() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::from(true).render(), "true");
        assert_eq!(JsonValue::from(-3i64).render(), "-3");
        assert_eq!(JsonValue::from(42u64).render(), "42");
        assert_eq!(JsonValue::from(1.5).render(), "1.5");
        assert_eq!(JsonValue::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::from(f64::NEG_INFINITY).render(), "null");
    }

    #[test]
    fn negative_zero_normalizes_to_zero() {
        assert_eq!(JsonValue::from(-0.0).render(), "0");
        assert_eq!(JsonValue::from(0.0).render(), "0");
    }

    #[test]
    fn exponent_range_values_stay_compact() {
        assert_eq!(JsonValue::from(1e300).render(), "1e300");
        assert_eq!(JsonValue::from(-2.5e200).render(), "-2.5e200");
        assert_eq!(JsonValue::from(1e-300).render(), "1e-300");
        assert_eq!(JsonValue::from(5e-324).render(), "5e-324"); // smallest subnormal
        // Near the cutoffs: ordinary magnitudes keep positional notation.
        assert_eq!(JsonValue::from(1e16).render(), "10000000000000000");
        assert_eq!(JsonValue::from(1e-6).render(), "0.000001");
        assert_eq!(JsonValue::from(9.9e-7).render(), "9.9e-7");
    }

    #[test]
    fn mid_range_floats_keep_shortest_roundtrip_form() {
        assert_eq!(JsonValue::from(0.1).render(), "0.1");
        assert_eq!(JsonValue::from(3.0).render(), "3");
        assert_eq!(fmt_f64(0.30000000000000004), "0.30000000000000004");
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(JsonValue::from("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(JsonValue::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let v = JsonValue::obj(vec![
            ("z", JsonValue::from(1u64)),
            ("a", JsonValue::Arr(vec![JsonValue::Null, JsonValue::from(2.0)])),
        ]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":[null,2]}");
    }

    #[test]
    fn rendering_is_reproducible() {
        let v = JsonValue::obj(vec![("t", JsonValue::from(0.30000000000000004))]);
        assert_eq!(v.render(), v.render());
        assert_eq!(v.render(), "{\"t\":0.30000000000000004}");
    }
}
