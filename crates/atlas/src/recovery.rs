//! Graceful spot degradation: recovery configuration and the checkpoint store.
//!
//! AWS precedes every spot reclaim with a ~2-minute interruption notice. With
//! recovery enabled ([`crate::orchestrator::CampaignConfig::recovery`]) the
//! campaign engine turns that notice into a *drain*: the worker stops pulling
//! SQS messages, checkpoints its in-flight alignment progress to the (simulated)
//! S3 checkpoint store, and hands the message straight back (visibility → 0)
//! instead of letting the lease lapse. The next worker to receive the message
//! resumes from the checkpoint and skips the already-aligned reads — the
//! star-side contract ([`star_aligner::checkpoint::AlignCheckpoint`]) guarantees
//! the resumed output is bit-identical, so the engine only needs to model the
//! *time*: a resumed attempt's align stage shrinks by the checkpointed offset.
//!
//! Everything here is opt-in: with `recovery: None` the engine schedules the
//! exact event sequence it always did — no notices, no extra fault rolls, no
//! extra telemetry — and campaign digests and event logs are byte-identical to
//! builds that predate the recovery layer.

use std::collections::BTreeMap;

use crate::AtlasError;
use bytes::Bytes;
use cloudsim::ObjectStore;

/// Recovery-layer knobs. The notice lead time and the checkpoint-write failure
/// probability live in the fault plan ([`cloudsim::FaultPlan::spot_notice_secs`],
/// [`cloudsim::FaultPlan::checkpoint_write_fail`]) — they are properties of the
/// simulated environment; this struct configures the worker-side policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryConfig {
    /// Seconds a stored checkpoint stays usable. Expired checkpoints are
    /// ignored by resume lookups and garbage-collected at scale ticks; the
    /// progress they held is accounted as lost compute at settlement.
    pub checkpoint_ttl_secs: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        // Generous relative to job durations: checkpoints survive several
        // redelivery cycles but not a wedged campaign.
        RecoveryConfig { checkpoint_ttl_secs: 7200.0 }
    }
}

impl RecoveryConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), AtlasError> {
        if !self.checkpoint_ttl_secs.is_finite() || self.checkpoint_ttl_secs <= 0.0 {
            return Err(AtlasError::InvalidParams(
                "recovery.checkpoint_ttl_secs must be finite and positive".into(),
            ));
        }
        Ok(())
    }
}

/// The simulated-S3 checkpoint store.
///
/// Checkpoint blobs live in a [`cloudsim::ObjectStore`] under
/// `checkpoints/{accession}`; a side index carries the write timestamp for TTL
/// enforcement and the align-offset for O(log n) lookup without re-parsing the
/// blob. The engine stores the *modeled* checkpoint — the cumulative
/// align-stage seconds completed — because at campaign scale the workload is
/// modeled too; the byte-level `AlignCheckpoint` equivalence is proven once in
/// the star crate and the engine only propagates its time consequence.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    store: ObjectStore,
    index: BTreeMap<String, CheckpointMeta>,
    expired_total: u64,
}

#[derive(Clone, Copy, Debug)]
struct CheckpointMeta {
    written_at_secs: f64,
    align_offset_secs: f64,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    fn key(accession: &str) -> String {
        format!("checkpoints/{accession}")
    }

    /// Write (or overwrite) the checkpoint for an accession: cumulative
    /// align-stage seconds completed across its drained attempts.
    pub fn put(&mut self, accession: &str, align_offset_secs: f64, now_secs: f64) {
        // The blob is the offset's exact bit pattern: deterministic bytes, so
        // repeated campaigns store identical objects.
        let blob = format!("align_offset_bits\t{:016x}\n", align_offset_secs.to_bits());
        self.store.put(&Self::key(accession), Bytes::from(blob.into_bytes()));
        self.index.insert(
            accession.to_string(),
            CheckpointMeta { written_at_secs: now_secs, align_offset_secs },
        );
    }

    /// The stored align offset for an accession, if a live (non-expired)
    /// checkpoint exists. Lookups are TTL-aware even before a GC pass runs.
    pub fn get(&self, accession: &str, now_secs: f64, ttl_secs: f64) -> Option<f64> {
        let meta = self.index.get(accession)?;
        if now_secs - meta.written_at_secs > ttl_secs {
            return None;
        }
        debug_assert!(self.store.head(&Self::key(accession)).is_ok(), "index/object stores agree");
        Some(meta.align_offset_secs)
    }

    /// Drop an accession's checkpoint (consumed by a successful completion).
    pub fn remove(&mut self, accession: &str) {
        if self.index.remove(accession).is_some() {
            self.store.delete(&Self::key(accession));
        }
    }

    /// Garbage-collect expired checkpoints; returns how many were collected.
    pub fn gc(&mut self, now_secs: f64, ttl_secs: f64) -> usize {
        let expired: Vec<String> = self
            .index
            .iter()
            .filter(|(_, m)| now_secs - m.written_at_secs > ttl_secs)
            .map(|(a, _)| a.clone())
            .collect();
        for a in &expired {
            self.remove(a);
        }
        self.expired_total += expired.len() as u64;
        expired.len()
    }

    /// Live checkpoints currently stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no checkpoint is stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Checkpoints expired over the store's lifetime.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates_and_bad_ttls_do_not() {
        RecoveryConfig::default().validate().unwrap();
        assert!(RecoveryConfig { checkpoint_ttl_secs: 0.0 }.validate().is_err());
        assert!(RecoveryConfig { checkpoint_ttl_secs: -5.0 }.validate().is_err());
        assert!(RecoveryConfig { checkpoint_ttl_secs: f64::NAN }.validate().is_err());
        assert!(RecoveryConfig { checkpoint_ttl_secs: f64::INFINITY }.validate().is_err());
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let mut s = CheckpointStore::new();
        assert!(s.is_empty());
        s.put("SRR1", 42.5, 100.0);
        assert_eq!(s.get("SRR1", 150.0, 3600.0), Some(42.5));
        assert_eq!(s.get("SRR2", 150.0, 3600.0), None);
        assert_eq!(s.len(), 1);
        // Overwrite refreshes both the offset and the TTL clock.
        s.put("SRR1", 60.0, 200.0);
        assert_eq!(s.get("SRR1", 250.0, 3600.0), Some(60.0));
        s.remove("SRR1");
        assert!(s.is_empty());
        assert_eq!(s.get("SRR1", 250.0, 3600.0), None);
    }

    #[test]
    fn expired_checkpoints_are_invisible_and_collectable() {
        let mut s = CheckpointStore::new();
        s.put("A", 10.0, 0.0);
        s.put("B", 20.0, 500.0);
        // TTL 600: at t=700, A (age 700) is expired, B (age 200) is live.
        assert_eq!(s.get("A", 700.0, 600.0), None, "expired before GC runs");
        assert_eq!(s.get("B", 700.0, 600.0), Some(20.0));
        assert_eq!(s.gc(700.0, 600.0), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.expired_total(), 1);
        // GC is idempotent until more expire.
        assert_eq!(s.gc(700.0, 600.0), 0);
        assert_eq!(s.gc(2000.0, 600.0), 1);
        assert!(s.is_empty());
        assert_eq!(s.expired_total(), 2);
    }
}
