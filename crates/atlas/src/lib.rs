//! The Transcriptomics Atlas pipeline — the paper's contribution.
//!
//! Pulls everything together: the four-stage pipeline (Fig. 1), the AWS architecture
//! (Fig. 2), and the two application-specific optimizations (§III):
//!
//! * [`pipeline`] — per-accession execution: `prefetch` → `fasterq-dump` → STAR
//!   (with GeneCounts) → count collection, with per-stage time accounting.
//! * [`early_stop`] — §III-B: the `Log.progress.out` monitor that aborts alignments
//!   whose mapping rate sits below 30 % once ≥10 % of reads are processed, plus the
//!   savings accounting behind Fig. 4.
//! * [`right_size`] — §III-A's corollary: pick the cheapest instance type whose RAM
//!   fits the index (85 GiB for release 108 vs 29.5 GiB for release 111).
//! * [`orchestrator`] — the discrete-event campaign: SQS-fed autoscaled fleet,
//!   index preload at instance init, spot interruptions with at-least-once
//!   redelivery, results to S3, cost accounting.
//! * [`analysis`] — the paper's progress-log analysis methodology: replay candidate
//!   checkpoint policies over recorded `Log.progress.out` histories to find the
//!   smallest safe checkpoint fraction (the data behind the 10 % rule).
//! * [`recovery`] — graceful spot degradation: the checkpoint store and recovery
//!   policy that let drained workers hand work back and successors resume it.
//! * [`report`] — human-readable experiment tables.
//! * [`experiments`] — the code that regenerates every figure/table of the paper
//!   (Fig. 3, the §III-A configuration table, Fig. 4, the architecture campaign);
//!   see DESIGN.md's experiment index.

pub mod analysis;
pub mod differential;
pub mod early_stop;
pub mod error;
pub mod experiments;
mod kernel_engine;
pub mod ledger;
pub mod orchestrator;
pub mod pipeline;
pub mod recovery;
pub mod report;
pub mod right_size;
pub mod workload;

pub use differential::{run_differential, EngineComparison};
pub use early_stop::{EarlyStopAccounting, EarlyStopPolicy};
pub use error::AtlasError;
pub use ledger::{AccessionLedgerEntry, LedgerTotals, SloReport};
pub use orchestrator::{CampaignConfig, CampaignEngine, CampaignReport, Orchestrator};
pub use pipeline::{AtlasPipeline, PipelineConfig, PipelineResult, StageTimes};
pub use recovery::{CheckpointStore, RecoveryConfig};
pub use right_size::RightSizer;
pub use workload::{CampaignWorkload, ModeledWorkload};
