//! Early stopping (§III-B of the paper).
//!
//! STAR's `Log.progress.out` reports the running mapped-read percentage. The paper's
//! analysis of 1000 progress files found that once ≥10 % of reads are processed the
//! mapping rate is stable enough to decide the run's fate: alignments below a 30 %
//! mapping rate are aborted (they turned out to be single-cell libraries, useless for
//! the Atlas). [`EarlyStopPolicy`] implements that rule as a
//! [`star_aligner::runner::RunMonitor`], and [`EarlyStopAccounting`] computes the
//! time the abort saved — the yellow bars of Fig. 4.

use serde::{Deserialize, Serialize};
use star_aligner::progress::ProgressSnapshot;
use star_aligner::runner::{MonitorVerdict, RunMonitor, RunOutput, RunStatus};

/// The early-stopping rule.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EarlyStopPolicy {
    /// Fraction of total reads that must be processed before deciding (paper: 0.10).
    pub check_fraction: f64,
    /// Minimum acceptable mapping rate (paper: 0.30).
    pub min_mapping_rate: f64,
    /// Absolute floor of processed reads before deciding (guards tiny inputs where
    /// 10 % is a handful of reads).
    pub min_reads_checked: u64,
}

impl Default for EarlyStopPolicy {
    fn default() -> Self {
        EarlyStopPolicy { check_fraction: 0.10, min_mapping_rate: 0.30, min_reads_checked: 200 }
    }
}

impl EarlyStopPolicy {
    /// Validate the policy.
    pub fn validate(&self) -> Result<(), crate::AtlasError> {
        if !(0.0..=1.0).contains(&self.check_fraction) || !(0.0..=1.0).contains(&self.min_mapping_rate) {
            return Err(crate::AtlasError::InvalidParams(
                "check_fraction and min_mapping_rate must be in [0,1]".into(),
            ));
        }
        Ok(())
    }

    /// The decision function: abort once the checkpoint is reached and the mapping
    /// rate is below threshold.
    pub fn verdict(&self, snapshot: &ProgressSnapshot) -> MonitorVerdict {
        let checkpoint_reached = snapshot.processed_fraction() >= self.check_fraction
            && snapshot.processed >= self.min_reads_checked;
        if checkpoint_reached && snapshot.mapped_fraction() < self.min_mapping_rate {
            MonitorVerdict::Abort
        } else {
            MonitorVerdict::Continue
        }
    }
}

impl RunMonitor for EarlyStopPolicy {
    fn on_progress(&self, snapshot: &ProgressSnapshot) -> MonitorVerdict {
        self.verdict(snapshot)
    }
}

/// Time accounting for one (possibly early-stopped) run — one bar of Fig. 4.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EarlyStopAccounting {
    /// True when the run was aborted by the policy.
    pub stopped: bool,
    /// Reads processed before the run ended.
    pub processed_reads: u64,
    /// Total reads the run would have processed.
    pub total_reads: u64,
    /// Seconds actually spent aligning.
    pub actual_secs: f64,
    /// Projected full-run seconds. For a completed run this equals `actual_secs`;
    /// for a stopped run it extrapolates the observed per-read rate over the whole
    /// input — the same estimate the paper uses for its 30.4 h figure.
    pub projected_full_secs: f64,
}

impl EarlyStopAccounting {
    /// Derive the accounting from a run output and the wall seconds it consumed.
    pub fn from_run(output: &RunOutput, align_secs: f64) -> EarlyStopAccounting {
        let processed = output.final_snapshot.processed;
        let total = output.final_snapshot.total_reads;
        let stopped = matches!(output.status, RunStatus::EarlyStopped { .. });
        let projected = if stopped && processed > 0 {
            align_secs * total as f64 / processed as f64
        } else {
            align_secs
        };
        EarlyStopAccounting {
            stopped,
            processed_reads: processed,
            total_reads: total,
            actual_secs: align_secs,
            projected_full_secs: projected,
        }
    }

    /// Seconds the abort saved (0 for completed runs) — the yellow bar.
    pub fn saved_secs(&self) -> f64 {
        (self.projected_full_secs - self.actual_secs).max(0.0)
    }

    /// Structured fields for the telemetry `early_stop` decision event.
    pub fn decision_fields(&self) -> Vec<(&'static str, telemetry::JsonValue)> {
        vec![
            ("stopped", self.stopped.into()),
            ("processed_reads", self.processed_reads.into()),
            ("total_reads", self.total_reads.into()),
            ("actual_secs", self.actual_secs.into()),
            ("projected_full_secs", self.projected_full_secs.into()),
            ("saved_secs", self.saved_secs().into()),
        ]
    }
}

/// Aggregate over a campaign — the totals quoted in §III-B (38/1000 runs, 30.4 h of
/// 155.8 h, 19.5 %).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SavingsSummary {
    /// Number of alignments run.
    pub runs: usize,
    /// Number terminated early.
    pub stopped: usize,
    /// Total seconds actually spent aligning.
    pub actual_secs: f64,
    /// Total seconds a no-early-stopping campaign would have spent.
    pub projected_secs: f64,
}

impl SavingsSummary {
    /// Fold a run's accounting into the summary.
    pub fn add(&mut self, acct: &EarlyStopAccounting) {
        self.runs += 1;
        if acct.stopped {
            self.stopped += 1;
        }
        self.actual_secs += acct.actual_secs;
        self.projected_secs += acct.projected_full_secs;
    }

    /// Seconds saved by early stopping.
    pub fn saved_secs(&self) -> f64 {
        (self.projected_secs - self.actual_secs).max(0.0)
    }

    /// Fraction of the no-early-stopping total that was saved (paper: 19.5 %).
    pub fn saved_fraction(&self) -> f64 {
        if self.projected_secs <= 0.0 {
            0.0
        } else {
            self.saved_secs() / self.projected_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(processed: u64, total: u64, mapped: u64) -> ProgressSnapshot {
        ProgressSnapshot {
            total_reads: total,
            processed,
            unique: mapped,
            multi: 0,
            too_many: 0,
            unmapped: processed - mapped,
            elapsed_secs: 1.0,
        }
    }

    #[test]
    fn continues_before_checkpoint_even_if_rate_is_terrible() {
        let p = EarlyStopPolicy::default();
        // 5% processed, 0% mapped: too early to decide.
        assert_eq!(p.verdict(&snap(500, 10_000, 0)), MonitorVerdict::Continue);
    }

    #[test]
    fn aborts_at_checkpoint_when_rate_below_threshold() {
        let p = EarlyStopPolicy::default();
        // 10% processed, 25% mapped < 30%.
        assert_eq!(p.verdict(&snap(1_000, 10_000, 250)), MonitorVerdict::Abort);
    }

    #[test]
    fn continues_at_checkpoint_when_rate_is_acceptable() {
        let p = EarlyStopPolicy::default();
        assert_eq!(p.verdict(&snap(1_000, 10_000, 350)), MonitorVerdict::Continue);
        // Exactly at threshold: not below → continue.
        assert_eq!(p.verdict(&snap(1_000, 10_000, 300)), MonitorVerdict::Continue);
    }

    #[test]
    fn min_reads_floor_delays_decisions_on_tiny_inputs() {
        let p = EarlyStopPolicy::default();
        // 50% of a 100-read input is only 50 reads < floor of 200.
        assert_eq!(p.verdict(&snap(50, 100, 0)), MonitorVerdict::Continue);
        // Raise processed past the floor: now decidable.
        let mut p2 = p;
        p2.min_reads_checked = 10;
        assert_eq!(p2.verdict(&snap(50, 100, 0)), MonitorVerdict::Abort);
    }

    #[test]
    fn invalid_policy_rejected() {
        let mut p = EarlyStopPolicy::default();
        p.check_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = EarlyStopPolicy::default();
        p.min_mapping_rate = -0.1;
        assert!(p.validate().is_err());
        assert!(EarlyStopPolicy::default().validate().is_ok());
    }

    #[test]
    fn accounting_projects_stopped_runs_linearly() {
        // A stopped run: 1000 of 10000 reads in 6 s → projected 60 s, saved 54 s.
        let acct = EarlyStopAccounting {
            stopped: true,
            processed_reads: 1_000,
            total_reads: 10_000,
            actual_secs: 6.0,
            projected_full_secs: 60.0,
        };
        assert!((acct.saved_secs() - 54.0).abs() < 1e-12);
        let done = EarlyStopAccounting {
            stopped: false,
            processed_reads: 10_000,
            total_reads: 10_000,
            actual_secs: 60.0,
            projected_full_secs: 60.0,
        };
        assert_eq!(done.saved_secs(), 0.0);
    }

    #[test]
    fn summary_aggregates_paper_style_totals() {
        let mut s = SavingsSummary::default();
        // 2 completed runs of 100 s, 1 stopped run that used 10 s of a projected 100 s.
        for _ in 0..2 {
            s.add(&EarlyStopAccounting {
                stopped: false,
                processed_reads: 1000,
                total_reads: 1000,
                actual_secs: 100.0,
                projected_full_secs: 100.0,
            });
        }
        s.add(&EarlyStopAccounting {
            stopped: true,
            processed_reads: 100,
            total_reads: 1000,
            actual_secs: 10.0,
            projected_full_secs: 100.0,
        });
        assert_eq!(s.runs, 3);
        assert_eq!(s.stopped, 1);
        assert!((s.saved_secs() - 90.0).abs() < 1e-12);
        assert!((s.saved_fraction() - 0.3).abs() < 1e-12);
    }
}
