//! The cloud campaign orchestrator (paper Fig. 2).
//!
//! Runs a whole accession workload on the simulated AWS architecture:
//!
//! * accession ids go into an SQS queue;
//! * an AutoScalingGroup sizes a fleet of (optionally spot) instances from the
//!   backlog;
//! * each instance spends its init phase downloading the STAR index from S3 and
//!   loading it into shared memory — the overhead §III-A says shrinks with the
//!   release-111 index;
//! * ready instances poll the queue, run the four-stage pipeline per accession,
//!   lease the message for the job's expected duration, upload results and delete
//!   the message;
//! * spot interruptions kill instances mid-job; the visibility timeout re-delivers
//!   the orphaned message to another instance (at-least-once processing);
//! * when the queue drains, the fleet scales in and the campaign settles costs and
//!   DESeq2-normalizes the collected counts.
//!
//! The *pipelines run for real* (the aligner aligns); only time is simulated —
//! stage durations advance the event clock, so a multi-hour campaign simulates in
//! seconds of wall time. (At fleet scale, [`crate::workload::ModeledWorkload`]
//! swaps the real alignment for a seeded synthetic one.)
//!
//! Campaigns run on the discrete-event kernel in [`crate::kernel_engine`]
//! (see [`CampaignEngine`]). The legacy per-tick loop it replaced has been
//! deleted after soaking byte-for-byte against the kernel; the harness in
//! [`crate::differential`] now pins determinism by replaying the kernel
//! against itself.

use std::sync::Arc;

use crate::early_stop::SavingsSummary;
use crate::pipeline::{AtlasPipeline, PipelineResult};
use crate::workload::CampaignWorkload;
use crate::AtlasError;
use cloudsim::cost::CostReport;
use cloudsim::faults::FaultPlan;
use cloudsim::instance::{InstanceId, InstanceType};
use cloudsim::faults::FaultCounters;
use cloudsim::retry::RetryPolicy;
use cloudsim::sqs::ReceiptHandle;
use cloudsim::{ScalingPolicy, SimDuration, SpotMarket};
use deseq_norm::{CountsMatrix, NormalizedMatrix};
use star_aligner::quant::Strandedness;
use telemetry::{
    AlertEvent, CampaignTelemetry, JsonValue, MonitorConfig, Recorder, SpanId,
};

/// Which simulation engine drives the campaign. A single variant since the
/// legacy per-tick scan loop was deleted: the discrete-event kernel soaked
/// against it byte-for-byte and [`crate::differential`] now pins determinism by
/// replaying the kernel against itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignEngine {
    /// The discrete-event kernel ([`crate::kernel_engine`]): O(log n) per event,
    /// no per-event scans — fleets of thousands simulate in seconds.
    #[default]
    EventKernel,
}

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Instance type the ASG launches (pick with [`crate::RightSizer`]).
    pub instance_type: &'static InstanceType,
    /// Launch instances on the spot market.
    pub spot: bool,
    /// Spot pricing/interruption model.
    pub spot_market: SpotMarket,
    /// Fleet sizing policy.
    pub scaling: ScalingPolicy,
    /// Base SQS visibility timeout (workers extend it per job).
    pub visibility_timeout: SimDuration,
    /// Idle worker re-poll interval.
    pub poll_interval: SimDuration,
    /// ASG evaluation period.
    pub scale_tick: SimDuration,
    /// Index size charged at instance init (bytes). Use the measured blob size, or a
    /// paper-scale override (85 GiB vs 29.5 GiB) for full-scale campaigns.
    pub index_bytes: u64,
    /// S3 download bandwidth at init, bytes/second.
    pub index_download_bps: f64,
    /// Shared-memory load rate after download, bytes/second.
    pub index_load_bps: f64,
    /// Visibility lease = expected job duration × this margin.
    pub lease_margin: f64,
    /// Safety stop for the simulated clock.
    pub max_sim_secs: f64,
    /// Deterministic fault plan for chaos campaigns (`None` = fault-free).
    pub faults: Option<FaultPlan>,
    /// Retry policy for S3/SQS calls made by workers.
    pub retry: RetryPolicy,
    /// Deliveries allowed per message before it moves to the dead-letter queue
    /// (`None` = redeliver forever, the pre-DLQ behavior).
    pub max_receive_count: Option<u32>,
    /// Record sim-time telemetry (spans, metrics, event log). Disabling swaps in
    /// a no-op recorder; campaign outcomes are identical either way.
    pub telemetry: bool,
    /// Live alert rules evaluated against the telemetry stream *during* the
    /// campaign (`None` = no monitor). Requires `telemetry`; like the recorder,
    /// the monitor is strictly an observer — campaign outcomes are identical
    /// with it on or off, but enabling it adds `progress` and `alert` events to
    /// the log.
    pub monitor: Option<MonitorConfig>,
    /// Declarative SLOs ([`telemetry::slo`]) evaluated live over the telemetry
    /// stream — streaming quantile sketches, multi-window burn-rate alerting —
    /// plus the per-accession cost/latency attribution ledger
    /// ([`crate::ledger`]). `None` = SLO engine off. Requires `telemetry` and
    /// the event kernel; like the monitor it is strictly an observer — the
    /// summary digest and the stripped event log are byte-identical with it on
    /// or off.
    pub slo: Option<telemetry::SloConfig>,
    /// Graceful spot degradation ([`crate::recovery`]): act on the two-minute
    /// interruption notice by draining the worker (stop polling, hand the
    /// in-flight message back), checkpointing its alignment progress, and
    /// letting the next delivery resume from the checkpoint. `None` = legacy
    /// behavior: the reclaim strikes unannounced and the orphaned message waits
    /// out its visibility lease. Pure opt-in — with `None`, campaign digests
    /// and event logs are byte-identical to builds without the recovery layer.
    pub recovery: Option<crate::recovery::RecoveryConfig>,
    /// Simulation engine (default: the discrete-event kernel).
    pub engine: CampaignEngine,
}

impl CampaignConfig {
    /// A small-scale default around the given instance type and index size.
    pub fn new(instance_type: &'static InstanceType, index_bytes: u64) -> CampaignConfig {
        CampaignConfig {
            instance_type,
            spot: true,
            spot_market: SpotMarket::default(),
            scaling: ScalingPolicy::default(),
            visibility_timeout: SimDuration::from_secs(120.0),
            poll_interval: SimDuration::from_secs(20.0),
            scale_tick: SimDuration::from_secs(60.0),
            index_bytes,
            index_download_bps: 400e6,
            index_load_bps: 1e9,
            lease_margin: 3.0,
            max_sim_secs: 30.0 * 24.0 * 3600.0,
            faults: None,
            retry: RetryPolicy::default(),
            max_receive_count: None,
            telemetry: true,
            monitor: None,
            slo: None,
            recovery: None,
            engine: CampaignEngine::default(),
        }
    }

    /// Instance init seconds: index download + load into shared memory.
    pub fn init_secs(&self) -> f64 {
        assert!(self.index_download_bps > 0.0 && self.index_load_bps > 0.0);
        self.index_bytes as f64 / self.index_download_bps
            + self.index_bytes as f64 / self.index_load_bps
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), AtlasError> {
        self.scaling.validate().map_err(AtlasError::Cloud)?;
        if self.lease_margin < 1.0 {
            return Err(AtlasError::InvalidParams("lease_margin must be >= 1".into()));
        }
        if self.max_sim_secs <= 0.0 {
            return Err(AtlasError::InvalidParams("max_sim_secs must be positive".into()));
        }
        if let Some(plan) = &self.faults {
            plan.validate().map_err(AtlasError::Cloud)?;
        }
        self.retry.validate().map_err(AtlasError::Cloud)?;
        if self.max_receive_count == Some(0) {
            return Err(AtlasError::InvalidParams("max_receive_count must be >= 1".into()));
        }
        if let Some(slo) = &self.slo {
            slo.registry.validate().map_err(AtlasError::InvalidParams)?;
            if !(slo.sketch_alpha > 0.0 && slo.sketch_alpha < 1.0) {
                return Err(AtlasError::InvalidParams(
                    "slo.sketch_alpha must be in (0, 1)".into(),
                ));
            }
            if !self.telemetry {
                return Err(AtlasError::InvalidParams(
                    "slo requires telemetry (the SLO engine observes the telemetry stream)".into(),
                ));
            }
        }
        if let Some(recovery) = &self.recovery {
            recovery.validate()?;
        }
        Ok(())
    }
}

/// One sample of campaign telemetry (taken at every scale tick).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetSample {
    /// Simulated time of the sample.
    pub at_secs: f64,
    /// Active (not terminated) instances.
    pub active_instances: usize,
    /// Undeleted messages (visible + in flight).
    pub pending_messages: usize,
}

use serde::{Deserialize, Serialize};

/// Campaign outcome.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-accession results in completion order.
    pub completed: Vec<PipelineResult>,
    /// Total simulated campaign duration.
    pub makespan: SimDuration,
    /// USD/instance-hour accounting.
    pub cost: CostReport,
    /// Instances launched over the campaign.
    pub instances_launched: usize,
    /// Spot interruptions that struck.
    pub interruptions: usize,
    /// Deliveries with `receive_count > 1` (work redone after loss/timeouts).
    pub redeliveries: u64,
    /// Early-stopping aggregate (Fig. 4 totals when the policy is on).
    pub savings: SavingsSummary,
    /// DESeq2-normalized counts across completed accessions (None when fewer than
    /// one usable sample or no commonly expressed gene).
    pub normalized: Option<NormalizedMatrix>,
    /// Per-instance init seconds charged (download + load of the index).
    pub init_secs_per_instance: f64,
    /// Fleet telemetry over time.
    pub fleet_timeline: Vec<FleetSample>,
    /// Time-weighted mean active fleet size over the campaign.
    pub mean_fleet_size: f64,
    /// Fraction of active instance time spent busy on a pipeline (utilization —
    /// the paper's "high utilization of resources" goal).
    pub busy_fraction: f64,
    /// Accessions that exhausted `max_receive_count` and landed in the DLQ
    /// without ever completing (empty in fault-free campaigns).
    pub dead_lettered: Vec<String>,
    /// Injected-fault tallies (all zero when `CampaignConfig::faults` is `None`).
    pub fault_counters: FaultCounters,
    /// Jobs that finished an accession some other worker had already completed
    /// (at-least-once duplicates absorbed by the results map).
    pub duplicate_completions: u64,
    /// Instance-seconds spent on work that produced nothing durable: crashed
    /// jobs, duplicate completions, and results whose upload was lost. This is a
    /// labeled slice of already-charged time, mirrored into
    /// [`CostReport::wasted_usd`].
    pub wasted_compute_secs: f64,
    /// Instance-seconds of drained-attempt progress that a later resumed
    /// attempt did *not* redo — compute rescued by the checkpoint/resume path.
    /// Always 0 when [`CampaignConfig::recovery`] is off. Checkpointed progress
    /// that never gets salvaged (expired checkpoint, dead-lettered accession)
    /// falls back into `wasted_compute_secs` at settlement, so every drained
    /// second is accounted exactly once as salvaged or lost.
    pub salvaged_compute_secs: f64,
    /// Sim-time telemetry: span tree, metrics, event log and critical-path
    /// breakdown (`None` when [`CampaignConfig::telemetry`] is off). Excluded
    /// from [`CampaignReport::summary_digest`]; its own determinism is covered
    /// by the telemetry replay test.
    pub telemetry: Option<CampaignTelemetry>,
    /// Alerts the live monitor fired, in firing order (empty when
    /// [`CampaignConfig::monitor`] is `None`). Excluded from
    /// [`CampaignReport::summary_digest`] like the rest of the telemetry.
    pub alerts: Vec<AlertEvent>,
    /// Simulation events dispatched over the campaign. Identical across engines
    /// for the same campaign (the differential harness checks it); excluded from
    /// the digest because it describes the simulator, not the outcome.
    pub sim_events: u64,
    /// SLO attainment and the per-accession attribution ledger (`None` when
    /// [`CampaignConfig::slo`] is off). Excluded from
    /// [`CampaignReport::summary_digest`] like the rest of the telemetry.
    pub slo: Option<crate::ledger::SloReport>,
}

impl CampaignReport {
    /// An order-sensitive FNV-1a digest of everything the fault layer can
    /// perturb: completion order, dead letters, fault tallies, duplicate/waste
    /// accounting, makespan and cost bits. Two runs of the same workload with
    /// the same `FaultPlan` must produce identical digests (see the chaos
    /// determinism test); differing seeds almost surely differ.
    pub fn summary_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for r in &self.completed {
            eat(r.accession.as_bytes());
            eat(&[0xff]);
        }
        eat(&[0xfe]);
        for a in &self.dead_lettered {
            eat(a.as_bytes());
            eat(&[0xff]);
        }
        eat(&(self.interruptions as u64).to_le_bytes());
        eat(&self.redeliveries.to_le_bytes());
        eat(&(self.instances_launched as u64).to_le_bytes());
        eat(&self.duplicate_completions.to_le_bytes());
        let c = &self.fault_counters;
        for v in [
            c.s3_get_faults,
            c.s3_put_faults,
            c.sqs_receive_faults,
            c.sqs_delete_faults,
            c.sqs_extend_faults,
            c.duplicate_deliveries,
            c.worker_crashes,
            c.retry_attempts,
            c.retries_exhausted,
            c.checkpoint_put_faults,
        ] {
            eat(&v.to_le_bytes());
        }
        eat(&c.retry_backoff_secs.to_bits().to_le_bytes());
        eat(&self.wasted_compute_secs.to_bits().to_le_bytes());
        eat(&self.salvaged_compute_secs.to_bits().to_le_bytes());
        eat(&self.makespan.as_secs().to_bits().to_le_bytes());
        eat(&self.cost.total_usd.to_bits().to_le_bytes());
        eat(&self.cost.wasted_usd.to_bits().to_le_bytes());
        h
    }

    /// The run's [`telemetry::RunProfile`] for differential attribution
    /// (`telemetry::diff`). Starts from whatever the event log alone carries
    /// (per-instance waits/waste, event counts), then overrides with the
    /// authoritative report quantities: makespan and total dollars from the
    /// cost model, the latency/cost category decompositions from the
    /// attribution ledger (so diff category deltas are bit-exact deltas of
    /// ledger totals), per-accession turnarounds from ledger entries, and
    /// critical-path edges (`accession/dominant_stage`) from the telemetry
    /// section. Purely derived — reads the report, mutates nothing.
    pub fn run_profile(&self, label: &str) -> telemetry::RunProfile {
        let mut p = self
            .telemetry
            .as_ref()
            .and_then(|t| telemetry::RunProfile::from_event_log(label, &t.event_log).ok())
            .unwrap_or_default();
        p.label = label.to_string();
        p.makespan_secs = self.makespan.as_secs();
        p.cost_usd = self.cost.total_usd;
        if let Some(slo) = &self.slo {
            let t = &slo.totals;
            p.latency_categories = vec![
                ("queue_wait".to_string(), t.queue_wait_secs),
                ("download".to_string(), t.download_secs),
                ("align".to_string(), t.align_secs),
                ("collect".to_string(), t.collect_secs),
                ("retry_waste".to_string(), t.retry_waste_secs),
                ("idle_gap".to_string(), t.idle_gap_secs),
            ];
            p.cost_categories = vec![
                ("compute".to_string(), t.compute_usd),
                ("retry".to_string(), t.retry_usd),
                ("idle_amortized".to_string(), t.idle_amortized_usd),
            ];
            p.per_accession_secs = slo
                .ledger
                .iter()
                .map(|e| (e.accession.clone(), e.turnaround_secs))
                .collect();
            p.per_accession_secs.sort_by(|a, b| a.0.cmp(&b.0));
        }
        if let Some(t) = &self.telemetry {
            p.critical_edges = t
                .critical_path
                .per_accession
                .iter()
                .map(|a| (format!("{}/{}", a.accession, a.dominant_stage), a.dominant_secs))
                .collect();
            p.critical_edges.sort_by(|a, b| a.0.cmp(&b.0));
        }
        p
    }
}

/// The campaign event taxonomy, shared by both engines. Everything that happens
/// in a campaign is one of these, scheduled at an instant; there are no ticks.
pub(crate) enum Event {
    InstanceReady(InstanceId),
    Poll(InstanceId),
    JobDone {
        instance: InstanceId,
        epoch: u64,
        accession: String,
        receipt: ReceiptHandle,
        result: Box<PipelineResult>,
        /// Align-stage seconds skipped by resuming from a checkpoint (0 when
        /// the attempt started fresh or recovery is off).
        resumed_secs: f64,
    },
    /// The two-minute warning: `instance` will be reclaimed at `reclaim_at`.
    /// Only scheduled when [`CampaignConfig::recovery`] is on.
    SpotNotice {
        instance: InstanceId,
        reclaim_at: cloudsim::SimTime,
        source: cloudsim::ReclaimSource,
    },
    Interruption(InstanceId),
    WorkerCrash { instance: InstanceId, epoch: u64, accession: String, wasted_secs: f64 },
    ScaleTick,
}

/// The campaign driver.
pub struct Orchestrator {
    workload: Arc<dyn CampaignWorkload>,
    config: CampaignConfig,
}

impl Orchestrator {
    /// Create an orchestrator running the real pipeline. Validates the configuration.
    pub fn new(pipeline: Arc<AtlasPipeline>, config: CampaignConfig) -> Result<Orchestrator, AtlasError> {
        Orchestrator::with_workload(pipeline, config)
    }

    /// Create an orchestrator over any [`CampaignWorkload`] — the real pipeline or
    /// a modeled one for fleet-scale campaigns. Validates the configuration.
    pub fn with_workload(
        workload: Arc<dyn CampaignWorkload>,
        config: CampaignConfig,
    ) -> Result<Orchestrator, AtlasError> {
        config.validate()?;
        Ok(Orchestrator { workload, config })
    }

    /// Run the campaign over `accessions` on the discrete-event kernel.
    pub fn run(&self, accessions: &[String]) -> Result<CampaignReport, AtlasError> {
        match self.config.engine {
            CampaignEngine::EventKernel => {
                crate::kernel_engine::run_campaign(&self.workload, &self.config, accessions)
            }
        }
    }
}

/// Retroactively emit the span tree of one finished job: the `job` span covering
/// `[started, ended]`, its four pipeline-stage children, and the align stage's
/// seed/stitch/extend grandchildren (split by measured work units). Only spans
/// with `outcome == "ok"` feed [`telemetry::summarize`]'s stage statistics.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_job_spans(
    recorder: &Recorder,
    parent: SpanId,
    accession: &str,
    instance: InstanceId,
    started: f64,
    ended: f64,
    outcome: &str,
    result: &PipelineResult,
) {
    if !recorder.is_enabled() {
        return;
    }
    let job = recorder.span_closed(
        "job",
        parent,
        started,
        ended,
        &[
            ("accession", accession.to_string()),
            ("instance", instance.0.to_string()),
            ("outcome", outcome.to_string()),
            ("strategy", format!("{:?}", result.strategy)),
            ("mapping_rate", format!("{:.6}", result.mapping_rate)),
        ],
    );
    if outcome != "ok" {
        return; // duplicates/lost uploads are leaf spans: wasted, undifferentiated time
    }
    for (name, s, e) in result.stage_spans() {
        let attrs: &[(&str, String)] =
            if name == "fasterq-dump" { &result.dump_attrs } else { &[] };
        let stage = recorder.span_closed(name, job, started + s, started + e, attrs);
        if name == "align" {
            for (phase, ps, pe) in result.align_phase_spans() {
                recorder.span_closed(phase, stage, started + ps, started + pe, &[]);
            }
        }
    }
}

/// Emit up to 8 `progress` events for one job, timestamped inside its modeled
/// align window: snapshot `processed/processed_final` maps linearly onto
/// `[align_start, align_start + align_secs]`. The align stage duration already
/// reflects an early-stop cut, so the last snapshot lands exactly when the
/// stage ends — an `early_stop_eligible` alert therefore always precedes the
/// backdated `early_stop` decision event for the same accession.
pub(crate) fn emit_progress_events(
    recorder: &Recorder,
    accession: &str,
    instance: InstanceId,
    poll_secs: f64,
    result: &PipelineResult,
    history: &[star_aligner::ProgressSnapshot],
) {
    if !recorder.is_enabled() {
        return;
    }
    let align_start = poll_secs + result.stage_secs.prefix_secs(2);
    let align_secs = result.stage_secs.align_secs;
    let final_processed = history.last().map(|s| s.processed).unwrap_or(0).max(1);
    let n = history.len();
    let points = n.min(8);
    let mut last_idx = usize::MAX;
    for k in 1..=points {
        let i = k * n / points - 1;
        if i == last_idx {
            continue;
        }
        last_idx = i;
        let snap = &history[i];
        let t = align_start + align_secs * (snap.processed as f64 / final_processed as f64);
        recorder.event(
            t,
            "progress",
            vec![
                ("accession", JsonValue::from(accession)),
                ("instance", JsonValue::from(instance.0)),
                ("processed", JsonValue::from(snap.processed)),
                ("total", JsonValue::from(snap.total_reads)),
                ("processed_fraction", JsonValue::from(snap.processed_fraction())),
                ("mapping_rate", JsonValue::from(snap.mapped_fraction())),
            ],
        );
    }
}

/// DESeq2 step: assemble the counts matrix over accessions that produced counts and
/// normalize it. Returns `None` when there is nothing usable.
pub(crate) fn build_normalized(results: &[PipelineResult]) -> Option<NormalizedMatrix> {
    let with_counts: Vec<&PipelineResult> =
        results.iter().filter(|r| r.gene_counts.is_some()).collect();
    if with_counts.is_empty() {
        return None;
    }
    let gene_ids = with_counts[0].gene_counts.as_ref().expect("filtered").gene_ids.clone();
    let sample_ids: Vec<String> = with_counts.iter().map(|r| r.accession.clone()).collect();
    let mut matrix = CountsMatrix::zeros(gene_ids.clone(), sample_ids);
    for (j, r) in with_counts.iter().enumerate() {
        let gc = r.gene_counts.as_ref().expect("filtered");
        for (g, id) in gene_ids.iter().enumerate() {
            if let Some(c) = gc.count(id, Strandedness::Unstranded) {
                matrix.set(g, j, c);
            }
        }
    }
    deseq_norm::normalize(&matrix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use genomics::annotation::AnnotationParams;
    use genomics::{Annotation, EnsemblGenerator, EnsemblParams, Release};
    use sra_sim::accession::CatalogParams;
    use sra_sim::SraRepository;
    use star_aligner::index::{IndexParams, StarIndex};

    fn setup(n_accessions: usize, sc_fraction: f64) -> (Arc<AtlasPipeline>, Vec<String>, u64) {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = Arc::new(g.generate(Release::R111));
        let ann = Arc::new(Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap());
        let idx = Arc::new(StarIndex::build(&asm, &ann, &IndexParams::default()).unwrap());
        let index_bytes = idx.stats().total_bytes() as u64;
        let mut cat = CatalogParams::default();
        cat.n_accessions = n_accessions;
        cat.bulk_spots_median = 300;
        cat.single_cell_fraction = sc_fraction;
        let repo =
            Arc::new(SraRepository::new(Arc::clone(&asm), Arc::clone(&ann), cat.generate().unwrap())
                .with_spot_cap(600));
        let mut pc = PipelineConfig::default();
        pc.run_config.threads = 2;
        pc.run_config.batch_size = 100;
        let pipeline = Arc::new(AtlasPipeline::new(repo, idx, ann, pc).unwrap());
        let ids = pipeline.repository().ids();
        (pipeline, ids, index_bytes)
    }

    fn config(index_bytes: u64) -> CampaignConfig {
        let t = InstanceType::by_name("r6a.xlarge").unwrap();
        let mut c = CampaignConfig::new(t, index_bytes);
        c.scaling = ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 3 };
        c
    }

    #[test]
    fn campaign_processes_every_accession() {
        let (pipeline, ids, index_bytes) = setup(8, 0.25);
        let orch = Orchestrator::new(pipeline, config(index_bytes)).unwrap();
        let report = orch.run(&ids).unwrap();
        assert_eq!(report.completed.len(), 8);
        assert!(report.makespan.as_secs() > 0.0);
        assert!(report.instances_launched >= 1);
        assert!(report.cost.total_usd > 0.0);
        // Every accession appears exactly once.
        let mut seen: Vec<&str> = report.completed.iter().map(|r| r.accession.as_str()).collect();
        seen.sort_unstable();
        let mut expect: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn early_stops_show_up_in_savings() {
        let (pipeline, ids, index_bytes) = setup(8, 0.25);
        let orch = Orchestrator::new(pipeline, config(index_bytes)).unwrap();
        let report = orch.run(&ids).unwrap();
        assert_eq!(report.savings.runs, 8);
        assert_eq!(report.savings.stopped, 2, "25% of 8 accessions are single-cell");
        assert!(report.savings.saved_secs() > 0.0);
        assert!(report.savings.saved_fraction() > 0.0);
    }

    #[test]
    fn normalization_covers_completed_bulk_accessions() {
        let (pipeline, ids, index_bytes) = setup(8, 0.25);
        let orch = Orchestrator::new(pipeline, config(index_bytes)).unwrap();
        let report = orch.run(&ids).unwrap();
        let norm = report.normalized.expect("bulk accessions produce counts");
        assert_eq!(norm.sample_ids.len(), 6, "2 of 8 were early-stopped and excluded");
        assert_eq!(norm.size_factors.len(), 6);
        assert!(norm.size_factors.iter().all(|&f| f > 0.0));
    }

    #[test]
    fn spot_interruptions_cause_redelivery_not_loss() {
        let (pipeline, ids, index_bytes) = setup(10, 0.0);
        let mut cfg = config(index_bytes);
        // Violent interruption pressure with fast ASG reaction so deaths actually
        // strike within the short simulated campaign.
        cfg.spot_market = SpotMarket { price_factor: 0.35, interruptions_per_hour: 1200.0, seed: 3 };
        cfg.scale_tick = cloudsim::SimDuration::from_secs(5.0);
        cfg.poll_interval = cloudsim::SimDuration::from_secs(2.0);
        let orch = Orchestrator::new(pipeline, cfg).unwrap();
        let report = orch.run(&ids).unwrap();
        assert_eq!(report.completed.len(), 10, "all work completes despite interruptions");
        assert!(report.interruptions > 0, "premise: interruptions actually struck");
    }

    #[test]
    fn init_time_scales_with_index_bytes() {
        let (pipeline, _, _) = setup(2, 0.0);
        let t = InstanceType::by_name("r6a.xlarge").unwrap();
        let small = CampaignConfig::new(t, 1_000_000);
        let big = CampaignConfig::new(t, 10_000_000);
        assert!(big.init_secs() > small.init_secs() * 5.0);
        drop(pipeline);
    }

    #[test]
    fn fleet_scales_with_backlog_and_drains() {
        let (pipeline, ids, index_bytes) = setup(12, 0.0);
        let orch = Orchestrator::new(pipeline, config(index_bytes)).unwrap();
        let report = orch.run(&ids).unwrap();
        let peak = report.fleet_timeline.iter().map(|s| s.active_instances).max().unwrap();
        assert!(peak >= 2, "backlog of 12 with target 3/instance must scale out, peak {peak}");
        let first = report.fleet_timeline.first().unwrap();
        assert_eq!(first.pending_messages, 12);
    }

    #[test]
    fn utilization_metrics_are_sane() {
        let (pipeline, ids, index_bytes) = setup(10, 0.0);
        let orch = Orchestrator::new(pipeline, config(index_bytes)).unwrap();
        let report = orch.run(&ids).unwrap();
        assert!(report.mean_fleet_size > 0.0, "fleet existed");
        assert!(
            report.mean_fleet_size
                <= report.fleet_timeline.iter().map(|s| s.active_instances).max().unwrap() as f64,
            "mean cannot exceed peak"
        );
        assert!((0.0..=1.0).contains(&report.busy_fraction), "busy {}", report.busy_fraction);
    }

    #[test]
    fn fault_free_campaigns_report_zero_fault_accounting() {
        let (pipeline, ids, index_bytes) = setup(6, 0.0);
        let orch = Orchestrator::new(pipeline, config(index_bytes)).unwrap();
        let report = orch.run(&ids).unwrap();
        assert_eq!(report.fault_counters.total_faults(), 0);
        assert_eq!(report.fault_counters.retry_attempts, 0);
        assert!(report.dead_lettered.is_empty());
        assert_eq!(report.duplicate_completions, 0);
        assert_eq!(report.wasted_compute_secs, 0.0);
        assert_eq!(report.cost.wasted_usd, 0.0);
    }

    #[test]
    fn chaos_campaign_conserves_every_accession() {
        let (pipeline, ids, index_bytes) = setup(10, 0.0);
        let mut cfg = config(index_bytes);
        cfg.faults = Some(FaultPlan::chaos(11));
        cfg.max_receive_count = Some(6);
        cfg.scale_tick = cloudsim::SimDuration::from_secs(10.0);
        cfg.poll_interval = cloudsim::SimDuration::from_secs(5.0);
        let orch = Orchestrator::new(pipeline, cfg).unwrap();
        let report = orch.run(&ids).unwrap();
        assert_eq!(
            report.completed.len() + report.dead_lettered.len(),
            10,
            "conservation: {} completed, {:?} dead-lettered",
            report.completed.len(),
            report.dead_lettered
        );
        assert!(report.fault_counters.total_faults() > 0, "premise: chaos actually struck");
    }

    #[test]
    fn worker_crashes_attribute_wasted_cost() {
        let (pipeline, ids, index_bytes) = setup(8, 0.0);
        let mut cfg = config(index_bytes);
        cfg.faults = Some(FaultPlan {
            seed: 5,
            worker_crash_per_job: 0.5,
            ..FaultPlan::default()
        });
        cfg.max_receive_count = Some(20);
        let orch = Orchestrator::new(pipeline, cfg).unwrap();
        let report = orch.run(&ids).unwrap();
        assert!(report.fault_counters.worker_crashes > 0, "premise: crashes struck");
        assert!(report.wasted_compute_secs > 0.0);
        assert!(report.cost.wasted_usd > 0.0);
        assert!(report.cost.wasted_usd <= report.cost.total_usd);
        assert_eq!(report.completed.len(), 8, "crashes delay but do not lose work");
    }

    #[test]
    fn persistent_put_failures_dead_letter_instead_of_hanging() {
        let (pipeline, ids, index_bytes) = setup(4, 0.0);
        let mut cfg = config(index_bytes);
        // Every result upload fails forever: no accession can ever complete, so
        // each message must exhaust its receive allowance and dead-letter.
        cfg.faults = Some(FaultPlan { seed: 2, s3_put_fail: 1.0, ..FaultPlan::default() });
        cfg.max_receive_count = Some(3);
        cfg.scale_tick = cloudsim::SimDuration::from_secs(10.0);
        cfg.poll_interval = cloudsim::SimDuration::from_secs(5.0);
        let orch = Orchestrator::new(pipeline, cfg).unwrap();
        let report = orch.run(&ids).unwrap();
        assert_eq!(report.completed.len(), 0);
        assert_eq!(report.dead_lettered.len(), 4);
        assert!(report.fault_counters.retries_exhausted > 0);
        assert!(report.wasted_compute_secs > 0.0, "every attempt was wasted work");
    }

    #[test]
    fn invalid_config_rejected() {
        let (pipeline, _, index_bytes) = setup(2, 0.0);
        let mut cfg = config(index_bytes);
        cfg.lease_margin = 0.5;
        assert!(Orchestrator::new(Arc::clone(&pipeline), cfg).is_err());
        let mut cfg = config(index_bytes);
        cfg.max_sim_secs = 0.0;
        assert!(Orchestrator::new(pipeline, cfg).is_err());
    }

    // ——— Graceful spot degradation (notice → drain → checkpoint → resume) ———

    use crate::recovery::RecoveryConfig;
    use crate::workload::ModeledWorkload;

    /// A fleet-scale config over the modeled workload: paper-sized index
    /// (~105 s init), modeled ~12-minute jobs dominated by the align stage, so
    /// a 2-minute notice usually lands mid-align and has progress to save.
    fn modeled_cfg(interruptions_per_hour: f64, recovery: bool) -> CampaignConfig {
        let t = InstanceType::by_name("r6a.xlarge").unwrap();
        let mut c = CampaignConfig::new(t, 30_000_000_000);
        c.scaling = ScalingPolicy { min_size: 0, max_size: 8, target_backlog_per_instance: 4 };
        c.spot_market = SpotMarket { price_factor: 0.35, interruptions_per_hour, seed: 9 };
        if recovery {
            c.recovery = Some(RecoveryConfig::default());
        }
        c
    }

    #[test]
    fn recovery_is_pure_opt_in_without_reclaims() {
        // Zero interruption pressure: with no reclaims there are no notices, so
        // the recovery layer must be invisible — not one extra fault roll or
        // digest-relevant quantity.
        let w = ModeledWorkload::default().into_workload();
        let ids = ModeledWorkload::accessions(12);
        let off = Orchestrator::with_workload(Arc::clone(&w), modeled_cfg(0.0, false))
            .unwrap()
            .run(&ids)
            .unwrap();
        let on = Orchestrator::with_workload(w, modeled_cfg(0.0, true))
            .unwrap()
            .run(&ids)
            .unwrap();
        assert_eq!(
            on.summary_digest(),
            off.summary_digest(),
            "recovery with no reclaims must be invisible"
        );
        assert_eq!(on.salvaged_compute_secs, 0.0);
        assert_eq!(off.salvaged_compute_secs, 0.0);
    }

    #[test]
    fn spot_drains_checkpoint_and_salvage_compute() {
        let w = ModeledWorkload::default().into_workload();
        let ids = ModeledWorkload::accessions(40);
        let cfg = modeled_cfg(12.0, true);
        let report =
            Orchestrator::with_workload(Arc::clone(&w), cfg.clone()).unwrap().run(&ids).unwrap();
        assert_eq!(report.completed.len(), 40, "dead-lettered: {:?}", report.dead_lettered);
        assert!(report.interruptions > 0, "premise: reclaims actually struck");
        assert!(report.salvaged_compute_secs > 0.0, "drained progress was salvaged");
        let again = Orchestrator::with_workload(w, cfg).unwrap().run(&ids).unwrap();
        assert_eq!(report.summary_digest(), again.summary_digest(), "recovery replays exactly");
    }

    #[test]
    fn recovery_reduces_wasted_compute_under_spot_pressure() {
        let w = ModeledWorkload::default().into_workload();
        let ids = ModeledWorkload::accessions(40);
        let mut off_cfg = modeled_cfg(12.0, false);
        off_cfg.slo = Some(telemetry::SloConfig::default());
        let mut on_cfg = modeled_cfg(12.0, true);
        on_cfg.slo = Some(telemetry::SloConfig::default());
        let off = Orchestrator::with_workload(Arc::clone(&w), off_cfg).unwrap().run(&ids).unwrap();
        let on = Orchestrator::with_workload(w, on_cfg).unwrap().run(&ids).unwrap();
        assert!(off.interruptions > 0 && on.interruptions > 0, "premise: reclaims struck");
        assert!(on.salvaged_compute_secs > 0.0);
        // Interrupted-attempt time surfaces as idle gap (the accession waits
        // for redelivery and the redo starts from zero); retry waste covers the
        // explicitly burned slices. Recovery trades some of both for salvage.
        let burned = |r: &CampaignReport| {
            let t = &r.slo.as_ref().unwrap().totals;
            t.retry_waste_secs + t.idle_gap_secs
        };
        assert!(
            burned(&on) < burned(&off),
            "checkpoint/resume must cut waste: on {} vs off {}",
            burned(&on),
            burned(&off)
        );
    }
}
