//! Differential verification: the kernel engine against its own replay.
//!
//! The discrete-event kernel is only trustworthy because this harness can
//! prove, for any seeded campaign, that a second run on identical config +
//! workload reproduces the first *byte for byte*: same completion order, same
//! dead letters, same fault tallies, same makespan and cost down to the f64
//! bit patterns (all folded into [`CampaignReport::summary_digest`]), same
//! dispatched-event count, and the same telemetry event log. The legacy tick
//! loop this harness originally compared against has been deleted; determinism
//! is now pinned by replay, and the kernel's event semantics by the chaos and
//! conservation suites. The chaos/differential tests drive this across
//! fault-free, chaos-seeded, and fleet-scale modeled campaigns.
//!
//! Monitor-gated `progress`/`alert` lines are stripped from the log comparison —
//! they are observer output whose presence depends only on the monitor config
//! (the pure-observer tests cover them); everything else must match exactly.

use std::sync::Arc;

use crate::orchestrator::{CampaignConfig, CampaignReport, Orchestrator};
use crate::workload::CampaignWorkload;
use crate::AtlasError;

/// The same campaign run twice through the kernel engine.
#[derive(Debug)]
pub struct EngineComparison {
    /// Report from the first run.
    pub first: CampaignReport,
    /// Report from the replay on identical config + workload.
    pub replay: CampaignReport,
}

/// Run `accessions` through the kernel engine twice on identical config +
/// workload, returning both reports for byte-level comparison.
pub fn run_differential(
    workload: Arc<dyn CampaignWorkload>,
    config: &CampaignConfig,
    accessions: &[String],
) -> Result<EngineComparison, AtlasError> {
    let first =
        Orchestrator::with_workload(Arc::clone(&workload), config.clone())?.run(accessions)?;
    let replay = Orchestrator::with_workload(workload, config.clone())?.run(accessions)?;
    Ok(EngineComparison { first, replay })
}

/// The structured event log with monitor-gated lines (`progress`, `alert`)
/// removed — the part of the log every replay must reproduce byte for byte.
/// `None` when telemetry was off.
pub fn stripped_event_log(report: &CampaignReport) -> Option<String> {
    let t = report.telemetry.as_ref()?;
    Some(
        t.event_log
            .lines()
            .filter(|l| !l.contains("\"kind\":\"progress\"") && !l.contains("\"kind\":\"alert\""))
            .collect::<Vec<_>>()
            .join("\n"),
    )
}

impl EngineComparison {
    /// Differential attribution between the two runs: where the seconds and
    /// dollars moved, per ledger category / accession / instance /
    /// critical-path edge. For a true replay this is exactly empty
    /// (`DiffReport::is_empty`); on divergence it is the root-cause table.
    pub fn attribution(&self) -> telemetry::DiffReport {
        telemetry::diff(
            &self.first.run_profile("first"),
            &self.replay.run_profile("replay"),
        )
    }

    /// Check byte-for-byte equivalence. `Ok(())` when the runs agree;
    /// otherwise every observed divergence, labeled, followed by the
    /// [`Self::attribution`] waterfall so the failure says *where* the runs
    /// drifted, not just that they did.
    pub fn assert_equivalent(&self) -> Result<(), String> {
        let mut diffs: Vec<String> = Vec::new();
        let (l, k) = (&self.first, &self.replay);
        if l.summary_digest() != k.summary_digest() {
            diffs.push(format!(
                "summary digest: first {:#018x} != replay {:#018x}",
                l.summary_digest(),
                k.summary_digest()
            ));
        }
        let l_order: Vec<&str> = l.completed.iter().map(|r| r.accession.as_str()).collect();
        let k_order: Vec<&str> = k.completed.iter().map(|r| r.accession.as_str()).collect();
        if l_order != k_order {
            diffs.push(format!(
                "completion order diverges at index {}",
                l_order.iter().zip(&k_order).position(|(a, b)| a != b).unwrap_or(l_order.len().min(k_order.len()))
            ));
        }
        if l.dead_lettered != k.dead_lettered {
            diffs.push(format!(
                "dead letters: first {:?} != replay {:?}",
                l.dead_lettered, k.dead_lettered
            ));
        }
        if l.makespan.as_secs().to_bits() != k.makespan.as_secs().to_bits() {
            diffs.push(format!(
                "makespan: first {} != replay {}",
                l.makespan.as_secs(),
                k.makespan.as_secs()
            ));
        }
        if l.cost.total_usd.to_bits() != k.cost.total_usd.to_bits() {
            diffs.push(format!(
                "total cost: first {} != replay {}",
                l.cost.total_usd, k.cost.total_usd
            ));
        }
        if l.sim_events != k.sim_events {
            diffs.push(format!(
                "dispatched events: first {} != replay {}",
                l.sim_events, k.sim_events
            ));
        }
        if l.instances_launched != k.instances_launched {
            diffs.push(format!(
                "instances launched: first {} != replay {}",
                l.instances_launched, k.instances_launched
            ));
        }
        if l.interruptions != k.interruptions {
            diffs.push(format!(
                "interruptions: first {} != replay {}",
                l.interruptions, k.interruptions
            ));
        }
        if l.fault_counters != k.fault_counters {
            diffs.push("fault counters diverge".to_string());
        }
        if l.fleet_timeline != k.fleet_timeline {
            diffs.push("fleet timelines diverge".to_string());
        }
        match (stripped_event_log(l), stripped_event_log(k)) {
            (Some(a), Some(b)) if a != b => {
                let at = a
                    .lines()
                    .zip(b.lines())
                    .position(|(x, y)| x != y)
                    .map(|i| format!("first divergent line {i}"))
                    .unwrap_or_else(|| "lengths differ".to_string());
                diffs.push(format!("stripped event logs differ ({at})"));
            }
            (Some(_), Some(_)) => {}
            (None, None) => {}
            _ => diffs.push("one run recorded telemetry, the other did not".to_string()),
        }
        if diffs.is_empty() {
            Ok(())
        } else {
            Err(format!("{}\n{}", diffs.join("; "), self.attribution().render_text()))
        }
    }
}
