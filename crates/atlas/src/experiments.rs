//! Regeneration code for every figure and table in the paper's evaluation.
//!
//! Each experiment is a pure function from a scalable config to a structured result;
//! the `atlas-bench` crate's `experiments` binary prints them as tables
//! (EXPERIMENTS.md records paper-vs-measured). Tests run the same functions at
//! reduced scale, so the experiment logic itself is covered by the suite.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`fig3_genome_release`] | Fig. 3 — per-file STAR time, release 108 vs 111 index |
//! | [`index_comparison`]    | §III-A table — index sizes, instance, mapping-rate delta |
//! | [`fig4_early_stopping`] | Fig. 4 — early-stopping time savings over a catalog |
//! | [`cloud_campaign`]      | Fig. 1+2 — the architecture end-to-end on the DES |
//! | [`right_size_comparison`] | §III-A corollary — cost of 108- vs 111-sized fleets |
//! | [`spot_recovery`]       | E7 — waste with vs without checkpoint/resume under a reclaim storm |

use std::sync::Arc;
use std::time::Instant;

use crate::early_stop::{EarlyStopPolicy, SavingsSummary};
use crate::orchestrator::{CampaignConfig, CampaignReport, Orchestrator};
use crate::pipeline::{AtlasPipeline, PipelineConfig};
use crate::right_size::RightSizer;
use crate::AtlasError;
use genomics::annotation::AnnotationParams;
use genomics::{
    Annotation, Assembly, EnsemblGenerator, EnsemblParams, LibraryType, ReadSimulator, Release,
    SimulatorParams,
};
use serde::{Deserialize, Serialize};
use sra_sim::accession::{CatalogParams, LibraryStrategy};
use sra_sim::SraRepository;
use star_aligner::index::{IndexParams, IndexStats, StarIndex};
use star_aligner::runner::{RunConfig, Runner};
use star_aligner::AlignParams;

/// Human toplevel genome length used when projecting synthetic index sizes to paper
/// scale (GRCh38 ≈ 3.1 Gbp of chromosomes).
pub const HUMAN_BASES: f64 = 3.1e9;

/// Real STAR's empirical index bytes per genome base (a human release-111 toplevel
/// index is 29.5 GiB over ~3.1 Gbp ≈ 9.5 B/base: 1-byte genome + ~8-byte-effective
/// suffix array + SAindex). Our u32 suffix array is leaner (~4.4 B/base), so paper-
/// scale GiB projections use this constant rather than our measured bytes; the
/// 108/111 *ratio* is identical either way because it tracks genome length.
pub const STAR_BYTES_PER_BASE: f64 = 9.5;

/// Project a synthetic index to its real-STAR human-scale memory footprint and build
/// the right-sizer for it.
pub fn paper_scale_sizer(stats: &IndexStats, linear_scale: f64) -> RightSizer {
    let gib = stats.genome_len as f64 * linear_scale * STAR_BYTES_PER_BASE / (1u64 << 30) as f64;
    RightSizer::for_index_gib(gib)
}

/// Shared experiment substrate: one generator, the two assemblies, the annotation and
/// both indices.
pub struct Substrate {
    /// The assembly generator (hotspot layout source).
    pub generator: EnsemblGenerator,
    /// Release-108 toplevel assembly.
    pub asm_108: Arc<Assembly>,
    /// Release-111 toplevel assembly.
    pub asm_111: Arc<Assembly>,
    /// Annotation (identical gene set for both assemblies).
    pub annotation: Arc<Annotation>,
    /// Index built on release 108.
    pub index_108: Arc<StarIndex>,
    /// Index built on release 111.
    pub index_111: Arc<StarIndex>,
}

impl Substrate {
    /// Build the full substrate from generator parameters.
    pub fn build(params: EnsemblParams) -> Result<Substrate, AtlasError> {
        let generator = EnsemblGenerator::new(params).map_err(star_aligner::StarError::Genomics)?;
        let asm_108 = Arc::new(generator.generate(Release::R108));
        let asm_111 = Arc::new(generator.generate(Release::R111));
        // Annotate on the 111 assembly; the gene set (chromosomes + novel scaffolds)
        // is present identically in 108.
        let annotation = Arc::new(
            Annotation::simulate(&asm_111, &generator, &AnnotationParams::default())
                .map_err(star_aligner::StarError::Genomics)?,
        );
        let index_params = IndexParams::default();
        let index_108 = Arc::new(StarIndex::build(&asm_108, &annotation, &index_params)?);
        let index_111 = Arc::new(StarIndex::build(&asm_111, &annotation, &index_params)?);
        Ok(Substrate { generator, asm_108, asm_111, annotation, index_108, index_111 })
    }

    /// Linear scale factor from simulated chromosomes to the human genome.
    pub fn human_scale(&self) -> f64 {
        let chrom_bases: usize = self.asm_111.chromosomes().map(|c| c.len()).sum();
        HUMAN_BASES / chrom_bases.max(1) as f64
    }
}

// ---------------------------------------------------------------------------
// E1 / Fig. 3
// ---------------------------------------------------------------------------

/// Configuration for the Fig. 3 experiment.
#[derive(Clone, Debug)]
pub struct Fig3Config {
    /// Assembly generator parameters.
    pub ensembl: EnsemblParams,
    /// Number of FASTQ files (paper: 49).
    pub n_files: usize,
    /// Median reads per file (log-normal around this; paper files average 15.9 GiB).
    pub reads_median: usize,
    /// Log-normal sigma of file sizes.
    pub reads_sigma: f64,
    /// Aligner threads.
    pub threads: usize,
    /// Workload seed.
    pub seed: u64,
    /// `--outFilterMultimapNmax` used for both runs. The toplevel assembly's
    /// duplicated scaffolds multimap genic reads, so the Atlas runs STAR with an
    /// ENCODE-style cap of 20 instead of the default 10; both releases use the same
    /// setting, preserving the mapping-rate comparison.
    pub multimap_cap: usize,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            ensembl: EnsemblParams::default(),
            n_files: 49,
            reads_median: 4_000,
            reads_sigma: 0.5,
            threads: 4,
            seed: 7,
            multimap_cap: 20,
        }
    }
}

/// One file's row in Fig. 3.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig3File {
    /// File label.
    pub name: String,
    /// Reads aligned.
    pub reads: usize,
    /// FASTQ size in bytes (weighting factor).
    pub fastq_bytes: u64,
    /// Seconds on the release-108 index.
    pub secs_108: f64,
    /// Seconds on the release-111 index.
    pub secs_111: f64,
    /// Mapping rate on 108.
    pub rate_108: f64,
    /// Mapping rate on 111.
    pub rate_111: f64,
}

impl Fig3File {
    /// Per-file speedup of 111 over 108.
    pub fn speedup(&self) -> f64 {
        if self.secs_111 <= 0.0 {
            0.0
        } else {
            self.secs_108 / self.secs_111
        }
    }
}

/// Fig. 3 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Per-file rows.
    pub files: Vec<Fig3File>,
    /// FASTQ-size-weighted mean speedup (the paper's ">12×" headline).
    pub weighted_speedup: f64,
    /// Index stats for both releases.
    pub stats_108: IndexStats,
    /// Index stats for release 111.
    pub stats_111: IndexStats,
    /// Mean |mapping-rate difference| across files (paper: <1 %).
    pub mean_rate_diff: f64,
}

/// Regenerate Fig. 3: align the same FASTQ set against both indices and compare
/// execution times.
pub fn fig3_genome_release(config: &Fig3Config) -> Result<Fig3Result, AtlasError> {
    let sub = Substrate::build(config.ensembl.clone())?;
    let run_config = RunConfig {
        threads: config.threads,
        batch_size: 2_000,
        quant: false,
        record_alignments: false,
        collect_junctions: false,
    };
    let mut files = Vec::with_capacity(config.n_files);
    let mut rng_seed = config.seed;
    for i in 0..config.n_files {
        rng_seed = rng_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // Log-normal-ish file size from the seed stream.
        let u = ((rng_seed >> 11) as f64 / (1u64 << 53) as f64).clamp(1e-9, 1.0 - 1e-9);
        let z = inverse_normal_cdf(u);
        let reads = ((config.reads_median as f64) * (config.reads_sigma * z).exp()).max(500.0) as usize;

        let mut sim = ReadSimulator::new(
            &sub.asm_111,
            &sub.annotation,
            SimulatorParams::for_library(LibraryType::BulkPolyA),
            rng_seed,
        )
        .map_err(star_aligner::StarError::Genomics)?;
        let reads_vec: Vec<genomics::FastqRecord> =
            sim.simulate(reads, &format!("F{i}")).into_iter().map(|r| r.fastq).collect();
        let fastq_bytes: u64 =
            reads_vec.iter().map(|r| (r.id.len() + 2 * r.seq.len() + 6) as u64).sum();

        let mut row = Fig3File {
            name: format!("fastq_{i:02}"),
            reads: reads_vec.len(),
            fastq_bytes,
            secs_108: 0.0,
            secs_111: 0.0,
            rate_108: 0.0,
            rate_111: 0.0,
        };
        let align_params =
            AlignParams { out_filter_multimap_nmax: config.multimap_cap, ..AlignParams::default() };
        for (index, secs, rate) in [
            (&sub.index_108, &mut row.secs_108, &mut row.rate_108),
            (&sub.index_111, &mut row.secs_111, &mut row.rate_111),
        ] {
            let runner = Runner::new(index, align_params.clone(), run_config.clone())?;
            let started = Instant::now();
            let out = runner.run(&reads_vec, None, None, None)?;
            *secs = started.elapsed().as_secs_f64();
            *rate = out.mapped_fraction();
        }
        files.push(row);
    }

    let total_w: f64 = files.iter().map(|f| f.fastq_bytes as f64).sum();
    let weighted_speedup =
        files.iter().map(|f| f.speedup() * f.fastq_bytes as f64).sum::<f64>() / total_w.max(1.0);
    let mean_rate_diff = files.iter().map(|f| (f.rate_108 - f.rate_111).abs()).sum::<f64>()
        / files.len().max(1) as f64;
    Ok(Fig3Result {
        weighted_speedup,
        stats_108: sub.index_108.stats(),
        stats_111: sub.index_111.stats(),
        mean_rate_diff,
        files,
    })
}

/// Inverse standard-normal CDF (Acklam's rational approximation; plenty for workload
/// shaping).
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

// ---------------------------------------------------------------------------
// E2 / §III-A table
// ---------------------------------------------------------------------------

/// §III-A configuration-table result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IndexComparison {
    /// Index stats, release 108.
    pub stats_108: IndexStats,
    /// Index stats, release 111.
    pub stats_111: IndexStats,
    /// Size ratio 108/111 (paper: 85/29.5 ≈ 2.88).
    pub size_ratio: f64,
    /// Projected human-scale index size in GiB, release 108 (paper: 85).
    pub projected_gib_108: f64,
    /// Projected human-scale index size in GiB, release 111 (paper: 29.5).
    pub projected_gib_111: f64,
    /// Cheapest instance fitting the 108 index.
    pub instance_108: String,
    /// Cheapest instance fitting the 111 index.
    pub instance_111: String,
}

/// Regenerate the §III-A configuration table.
pub fn index_comparison(params: EnsemblParams) -> Result<IndexComparison, AtlasError> {
    let sub = Substrate::build(params)?;
    let s108 = sub.index_108.stats();
    let s111 = sub.index_111.stats();
    let scale = sub.human_scale();
    let sizer_108 = paper_scale_sizer(&s108, scale);
    let sizer_111 = paper_scale_sizer(&s111, scale);
    Ok(IndexComparison {
        size_ratio: s108.total_bytes() as f64 / s111.total_bytes() as f64,
        projected_gib_108: sizer_108.index_gib,
        projected_gib_111: sizer_111.index_gib,
        instance_108: sizer_108.choose().map(|t| t.name.to_string()).unwrap_or_else(|| "none".into()),
        instance_111: sizer_111.choose().map(|t| t.name.to_string()).unwrap_or_else(|| "none".into()),
        stats_108: s108,
        stats_111: s111,
    })
}

// ---------------------------------------------------------------------------
// Hash-seeding tradeoff — the SNAP-style layer priced Fig. 3-style
// ---------------------------------------------------------------------------

/// One seed length's row in the hash-seeding index-size/speed tradeoff.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HashTradeoffRow {
    /// Fixed hash seed length `s`.
    pub seed_len: usize,
    /// Distinct `s`-mers in the genome (table entries).
    pub distinct_seeds: usize,
    /// Resident table bytes at ≤ 0.5 load.
    pub table_bytes: usize,
    /// Table bytes relative to the serialized release-111 index.
    pub bytes_vs_index: f64,
    /// Seed-collection nanoseconds per read with the hash layer enabled.
    pub hash_ns_per_read: f64,
    /// Speedup of the hash layer over the suffix-array path for this row.
    pub speedup: f64,
}

/// The measured tradeoff plus its premises.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HashTradeoffResult {
    /// Seed-collection nanoseconds per read on the plain suffix-array path
    /// (deep prefix tables only) — the common baseline for every row.
    pub sa_ns_per_read: f64,
    /// Serialized release-111 index bytes (the denominator of `bytes_vs_index`).
    pub index_bytes: usize,
    /// Reads timed per measurement.
    pub n_reads: usize,
    /// One row per seed length, ascending.
    pub rows: Vec<HashTradeoffRow>,
}

/// Measure the index-size/speed frontier of the SNAP-style hash seeding layer:
/// for each seed length `s`, the table's resident bytes against the
/// seed-collection speedup it buys over the suffix-array path. Mirrors the
/// paper's Fig. 3 pricing of index size against instance memory — the hash
/// table is an *additional* footprint knob with the opposite sign (spend bytes,
/// save time). Every configuration is differentially checked to produce
/// identical seeds before it is timed.
pub fn hash_seed_tradeoff(
    params: EnsemblParams,
    seed_lens: &[usize],
) -> Result<HashTradeoffResult, AtlasError> {
    use star_aligner::seed::{collect_seeds_packed, Seed, SeedProbeScratch};
    use star_aligner::{HashSeedIndex, Packed2};

    let sub = Substrate::build(params)?;
    let index = &sub.index_111;
    let index_bytes = index.stats().total_bytes();
    let mut sim = ReadSimulator::new(
        &sub.asm_111,
        &sub.annotation,
        SimulatorParams::for_library(LibraryType::BulkPolyA),
        17,
    )
    .map_err(star_aligner::StarError::Genomics)?;
    let reads: Vec<Packed2> = sim
        .simulate(512, "HT")
        .into_iter()
        .map(|r| Packed2::from_codes(r.fastq.seq.codes()))
        .collect();
    let align = AlignParams::default();
    let deep = index.deep_prefix();

    // Min-of-rounds seed-collection time per read; machine-load spikes only
    // ever slow a round down, so the minimum is the stable estimator.
    let time_ns = |hash: Option<&HashSeedIndex>| -> f64 {
        let mut seeds = Vec::new();
        let mut probe = SeedProbeScratch::default();
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let started = Instant::now();
            let mut total = 0usize;
            for q in &reads {
                collect_seeds_packed(index, deep, hash, q, &align, &mut seeds, &mut probe);
                total += seeds.len();
            }
            assert!(total > 0, "premise: the workload must actually seed");
            best = best.min(started.elapsed().as_secs_f64() * 1e9 / reads.len() as f64);
        }
        best
    };

    let collect_all = |hash: Option<&HashSeedIndex>| -> Vec<Vec<Seed>> {
        let mut seeds = Vec::new();
        let mut probe = SeedProbeScratch::default();
        reads
            .iter()
            .map(|q| {
                collect_seeds_packed(index, deep, hash, q, &align, &mut seeds, &mut probe);
                seeds.clone()
            })
            .collect()
    };

    let sa_seeds = collect_all(None);
    let sa_ns_per_read = time_ns(None);
    let mut rows = Vec::new();
    for &s in seed_lens {
        let hash = HashSeedIndex::build(index.sa(), index.genome().seq(), s);
        assert_eq!(
            collect_all(Some(&hash)),
            sa_seeds,
            "hash seeding (s={s}) must not change a single seed"
        );
        let hash_ns_per_read = time_ns(Some(&hash));
        rows.push(HashTradeoffRow {
            seed_len: s,
            distinct_seeds: hash.distinct_seeds(),
            table_bytes: hash.byte_size(),
            bytes_vs_index: hash.byte_size() as f64 / index_bytes as f64,
            hash_ns_per_read,
            speedup: sa_ns_per_read / hash_ns_per_read,
        });
    }
    Ok(HashTradeoffResult { sa_ns_per_read, index_bytes, n_reads: reads.len(), rows })
}

// ---------------------------------------------------------------------------
// E3 / Fig. 4
// ---------------------------------------------------------------------------

/// Configuration for the Fig. 4 experiment.
#[derive(Clone, Debug)]
pub struct Fig4Config {
    /// Assembly generator parameters (release 111 is used, as the optimized
    /// pipeline would).
    pub ensembl: EnsemblParams,
    /// Catalog shape (paper: 1000 accessions, 3.8 % single-cell).
    pub catalog: CatalogParams,
    /// Cap on generated reads per accession (experiment scaling).
    pub spot_cap: Option<u64>,
    /// The early-stopping policy under test.
    pub policy: EarlyStopPolicy,
    /// Aligner threads.
    pub threads: usize,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            ensembl: EnsemblParams::default(),
            catalog: CatalogParams::default(),
            spot_cap: Some(4_000),
            policy: EarlyStopPolicy::default(),
            threads: 4,
        }
    }
}

/// One alignment's bar in Fig. 4.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig4Run {
    /// Accession id.
    pub accession: String,
    /// Library strategy (ground truth; the paper found all stopped runs were
    /// single-cell).
    pub strategy: LibraryStrategy,
    /// Was the run terminated early?
    pub stopped: bool,
    /// Seconds actually spent aligning (modeled scale).
    pub actual_secs: f64,
    /// Projected full-run seconds (= actual for completed runs).
    pub projected_secs: f64,
    /// Mapping rate at the end of the run.
    pub mapping_rate: f64,
}

/// Fig. 4 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Per-run rows (catalog order).
    pub runs: Vec<Fig4Run>,
    /// Aggregate savings (paper: 38/1000 stopped, 30.4 h of 155.8 h = 19.5 %).
    pub summary: SavingsSummary,
}

impl Fig4Result {
    /// Were all stopped runs single-cell libraries (the paper's finding)?
    pub fn stopped_all_single_cell(&self) -> bool {
        self.runs
            .iter()
            .filter(|r| r.stopped)
            .all(|r| r.strategy == LibraryStrategy::SingleCell)
    }
}

/// Regenerate Fig. 4: run the pipeline (alignment stage) over the catalog with early
/// stopping and account the savings.
pub fn fig4_early_stopping(config: &Fig4Config) -> Result<Fig4Result, AtlasError> {
    let sub = Substrate::build(config.ensembl.clone())?;
    let catalog = config.catalog.generate()?;
    let mut repo =
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog.clone());
    if let Some(cap) = config.spot_cap {
        repo = repo.with_spot_cap(cap);
    }
    let mut pc = PipelineConfig { early_stop: Some(config.policy), ..PipelineConfig::default() };
    pc.run_config.threads = config.threads;
    pc.run_config.batch_size = 500;
    pc.run_config.quant = false;
    let pipeline =
        AtlasPipeline::new(Arc::new(repo), Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc)?;

    let mut runs = Vec::with_capacity(catalog.len());
    let mut summary = SavingsSummary::default();
    for meta in &catalog {
        let r = pipeline.run_accession(&meta.id)?;
        summary.add(&r.early_stop);
        runs.push(Fig4Run {
            accession: meta.id.clone(),
            strategy: meta.strategy,
            stopped: r.early_stopped(),
            actual_secs: r.early_stop.actual_secs,
            projected_secs: r.early_stop.projected_full_secs,
            mapping_rate: r.mapping_rate,
        });
    }
    Ok(Fig4Result { runs, summary })
}

// ---------------------------------------------------------------------------
// E3b — checkpoint analysis (the paper's Log.progress.out methodology)
// ---------------------------------------------------------------------------

/// Configuration for the checkpoint analysis.
#[derive(Clone, Debug)]
pub struct CheckpointAnalysisConfig {
    /// Assembly generator parameters.
    pub ensembl: EnsemblParams,
    /// Catalog to record traces over (the paper used 1000 progress files).
    pub catalog: CatalogParams,
    /// Cap on generated reads per accession.
    pub spot_cap: Option<u64>,
    /// Candidate checkpoint fractions.
    pub fractions: Vec<f64>,
    /// The mapping-rate threshold (paper: 0.30).
    pub min_rate: f64,
    /// Aligner threads.
    pub threads: usize,
}

impl Default for CheckpointAnalysisConfig {
    fn default() -> Self {
        CheckpointAnalysisConfig {
            ensembl: EnsemblParams::default(),
            catalog: CatalogParams { n_accessions: 200, ..CatalogParams::default() },
            spot_cap: Some(2_000),
            fractions: vec![0.02, 0.05, 0.10, 0.20, 0.30, 0.50],
            min_rate: 0.30,
            threads: 4,
        }
    }
}

/// Reproduce the paper's progress-log analysis: record complete-run traces over the
/// catalog and replay every candidate checkpoint fraction.
pub fn checkpoint_analysis(
    config: &CheckpointAnalysisConfig,
) -> Result<crate::analysis::CheckpointAnalysis, AtlasError> {
    let sub = Substrate::build(config.ensembl.clone())?;
    let catalog = config.catalog.generate()?;
    let mut repo =
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog);
    if let Some(cap) = config.spot_cap {
        repo = repo.with_spot_cap(cap);
    }
    let mut pc = PipelineConfig { early_stop: None, ..PipelineConfig::default() };
    pc.run_config.threads = config.threads;
    pc.run_config.quant = false;
    let pipeline =
        AtlasPipeline::new(Arc::new(repo), Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc)?;
    let traces = crate::analysis::record_traces(&pipeline)?;
    Ok(crate::analysis::analyze_checkpoints(&traces, &config.fractions, config.min_rate))
}

// ---------------------------------------------------------------------------
// E4 / architecture campaign & E5 / right-sizing
// ---------------------------------------------------------------------------

/// Configuration for the cloud-campaign experiment.
#[derive(Clone, Debug)]
pub struct CampaignExperimentConfig {
    /// Assembly generator parameters.
    pub ensembl: EnsemblParams,
    /// Catalog shape.
    pub catalog: CatalogParams,
    /// Cap on generated reads per accession.
    pub spot_cap: Option<u64>,
    /// Which release's index the fleet uses.
    pub release: Release,
    /// Spot interruptions per instance-hour (0 = stable fleet).
    pub interruptions_per_hour: f64,
    /// Aligner threads per worker.
    pub threads: usize,
    /// Use the paper-scale index bytes (85/29.5 GiB) for instance init & sizing
    /// instead of the measured synthetic size.
    pub paper_scale_index: bool,
}

impl Default for CampaignExperimentConfig {
    fn default() -> Self {
        CampaignExperimentConfig {
            ensembl: EnsemblParams::default(),
            catalog: CatalogParams { n_accessions: 100, ..CatalogParams::default() },
            spot_cap: Some(1_500),
            release: Release::R111,
            interruptions_per_hour: 0.2,
            threads: 4,
            paper_scale_index: true,
        }
    }
}

/// Run the end-to-end architecture campaign (E4) and return the report plus the
/// instance type the right-sizer picked.
pub fn cloud_campaign(
    config: &CampaignExperimentConfig,
) -> Result<(CampaignReport, String), AtlasError> {
    let sub = Substrate::build(config.ensembl.clone())?;
    let (index, assembly) = match config.release {
        Release::R108 => (Arc::clone(&sub.index_108), Arc::clone(&sub.asm_108)),
        _ => (Arc::clone(&sub.index_111), Arc::clone(&sub.asm_111)),
    };
    let _ = assembly;
    let catalog = config.catalog.generate()?;
    let mut repo = SraRepository::new(
        Arc::clone(&sub.asm_111),
        Arc::clone(&sub.annotation),
        catalog,
    );
    if let Some(cap) = config.spot_cap {
        repo = repo.with_spot_cap(cap);
    }
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = config.threads;
    pc.run_config.batch_size = 500;
    let pipeline =
        Arc::new(AtlasPipeline::new(Arc::new(repo), index, Arc::clone(&sub.annotation), pc)?);

    // Size the fleet for this index.
    let stats = match config.release {
        Release::R108 => sub.index_108.stats(),
        _ => sub.index_111.stats(),
    };
    let sizer = paper_scale_sizer(&stats, sub.human_scale());
    let itype = sizer
        .choose()
        .ok_or_else(|| AtlasError::InvalidParams("no instance type fits the index".into()))?;
    let index_bytes = if config.paper_scale_index {
        (sizer.index_gib * (1u64 << 30) as f64) as u64
    } else {
        stats.total_bytes() as u64
    };
    let mut cc = CampaignConfig::new(itype, index_bytes);
    cc.spot_market.interruptions_per_hour = config.interruptions_per_hour;
    cc.scaling = cloudsim::ScalingPolicy { min_size: 0, max_size: 8, target_backlog_per_instance: 8 };
    let orch = Orchestrator::new(pipeline, cc)?;
    let ids: Vec<String> = {
        let mut v = config.catalog.generate()?.into_iter().map(|m| m.id).collect::<Vec<_>>();
        v.sort();
        v
    };
    let report = orch.run(&ids)?;
    Ok((report, itype.name.to_string()))
}

/// E5: the same workload on a release-108-sized fleet vs a release-111-sized fleet.
#[derive(Debug)]
pub struct RightSizeComparison {
    /// Campaign on the 108 index (big instances, slow alignment, long init).
    pub report_108: CampaignReport,
    /// Instance type used for 108.
    pub instance_108: String,
    /// Campaign on the 111 index.
    pub report_111: CampaignReport,
    /// Instance type used for 111.
    pub instance_111: String,
}

impl RightSizeComparison {
    /// Cost ratio 108/111 — how much the genome-release optimization saves in USD.
    pub fn cost_ratio(&self) -> f64 {
        self.report_108.cost.total_usd / self.report_111.cost.total_usd.max(1e-12)
    }
}

/// Run E5.
pub fn right_size_comparison(
    base: &CampaignExperimentConfig,
) -> Result<RightSizeComparison, AtlasError> {
    let mut c108 = base.clone();
    c108.release = Release::R108;
    let mut c111 = base.clone();
    c111.release = Release::R111;
    let (report_108, instance_108) = cloud_campaign(&c108)?;
    let (report_111, instance_111) = cloud_campaign(&c111)?;
    Ok(RightSizeComparison { report_108, instance_108, report_111, instance_111 })
}

// ---------------------------------------------------------------------------
// E6 — future work: early stopping on a (pseudo)aligner
// ---------------------------------------------------------------------------

/// Configuration for the pseudoaligner early-stopping study.
#[derive(Clone, Debug)]
pub struct PseudoStudyConfig {
    /// Assembly generator parameters.
    pub ensembl: EnsemblParams,
    /// Catalog shape.
    pub catalog: CatalogParams,
    /// Cap on generated reads per accession.
    pub spot_cap: Option<u64>,
    /// The early-stopping policy under test.
    pub policy: EarlyStopPolicy,
    /// Threads per run.
    pub threads: usize,
}

impl Default for PseudoStudyConfig {
    fn default() -> Self {
        PseudoStudyConfig {
            ensembl: EnsemblParams::default(),
            catalog: CatalogParams { n_accessions: 200, ..CatalogParams::default() },
            spot_cap: Some(2_000),
            policy: EarlyStopPolicy::default(),
            threads: 4,
        }
    }
}

/// Outcome of the pseudoaligner study: the same catalog pseudoaligned in both modes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PseudoStudyResult {
    /// Savings with progress reporting enabled (the paper's recommendation).
    pub with_progress: SavingsSummary,
    /// Savings in stock-Salmon mode (no progress stream): structurally zero stops.
    pub stock: SavingsSummary,
    /// Mean pseudoalignment rate of bulk accessions.
    pub bulk_rate: f64,
    /// Mean pseudoalignment rate of single-cell accessions.
    pub single_cell_rate: f64,
}

/// E6: run the pseudoaligner over the catalog twice — with the progress stream the
/// paper asks (pseudo)aligner authors to add, and without it (stock Salmon) — and
/// account the early-stopping savings in each mode.
pub fn pseudo_early_stopping(config: &PseudoStudyConfig) -> Result<PseudoStudyResult, AtlasError> {
    use pseudo_aligner::{PseudoIndex, PseudoIndexParams, PseudoRunConfig, PseudoRunner};

    let sub = Substrate::build(config.ensembl.clone())?;
    let index =
        PseudoIndex::build(&sub.asm_111, &sub.annotation, &PseudoIndexParams { k: 21 })
            .map_err(star_aligner::StarError::Genomics)?;
    let catalog = config.catalog.generate()?;
    let mut repo =
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog.clone());
    if let Some(cap) = config.spot_cap {
        repo = repo.with_spot_cap(cap);
    }
    let dumper = sra_sim::FasterqDump::default();

    let mut with_progress = SavingsSummary::default();
    let mut stock = SavingsSummary::default();
    let mut bulk_rates = Vec::new();
    let mut sc_rates = Vec::new();
    for meta in &catalog {
        let reads = dumper.run(&repo.fetch(&meta.id)?)?.reads;
        let batch = (reads.len() / 20).max(50);
        for (report_progress, summary) in
            [(true, &mut with_progress), (false, &mut stock)]
        {
            let run_config = PseudoRunConfig {
                threads: config.threads,
                batch_size: batch,
                report_progress,
            };
            let runner = PseudoRunner::new(
                &index,
                pseudo_aligner::pseudoalign::PseudoParams::default(),
                run_config,
            )?;
            let started = Instant::now();
            let out = runner.run(&reads, Some(&config.policy))?;
            let secs = started.elapsed().as_secs_f64()
                * (meta.spots as f64 / reads.len().max(1) as f64);
            let stopped = matches!(out.status, star_aligner::RunStatus::EarlyStopped { .. });
            let processed = out.final_snapshot.processed.max(1);
            let projected = if stopped {
                secs * out.final_snapshot.total_reads as f64 / processed as f64
            } else {
                secs
            };
            summary.add(&crate::early_stop::EarlyStopAccounting {
                stopped,
                processed_reads: out.final_snapshot.processed,
                total_reads: out.final_snapshot.total_reads,
                actual_secs: secs,
                projected_full_secs: projected,
            });
            if report_progress {
                match meta.strategy {
                    LibraryStrategy::RnaSeqBulk => bulk_rates.push(out.mapped_fraction()),
                    LibraryStrategy::SingleCell => sc_rates.push(out.mapped_fraction()),
                }
            }
        }
    }
    let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
    Ok(PseudoStudyResult {
        with_progress,
        stock,
        bulk_rate: mean(&bulk_rates),
        single_cell_rate: mean(&sc_rates),
    })
}

// ---------------------------------------------------------------------------
// E7 — graceful spot degradation (checkpointing under a reclaim storm)
// ---------------------------------------------------------------------------

/// Configuration for the spot-recovery study: the same seeded reclaim storm
/// hits a modeled align-dominated campaign twice — once with checkpoint/resume
/// armed, once without — and the ledger prices the difference.
#[derive(Clone, Debug)]
pub struct SpotRecoveryConfig {
    /// Workload size (modeled accessions, ~10-minute align stages).
    pub n_accessions: usize,
    /// The reclaim storm, replayed identically into both arms.
    pub burst: cloudsim::faults::SpotBurst,
    /// Fault seed shared by both arms.
    pub fault_seed: u64,
    /// Probability a checkpoint write fails inside the notice window.
    pub checkpoint_write_fail: f64,
}

impl Default for SpotRecoveryConfig {
    fn default() -> Self {
        SpotRecoveryConfig {
            n_accessions: 60,
            burst: cloudsim::faults::SpotBurst {
                start_secs: 300.0,
                duration_secs: 3600.0,
                rate_per_hour: 18.0,
            },
            fault_seed: 42,
            checkpoint_write_fail: 0.05,
        }
    }
}

/// One arm (recovery on or off) of the spot-recovery study.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpotRecoveryArm {
    /// Was checkpoint/resume armed?
    pub recovery: bool,
    /// Campaign makespan, seconds.
    pub makespan_secs: f64,
    /// Total spend.
    pub total_usd: f64,
    /// Reclaims that struck.
    pub interruptions: usize,
    /// Accessions completed / dead-lettered.
    pub completed: usize,
    /// Accessions that exhausted redelivery.
    pub dead_lettered: usize,
    /// Ledger total: seconds burned on attempts that produced nothing.
    pub retry_waste_secs: f64,
    /// Ledger total: seconds accessions sat between attempts.
    pub idle_gap_secs: f64,
    /// Ledger total: drained-attempt seconds a resumed attempt did not redo.
    pub salvaged_secs: f64,
    /// Checkpoints written / resumes that consumed one.
    pub checkpoints_written: usize,
    /// Resumed attempts.
    pub resumes: usize,
}

/// The spot-recovery study result: both arms under the identical storm.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpotRecoveryResult {
    /// Checkpoint/resume armed.
    pub with_recovery: SpotRecoveryArm,
    /// The pre-existing drop-everything path.
    pub without_recovery: SpotRecoveryArm,
}

impl SpotRecoveryResult {
    /// Fraction of the non-recovery arm's burned time (retry waste + idle gap)
    /// that checkpointing eliminated.
    pub fn waste_reduction_fraction(&self) -> f64 {
        let off = self.without_recovery.retry_waste_secs + self.without_recovery.idle_gap_secs;
        let on = self.with_recovery.retry_waste_secs + self.with_recovery.idle_gap_secs;
        if off <= 0.0 {
            0.0
        } else {
            (off - on) / off
        }
    }
}

/// Run the spot-recovery study (E7): the Fig. 4-style waste chart for graceful
/// degradation — same seed, checkpointing on vs off.
pub fn spot_recovery(config: &SpotRecoveryConfig) -> Result<SpotRecoveryResult, AtlasError> {
    let run_arm = |recovery: bool| -> Result<SpotRecoveryArm, AtlasError> {
        let t = cloudsim::instance::InstanceType::by_name("r6a.xlarge")
            .map_err(AtlasError::Cloud)?;
        let mut cfg = CampaignConfig::new(t, 30_000_000_000);
        cfg.scaling = cloudsim::ScalingPolicy {
            min_size: 0,
            max_size: 8,
            target_backlog_per_instance: 4,
        };
        cfg.spot_market =
            cloudsim::SpotMarket { price_factor: 0.35, interruptions_per_hour: 0.0, seed: 11 };
        cfg.faults = Some(cloudsim::FaultPlan {
            seed: config.fault_seed,
            checkpoint_write_fail: config.checkpoint_write_fail,
            spot_bursts: vec![config.burst],
            ..cloudsim::FaultPlan::default()
        });
        cfg.max_receive_count = Some(10);
        cfg.slo = Some(telemetry::SloConfig::default());
        if recovery {
            cfg.recovery = Some(crate::recovery::RecoveryConfig::default());
        }
        let ids = crate::workload::ModeledWorkload::accessions(config.n_accessions);
        let report = Orchestrator::with_workload(
            crate::workload::ModeledWorkload::default().into_workload(),
            cfg,
        )?
        .run(&ids)?;
        let totals = report.slo.as_ref().expect("slo configured").totals.clone();
        let count_kind = |kind: &str| {
            let tag = format!("\"kind\":\"{kind}\"");
            report
                .telemetry
                .as_ref()
                .map(|t| t.event_log.lines().filter(|l| l.contains(&tag)).count())
                .unwrap_or(0)
        };
        Ok(SpotRecoveryArm {
            recovery,
            makespan_secs: report.makespan.as_secs(),
            total_usd: report.cost.total_usd,
            interruptions: report.interruptions,
            completed: report.completed.len(),
            dead_lettered: report.dead_lettered.len(),
            retry_waste_secs: totals.retry_waste_secs,
            idle_gap_secs: totals.idle_gap_secs,
            salvaged_secs: totals.salvaged_secs,
            checkpoints_written: count_kind("checkpoint"),
            resumes: count_kind("resume"),
        })
    };
    Ok(SpotRecoveryResult { with_recovery: run_arm(true)?, without_recovery: run_arm(false)? })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_fig3() -> Fig3Config {
        Fig3Config {
            ensembl: EnsemblParams::tiny(),
            n_files: 4,
            reads_median: 1_500,
            reads_sigma: 0.4,
            threads: 1,
            seed: 5,
            multimap_cap: 20,
        }
    }

    #[test]
    fn fig3_shows_release_111_much_faster_with_same_mapping() {
        let r = fig3_genome_release(&tiny_fig3()).unwrap();
        assert_eq!(r.files.len(), 4);
        assert!(
            r.weighted_speedup > 1.5,
            "release 111 must win clearly even at tiny scale: {}",
            r.weighted_speedup
        );
        assert!(r.mean_rate_diff < 0.02, "mapping rates nearly identical: {}", r.mean_rate_diff);
        assert!(r.stats_108.total_bytes() > 2 * r.stats_111.total_bytes());
        // Wall-clock per tiny file is milliseconds and can wobble; demand a majority
        // rather than unanimity (the full-scale experiment checks every file).
        let faster = r.files.iter().filter(|f| f.secs_108 > f.secs_111).count();
        assert!(faster >= 3, "most files slower on 108: {faster}/4");
    }

    #[test]
    fn index_comparison_projects_paper_scale_sizes() {
        let c = index_comparison(EnsemblParams::tiny()).unwrap();
        assert!(c.size_ratio > 2.0 && c.size_ratio < 3.5, "ratio {}", c.size_ratio);
        assert!(c.projected_gib_108 > c.projected_gib_111 * 2.0);
        assert_ne!(c.instance_108, "none");
        assert_ne!(c.instance_111, "none");
        // The 108 instance must cost at least as much as the 111 one.
        let t108 = cloudsim::instance::InstanceType::by_name(&c.instance_108).unwrap();
        let t111 = cloudsim::instance::InstanceType::by_name(&c.instance_111).unwrap();
        assert!(t108.on_demand_hourly_usd >= t111.on_demand_hourly_usd);
    }

    #[test]
    fn fig4_savings_come_from_single_cell_runs() {
        let cfg = Fig4Config {
            ensembl: EnsemblParams::tiny(),
            catalog: CatalogParams {
                n_accessions: 25,
                single_cell_fraction: 0.2,
                bulk_spots_median: 400,
                ..CatalogParams::default()
            },
            spot_cap: Some(800),
            policy: EarlyStopPolicy::default(),
            threads: 2,
        };
        let r = fig4_early_stopping(&cfg).unwrap();
        assert_eq!(r.runs.len(), 25);
        assert_eq!(r.summary.stopped, 5, "0.2 × 25 single-cell accessions stopped");
        assert!(r.stopped_all_single_cell(), "paper: terminated inputs were single-cell");
        assert!(r.summary.saved_fraction() > 0.05, "saved {}", r.summary.saved_fraction());
        // No bulk run is stopped.
        assert!(r
            .runs
            .iter()
            .filter(|x| x.strategy == LibraryStrategy::RnaSeqBulk)
            .all(|x| !x.stopped));
    }

    #[test]
    fn pseudo_study_shows_progress_gap() {
        let cfg = PseudoStudyConfig {
            ensembl: EnsemblParams::tiny(),
            catalog: CatalogParams {
                n_accessions: 12,
                single_cell_fraction: 0.25,
                bulk_spots_median: 500,
                ..CatalogParams::default()
            },
            spot_cap: Some(800),
            policy: EarlyStopPolicy::default(),
            threads: 2,
        };
        let r = pseudo_early_stopping(&cfg).unwrap();
        assert_eq!(r.with_progress.stopped, 3, "25% of 12 single-cell accessions stop");
        assert_eq!(r.stock.stopped, 0, "stock Salmon cannot early-stop");
        assert!(r.with_progress.saved_fraction() > 0.0);
        assert_eq!(r.stock.saved_fraction(), 0.0);
        assert!(r.bulk_rate > 0.6);
        assert!(r.single_cell_rate < 0.30);
    }

    #[test]
    fn inverse_normal_cdf_is_sane() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.975) - 1.96).abs() < 0.01);
        assert!((inverse_normal_cdf(0.025) + 1.96).abs() < 0.01);
        assert!(inverse_normal_cdf(0.0001) < -3.0);
    }

    #[test]
    fn spot_recovery_study_recovers_waste() {
        let cfg = SpotRecoveryConfig { n_accessions: 20, ..SpotRecoveryConfig::default() };
        let r = spot_recovery(&cfg).unwrap();
        assert!(r.with_recovery.interruptions > 0, "premise: the storm struck");
        assert!(r.without_recovery.interruptions > 0);
        assert_eq!(
            r.with_recovery.completed + r.with_recovery.dead_lettered,
            cfg.n_accessions
        );
        assert!(r.with_recovery.salvaged_secs > 0.0);
        assert_eq!(r.without_recovery.salvaged_secs, 0.0);
        assert!(r.with_recovery.checkpoints_written > 0);
        assert!(r.with_recovery.resumes > 0);
        assert!(r.waste_reduction_fraction() > 0.0, "checkpointing must cut burned time");
        let text = crate::report::render_spot_recovery(&r);
        assert!(text.contains("E7"));
        assert!(text.contains("waste reduction:"));
    }
}
